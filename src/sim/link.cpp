#include "sim/link.h"

#include <algorithm>
#include <cmath>

#include "fault/injector.h"

namespace nnn::sim {

Link::Link(EventLoop& loop, Config config, PacketSink sink)
    : loop_(loop),
      config_(config),
      sink_(std::move(sink)),
      queues_(config.bands, config.band_capacity_bytes),
      shapers_(config.bands),
      impairment_rng_(config.impairment_seed) {}

void Link::set_band_shaper(size_t band, double rate_bps,
                           uint32_t burst_bytes) {
  if (band >= shapers_.size()) return;
  if (burst_bytes == 0) {
    // Default burst: ~50 ms worth of the shaped rate, at least one MTU.
    burst_bytes = std::max<uint32_t>(
        1500, static_cast<uint32_t>(rate_bps / 8.0 * 0.05));
  }
  shapers_[band].emplace(rate_bps, burst_bytes, loop_.now());
}

void Link::clear_band_shaper(size_t band) {
  if (band < shapers_.size()) shapers_[band].reset();
}

void Link::send(net::Packet packet, size_t band) {
  band = std::min(band, queues_.bands() - 1);
  queues_.enqueue(std::move(packet), band);
  try_transmit();
}

std::optional<size_t> Link::eligible_band(util::Timestamp now,
                                          util::Timestamp& next_ready) const {
  next_ready = 0;
  bool any_blocked = false;
  // Pass 1: shaped bands within their guaranteed rate go first (the
  // tc-style guarantee; see the class comment).
  for (size_t band = 0; band < queues_.bands(); ++band) {
    if (queues_.band_empty(band)) continue;
    const auto& shaper = shapers_[band];
    if (!shaper) continue;
    const uint32_t size = queues_.peek_band(band).size();
    if (shaper->conforms(size, now)) return band;
    // Time until enough tokens accumulate.
    const double missing =
        static_cast<double>(size) - shaper->tokens(now);
    const double wait_sec = missing * 8.0 / shaper->rate_bps();
    const util::Timestamp ready =
        now + std::max<util::Timestamp>(
                  1, static_cast<util::Timestamp>(
                         std::ceil(wait_sec * util::kSecond)));
    if (!any_blocked || ready < next_ready) next_ready = ready;
    any_blocked = true;
  }
  // Pass 2: strict priority among unshaped bands.
  for (size_t band = 0; band < queues_.bands(); ++band) {
    if (queues_.band_empty(band) || shapers_[band]) continue;
    return band;
  }
  // Pass 3: a shaped head larger than its bucket's burst can never
  // conform; once the bucket is full and nothing else wants the link,
  // serve it anyway rather than livelocking.
  for (size_t band = 0; band < queues_.bands(); ++band) {
    if (queues_.band_empty(band) || !shapers_[band]) continue;
    if (shapers_[band]->tokens(now) >=
        shapers_[band]->burst_bytes() - 1e-9) {
      return band;
    }
  }
  return std::nullopt;
}

void Link::try_transmit() {
  if (busy_) return;
  const util::Timestamp now = loop_.now();
  util::Timestamp next_ready = 0;
  const auto band = eligible_band(now, next_ready);
  if (!band) {
    if (next_ready > 0 && !retry_scheduled_) {
      retry_scheduled_ = true;
      loop_.at(next_ready, [this] {
        retry_scheduled_ = false;
        try_transmit();
      });
    }
    return;
  }
  auto packet = queues_.dequeue_band(*band);
  if (shapers_[*band]) {
    shapers_[*band]->try_consume(packet->size(), now);
  }
  busy_ = true;
  auto tx_time = static_cast<util::Timestamp>(
      std::ceil(packet->size() * 8.0 / config_.rate_bps * util::kSecond));
  // Injected non-cookie throttle: packets outside the fast lane
  // serialize at magnitude x rate, as if a misconfigured middlebox
  // policed them. Band 0 (cookie traffic) is untouched, which is what
  // makes the discrimination statistically visible to the auditor.
  if (injector_ != nullptr && *band > 0) {
    const double factor = injector_->throttle_non_cookie(link_id_, now);
    if (factor > 0.0 && factor < 1.0) {
      tx_time = static_cast<util::Timestamp>(
          std::ceil(static_cast<double>(tx_time) / factor));
      ++fault_throttled_;
    }
  }
  const util::Timestamp prop = config_.prop_delay;
  loop_.after(tx_time, [this, prop, p = std::move(*packet)]() mutable {
    busy_ = false;
    // Injected partition / loss spike: same point in the pipeline as
    // the loss impairment — the packet consumed link time, then dies.
    if (injector_ != nullptr &&
        injector_->drop_packet(link_id_, loop_.now())) {
      ++fault_dropped_;
      try_transmit();
      return;
    }
    // Loss impairment: the packet occupied the link (serialization
    // already elapsed) but never reaches the sink.
    if (config_.loss_rate > 0 &&
        impairment_rng_.chance(config_.loss_rate)) {
      ++dropped_;
      try_transmit();
      return;
    }
    ++delivered_;
    delivered_bytes_ += p.size();
    // Deliver after propagation (plus jitter, which can reorder
    // back-to-back packets); transmission of the next packet overlaps
    // with this one's flight.
    util::Timestamp flight = prop;
    if (config_.delay_jitter > 0) {
      flight += static_cast<util::Timestamp>(impairment_rng_.next_u64(
          static_cast<uint64_t>(config_.delay_jitter) + 1));
    }
    loop_.after(flight, [this, p = std::move(p)]() mutable {
      sink_(std::move(p));
    });
    try_transmit();
  });
}

}  // namespace nnn::sim
