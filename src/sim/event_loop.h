// Discrete-event simulation core.
//
// Everything time-dependent in the simulated network — link
// transmissions, propagation, TCP timers, application triggers — is an
// event on this loop. The loop owns the ManualClock every other
// component reads, so simulated cookie timestamps, NCT windows and QoS
// shapers all advance coherently.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/clock.h"

namespace nnn::sim {

class EventLoop {
 public:
  using Action = std::function<void()>;

  EventLoop() = default;

  const util::ManualClock& clock() const { return clock_; }
  util::Timestamp now() const { return clock_.now(); }

  /// Schedule at an absolute time (>= now).
  void at(util::Timestamp when, Action action);
  /// Schedule `delay` from now.
  void after(util::Timestamp delay, Action action);

  /// Execute the earliest pending event; false when none remain.
  bool step();

  /// Run until the queue drains or `max_events` fire (runaway guard).
  void run(uint64_t max_events = 50'000'000);

  /// Run events with time <= `until`; the clock ends at exactly
  /// `until` even if the queue drained earlier.
  void run_until(util::Timestamp until);

  size_t pending() const { return queue_.size(); }
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    util::Timestamp when;
    uint64_t seq;  // FIFO tie-break for same-time events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  util::ManualClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace nnn::sim
