#include "sim/tcp.h"

#include <algorithm>
#include <cmath>

namespace nnn::sim {

namespace {

constexpr uint32_t kAckWireSize = 40;
constexpr uint32_t kHeaderBytes = 40;  // IPv4 + TCP, no options

}  // namespace

TcpSink::TcpSink(EventLoop& loop, Host& host, net::FiveTuple flow,
                 CompletionFn on_complete)
    : loop_(loop),
      host_(host),
      flow_(flow),
      on_complete_(std::move(on_complete)) {}

void TcpSink::on_data(const net::Packet& packet) {
  const uint64_t seq = packet.seq;
  const uint64_t len = packet.size() > kHeaderBytes
                           ? packet.size() - kHeaderBytes
                           : 0;
  if (packet.fin) fin_end_ = seq + len;
  if (seq == rcv_nxt_) {
    rcv_nxt_ += len;
    // Drain any buffered segments now contiguous.
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, it->second);
      it = ooo_.erase(it);
    }
    maybe_complete();
  } else if (seq > rcv_nxt_ && len > 0) {
    // Out-of-order: buffer for later (coalescing is handled lazily by
    // the max() in the drain loop).
    auto [it, inserted] = ooo_.emplace(seq, seq + len);
    if (!inserted) it->second = std::max(it->second, seq + len);
  }
  // Cumulative ACK, including duplicates for out-of-order arrivals.
  net::Packet ack;
  ack.tuple = flow_.reversed();
  ack.ack = true;
  ack.ack_seq = static_cast<uint32_t>(rcv_nxt_);
  ack.wire_size = kAckWireSize;
  host_.send(std::move(ack));
}

void TcpSink::maybe_complete() {
  if (!complete_ && fin_end_ && rcv_nxt_ >= *fin_end_) {
    complete_ = true;
    if (on_complete_) on_complete_(loop_.now());
  }
}

TcpSource::TcpSource(EventLoop& loop, Host& host, net::FiveTuple flow,
                     uint64_t total_bytes, Config config,
                     CompletionFn on_complete)
    : loop_(loop),
      host_(host),
      flow_(flow),
      total_bytes_(total_bytes),
      config_(config),
      on_complete_(std::move(on_complete)),
      cwnd_(config.init_cwnd_packets * config.mss),
      ssthresh_(64.0 * config.mss) {}

void TcpSource::start() {
  if (started_) return;
  started_ = true;
  started_at_ = loop_.now();
  send_available();
  arm_rto();
}

void TcpSource::emit_segment(uint64_t offset) {
  const uint64_t len =
      std::min<uint64_t>(config_.mss, total_bytes_ - offset);
  net::Packet segment;
  segment.tuple = flow_;
  segment.seq = static_cast<uint32_t>(offset);
  segment.fin = offset + len >= total_bytes_;
  segment.wire_size = static_cast<uint32_t>(kHeaderBytes + len);
  host_.send(std::move(segment));
}

void TcpSource::send_available() {
  while (snd_nxt_ < total_bytes_ &&
         static_cast<double>(snd_nxt_ - snd_una_) + config_.mss <=
             cwnd_ + 1e-9) {
    const uint64_t len =
        std::min<uint64_t>(config_.mss, total_bytes_ - snd_nxt_);
    emit_segment(snd_nxt_);
    maybe_start_rtt_probe(snd_nxt_ + len);
    snd_nxt_ += len;
  }
}

void TcpSource::maybe_start_rtt_probe(uint64_t end_offset) {
  if (rtt_probe_end_) return;  // one probe in flight at a time
  rtt_probe_end_ = end_offset;
  rtt_probe_sent_ = loop_.now();
}

void TcpSource::maybe_sample_rtt(uint64_t ack_seq) {
  if (!rtt_probe_end_ || ack_seq < *rtt_probe_end_) return;
  const double sample =
      static_cast<double>(loop_.now() - rtt_probe_sent_);
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - sample);
    srtt_ = 0.875 * srtt_ + 0.125 * sample;
  }
  rtt_probe_end_.reset();
}

util::Timestamp TcpSource::current_rto() const {
  if (srtt_ == 0) return config_.min_rto;
  const auto rto = static_cast<util::Timestamp>(srtt_ + 4 * rttvar_);
  return std::max(config_.min_rto, rto);
}

void TcpSource::on_ack(const net::Packet& packet) {
  if (complete_) return;
  const uint64_t ack_seq = packet.ack_seq;
  if (ack_seq > snd_una_) {
    maybe_sample_rtt(ack_seq);
    snd_una_ = ack_seq;
    dup_acks_ = 0;
    backoff_ = 0;
    if (in_recovery_) {
      // Deflate the window inflated during fast recovery.
      cwnd_ = ssthresh_;
      in_recovery_ = false;
    }
    if (cwnd_ < ssthresh_) {
      cwnd_ += config_.mss;  // slow start
    } else {
      cwnd_ += static_cast<double>(config_.mss) * config_.mss / cwnd_;
    }
    if (snd_una_ >= total_bytes_) {
      complete_ = true;
      ++rto_generation_;  // disarm timer
      if (on_complete_) on_complete_(loop_.now() - started_at_);
      return;
    }
    arm_rto();
    send_available();
    return;
  }
  if (ack_seq == snd_una_) {
    ++dup_acks_;
    if (dup_acks_ == 3) {
      // Fast retransmit: resend only the hole (the receiver buffers
      // out-of-order data), halve the window.
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * config_.mss);
      cwnd_ = ssthresh_;
      in_recovery_ = true;
      rtt_probe_end_.reset();  // Karn: the range is being retransmitted
      emit_segment(snd_una_);
      ++retransmits_;
      arm_rto();
    } else if (dup_acks_ > 3) {
      // Rough fast-recovery inflation: each further dupack signals a
      // departed packet; allow one more new segment out.
      cwnd_ += config_.mss;
      send_available();
    }
  }
}

void TcpSource::arm_rto() {
  const uint64_t generation = ++rto_generation_;
  const util::Timestamp rto = current_rto() << std::min(backoff_, 6);
  loop_.after(rto, [this, generation] { on_rto(generation); });
}

void TcpSource::on_rto(uint64_t generation) {
  if (generation != rto_generation_ || complete_) return;
  // Timeout: collapse to one segment and restart from the hole.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * config_.mss);
  cwnd_ = config_.mss;
  in_recovery_ = false;
  rtt_probe_end_.reset();  // Karn's rule
  snd_nxt_ = snd_una_;
  ++retransmits_;
  ++backoff_;
  arm_rto();
  send_available();
}

}  // namespace nnn::sim
