// Simulated end hosts.
//
// A Host owns an address, an uplink (where its packets go — usually a
// Link's send bound to a QoS band chosen upstream), and a demux table
// from 5-tuples (as seen on arriving packets) to protocol handlers
// (TcpSource expects ACKs, TcpSink expects data, application code can
// register anything). Unmatched packets fall to a default handler so
// servers can spawn flows on incoming requests.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>

#include "net/five_tuple.h"
#include "net/packet.h"

namespace nnn::sim {

class Host {
 public:
  using Handler = std::function<void(const net::Packet&)>;
  using Sender = std::function<void(net::Packet)>;

  Host(net::IpAddress address, std::string name);

  const net::IpAddress& address() const { return address_; }
  const std::string& name() const { return name_; }

  /// Where this host transmits. Must be set before send() is used.
  void set_uplink(Sender uplink) { uplink_ = std::move(uplink); }
  void send(net::Packet packet);

  /// Packets whose tuple (as received) equals `tuple` go to `handler`.
  void register_handler(const net::FiveTuple& tuple, Handler handler);
  void unregister_handler(const net::FiveTuple& tuple);

  /// Fallback for unmatched tuples (e.g., a server accepting requests).
  void set_default_handler(Handler handler);

  /// Entry point wired into the inbound link's sink.
  void receive(const net::Packet& packet);

  /// Allocate an ephemeral port (per-host counter).
  uint16_t allocate_port() { return next_port_++; }

 private:
  net::IpAddress address_;
  std::string name_;
  Sender uplink_;
  std::unordered_map<net::FiveTuple, Handler> handlers_;
  Handler default_handler_;
  uint16_t next_port_ = 40000;
};

}  // namespace nnn::sim
