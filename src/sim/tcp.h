// Simplified TCP for flow-completion-time experiments (Fig. 5b).
//
// A deliberately small congestion-controlled transport: slow start,
// AIMD congestion avoidance, fast retransmit on three duplicate ACKs
// (go-back-N resend), and an RTO with exponential backoff. That is
// enough machinery for the queueing phenomena the paper's Fig. 5b
// reports — a boosted 300 KB flow finishing fast and predictably, a
// best-effort flow competing with background traffic, and a throttled
// flow crawling at the policed rate — without modeling SACK et al.
//
// Data packets carry byte-offset seq numbers and empty payloads (the
// size is modeled via wire_size so the sim does not materialize
// megabytes); ACKs are 40-byte packets with ack_seq = next expected
// byte.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "net/five_tuple.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "sim/host.h"

namespace nnn::sim {

/// Receiving side: buffers out-of-order segments, acknowledges
/// cumulatively, and fires a callback when the FIN-marked last byte is
/// covered by in-order data.
class TcpSink {
 public:
  using CompletionFn = std::function<void(util::Timestamp finished_at)>;

  /// `flow` is the tuple of arriving data packets. The sink sends ACKs
  /// through `host` (which must outlive it).
  TcpSink(EventLoop& loop, Host& host, net::FiveTuple flow,
          CompletionFn on_complete);

  void on_data(const net::Packet& packet);

  uint64_t received_bytes() const { return rcv_nxt_; }
  bool complete() const { return complete_; }

 private:
  void maybe_complete();

  EventLoop& loop_;
  Host& host_;
  net::FiveTuple flow_;
  CompletionFn on_complete_;
  uint64_t rcv_nxt_ = 0;
  /// Out-of-order reassembly buffer: start -> end (exclusive).
  std::map<uint64_t, uint64_t> ooo_;
  /// End offset of the FIN-marked segment, once seen.
  std::optional<uint64_t> fin_end_;
  bool complete_ = false;
};

/// Sending side.
class TcpSource {
 public:
  struct Config {
    uint32_t mss = 1460;
    double init_cwnd_packets = 4;
    /// Floor for the adaptive RTO (RFC 6298-style SRTT + 4*RTTVAR).
    util::Timestamp min_rto = 200 * util::kMillisecond;
    /// QoS band requested for this flow's data packets; the topology's
    /// classifier may override it (band is advisory metadata here).
    size_t band = 1;
  };

  using CompletionFn = std::function<void(util::Timestamp fct)>;

  /// Send `total_bytes` on `flow` through `host`. ACKs must be routed
  /// to on_ack (Host::register_handler on flow.reversed()).
  TcpSource(EventLoop& loop, Host& host, net::FiveTuple flow,
            uint64_t total_bytes, Config config, CompletionFn on_complete);

  void start();
  void on_ack(const net::Packet& packet);

  uint64_t acked_bytes() const { return snd_una_; }
  bool complete() const { return complete_; }
  double cwnd_bytes() const { return cwnd_; }
  uint64_t retransmits() const { return retransmits_; }

 private:
  void send_available();
  void emit_segment(uint64_t offset);
  void arm_rto();
  void on_rto(uint64_t generation);
  void maybe_start_rtt_probe(uint64_t offset);
  void maybe_sample_rtt(uint64_t ack_seq);
  util::Timestamp current_rto() const;

  EventLoop& loop_;
  Host& host_;
  net::FiveTuple flow_;
  uint64_t total_bytes_;
  Config config_;
  CompletionFn on_complete_;

  uint64_t snd_una_ = 0;   // first unacked byte
  uint64_t snd_nxt_ = 0;   // next byte to send
  double cwnd_;            // bytes
  double ssthresh_;        // bytes
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  int backoff_ = 0;
  // RTT estimation (Karn's rule: retransmitted ranges never sampled).
  std::optional<uint64_t> rtt_probe_end_;  // byte the probe covers
  util::Timestamp rtt_probe_sent_ = 0;
  double srtt_ = 0;    // microseconds; 0 = no sample yet
  double rttvar_ = 0;  // microseconds
  uint64_t rto_generation_ = 0;
  uint64_t retransmits_ = 0;
  util::Timestamp started_at_ = 0;
  bool started_ = false;
  bool complete_ = false;
};

}  // namespace nnn::sim
