// Simulated links with priority scheduling and per-band shaping.
//
// A Link is unidirectional: packets enter via send(), wait in a
// strict-priority queue set, are serialized at `rate_bps`, and arrive
// at the sink after the propagation delay. Per-band token-bucket
// shapers model Boost's throttle: "we throttle other traffic to ensure
// certain capacity for boosted traffic through the last-mile
// connection" (§5.2) — the best-effort band is shaped to the throttle
// rate while the fast-lane band drains at link speed.
//
// Shaping semantics follow Linux tc (HTB-style): the shaped rate is
// both a ceiling and a guarantee. A shaped band with tokens available
// is served ahead of the strict-priority order, so a saturated fast
// lane cannot starve the throttled class below its configured rate;
// beyond its rate the shaped band yields the residual capacity.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dataplane/qos.h"
#include "net/packet.h"
#include "sim/event_loop.h"
#include "util/rng.h"

namespace nnn::fault {
class Injector;
}

namespace nnn::sim {

using PacketSink = std::function<void(net::Packet)>;

class Link {
 public:
  struct Config {
    double rate_bps = 10e6;
    util::Timestamp prop_delay = 5 * util::kMillisecond;
    size_t bands = 2;
    uint32_t band_capacity_bytes = 256 * 1024;
    /// Impairments (control-plane sync rides these links too, so loss
    /// and reordering must be expressible): each delivered packet is
    /// dropped with probability `loss_rate`, and its propagation delay
    /// is extended by uniform [0, delay_jitter] — two packets whose
    /// transmissions finish close together can therefore arrive
    /// reordered. Deterministic per `impairment_seed`.
    ///
    /// Determinism contract (the audit subsystem's matched pairs lean
    /// on this, tests/test_sim.cpp pins it): identical impairment_seed
    /// + identical send() schedule => byte-identical drop decisions,
    /// jitter draws, and therefore delivery order, on every platform.
    /// This holds because the impairment RNG only ever consumes
    /// util::Rng::chance() and util::Rng::next_u64() — both built on
    /// mt19937_64 with rejection sampling / fixed 53-bit scaling, not
    /// on std::<distribution> types whose draw sequences differ
    /// between libstdc++ and libc++. Exactly one chance() draw happens
    /// per serialized packet iff loss_rate > 0, and one next_u64()
    /// draw per delivered packet iff delay_jitter > 0, in
    /// serialization order. Do not add std:: distributions here.
    double loss_rate = 0.0;
    util::Timestamp delay_jitter = 0;
    uint64_t impairment_seed = 0x11eb;
  };

  Link(EventLoop& loop, Config config, PacketSink sink);

  /// Shape a band to `rate_bps` (tokens refill at that rate; burst is
  /// one capacity's worth unless given).
  void set_band_shaper(size_t band, double rate_bps,
                       uint32_t burst_bytes = 0);
  void clear_band_shaper(size_t band);

  /// Enqueue on `band` (0 = highest priority). Tail-drops when full.
  void send(net::Packet packet, size_t band = 1);

  /// Hook this link into a fault injector (PR 5): partitions and loss
  /// spikes targeting `link_id` kill packets at the end of
  /// serialization, exactly where the loss impairment does. Null
  /// detaches. The injector must outlive the link.
  void set_fault_injector(const fault::Injector* injector,
                          uint32_t link_id) {
    injector_ = injector;
    link_id_ = link_id;
  }
  /// Packets killed by the fault injector (counted separately from the
  /// loss impairment's dropped()).
  uint64_t fault_dropped() const { return fault_dropped_; }
  /// Non-band-0 packets slowed by an injected kThrottleNonCookie
  /// event (each serialized at the event's magnitude x rate).
  uint64_t fault_throttled() const { return fault_throttled_; }

  const dataplane::PriorityQueueSet& queues() const { return queues_; }
  uint64_t delivered() const { return delivered_; }
  uint64_t delivered_bytes() const { return delivered_bytes_; }
  /// Packets dropped by the loss impairment (after serialization —
  /// they consumed link time, as real corruption losses do).
  uint64_t dropped() const { return dropped_; }
  double rate_bps() const { return config_.rate_bps; }

 private:
  void try_transmit();
  /// Band the scheduler would serve now, honoring shapers; nullopt if
  /// all heads are blocked (next_ready then holds the wakeup time).
  std::optional<size_t> eligible_band(util::Timestamp now,
                                      util::Timestamp& next_ready) const;

  EventLoop& loop_;
  Config config_;
  PacketSink sink_;
  dataplane::PriorityQueueSet queues_;
  std::vector<std::optional<dataplane::TokenBucket>> shapers_;
  util::Rng impairment_rng_;
  const fault::Injector* injector_ = nullptr;
  uint32_t link_id_ = 0;
  bool busy_ = false;
  bool retry_scheduled_ = false;
  uint64_t delivered_ = 0;
  uint64_t delivered_bytes_ = 0;
  uint64_t dropped_ = 0;
  uint64_t fault_dropped_ = 0;
  uint64_t fault_throttled_ = 0;
};

}  // namespace nnn::sim
