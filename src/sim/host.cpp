#include "sim/host.h"

#include "util/logging.h"

namespace nnn::sim {

Host::Host(net::IpAddress address, std::string name)
    : address_(address), name_(std::move(name)) {}

void Host::send(net::Packet packet) {
  if (!uplink_) {
    util::log_warn_tagged("sim-host", "{}: dropping packet, no uplink",
                          name_);
    return;
  }
  uplink_(std::move(packet));
}

void Host::register_handler(const net::FiveTuple& tuple, Handler handler) {
  handlers_[tuple] = std::move(handler);
}

void Host::unregister_handler(const net::FiveTuple& tuple) {
  handlers_.erase(tuple);
}

void Host::set_default_handler(Handler handler) {
  default_handler_ = std::move(handler);
}

void Host::receive(const net::Packet& packet) {
  const auto it = handlers_.find(packet.tuple);
  if (it != handlers_.end()) {
    it->second(packet);
    return;
  }
  if (default_handler_) default_handler_(packet);
}

}  // namespace nnn::sim
