// NAT (network address translation) box.
//
// The NAT is the reason the OOB baseline breaks: "in a home network,
// the flow will change at the NAT module of the home router, making
// the 5-tuple description invalid for the head-end router" (§3).
// Cookies ride above the rewritten headers and survive unchanged —
// the property Fig. 6 measures.
//
// Classic NAPT: private (src ip, src port) pairs are mapped to (public
// ip, allocated port) on the way out; reverse translations are applied
// to inbound packets addressed to an allocated port.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>

#include "net/packet.h"

namespace nnn::sim {

class Nat {
 public:
  Nat(net::IpAddress public_ip, uint16_t first_port = 20000);

  /// Rewrite an outbound (LAN -> WAN) packet in place. Allocates a
  /// mapping on first sight of a private (ip, port, proto).
  void translate_outbound(net::Packet& packet);

  /// Rewrite an inbound (WAN -> LAN) packet in place. Returns false
  /// (packet untouched) when no mapping exists — a real NAT drops it.
  bool translate_inbound(net::Packet& packet) const;

  size_t mapping_count() const { return forward_.size(); }
  net::IpAddress public_ip() const { return public_ip_; }

 private:
  struct Endpoint {
    net::IpAddress ip;
    uint16_t port;
    net::L4Proto proto;

    bool operator==(const Endpoint&) const = default;
  };
  struct EndpointHash {
    size_t operator()(const Endpoint& e) const noexcept {
      return std::hash<net::IpAddress>()(e.ip) * 31 + e.port * 7 +
             static_cast<size_t>(e.proto);
    }
  };

  net::IpAddress public_ip_;
  uint16_t next_port_;
  std::unordered_map<Endpoint, uint16_t, EndpointHash> forward_;
  std::unordered_map<uint16_t, Endpoint> reverse_;
};

}  // namespace nnn::sim
