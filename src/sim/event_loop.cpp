#include "sim/event_loop.h"

#include <stdexcept>

namespace nnn::sim {

void EventLoop::at(util::Timestamp when, Action action) {
  if (when < clock_.now()) {
    throw std::logic_error("EventLoop: scheduling into the past");
  }
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

void EventLoop::after(util::Timestamp delay, Action action) {
  at(clock_.now() + delay, std::move(action));
}

bool EventLoop::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the action is moved out via the
  // const_cast idiom (safe: the element is popped immediately after).
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  clock_.set(event.when);
  ++executed_;
  event.action();
  return true;
}

void EventLoop::run(uint64_t max_events) {
  uint64_t fired = 0;
  while (step()) {
    if (++fired >= max_events) {
      throw std::runtime_error("EventLoop: max_events exceeded");
    }
  }
}

void EventLoop::run_until(util::Timestamp until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    step();
  }
  if (clock_.now() < until) clock_.set(until);
}

}  // namespace nnn::sim
