// WAN capacity estimation (§5.2) and daemon throttle recalibration.
#include <gtest/gtest.h>

#include "boost_lane/capacity_probe.h"
#include "boost_lane/daemon.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "net/http.h"
#include "sim/event_loop.h"
#include "sim/link.h"

namespace nnn::boost_lane {
namespace {

using util::kMillisecond;
using util::kSecond;

double probe_link(double rate_bps) {
  sim::EventLoop loop;
  CapacityProbe probe(loop, {});
  sim::Link link(loop,
                 {.rate_bps = rate_bps,
                  .prop_delay = 10 * kMillisecond,
                  .bands = 1,
                  .band_capacity_bytes = 1 << 20},
                 [&](net::Packet p) { probe.on_probe_arrival(p); });
  double estimate = -1;
  loop.at(0, [&] {
    probe.run([&](net::Packet p) { link.send(std::move(p), 0); },
              [&](double bps) { estimate = bps; });
  });
  loop.run();
  return estimate;
}

TEST(CapacityProbe, EstimatesBottleneckWithin10Percent) {
  for (const double rate : {1e6, 6e6, 20e6}) {
    const double estimate = probe_link(rate);
    EXPECT_NEAR(estimate, rate, rate * 0.1) << "rate " << rate;
  }
}

TEST(CapacityProbe, LastEstimateIsRemembered) {
  sim::EventLoop loop;
  CapacityProbe probe(loop, {});
  sim::Link link(loop,
                 {.rate_bps = 6e6, .prop_delay = 0, .bands = 1,
                  .band_capacity_bytes = 1 << 20},
                 [&](net::Packet p) { probe.on_probe_arrival(p); });
  loop.at(0, [&] {
    probe.run([&](net::Packet p) { link.send(std::move(p), 0); },
              nullptr);
  });
  loop.run();
  ASSERT_TRUE(probe.last_estimate_bps().has_value());
  EXPECT_NEAR(*probe.last_estimate_bps(), 6e6, 0.6e6);
}

TEST(CapacityProbe, IgnoresUnrelatedTraffic) {
  sim::EventLoop loop;
  CapacityProbe probe(loop, {});
  net::Packet unrelated;
  unrelated.tuple.dst_port = 443;
  probe.on_probe_arrival(unrelated);
  EXPECT_FALSE(probe.last_estimate_bps().has_value());
}

TEST(CapacityProbe, DaemonRecalibratesThrottleFromEstimate) {
  sim::EventLoop loop;
  cookies::CookieVerifier verifier(loop.clock());
  BoostDaemon daemon(loop.clock(), verifier,
                     {.wan_capacity_bps = 6e6, .throttle_bps = 1e6});

  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  descriptor.service_data = "Boost";
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, loop.clock(), 1);

  uint64_t slow_band_bytes = 0;
  sim::Link downlink(loop,
                     {.rate_bps = 12e6,
                      .prop_delay = 0,
                      .bands = 2,
                      .band_capacity_bytes = 1 << 22},
                     [&](net::Packet p) {
                       if (p.tuple.src_port == 9) {
                         slow_band_bytes += p.size();
                       }
                     });
  daemon.attach_links(&downlink, nullptr);

  // A probe reveals the true WAN is 12 Mb/s; the daemon rescales.
  daemon.set_capacity(12e6);
  EXPECT_DOUBLE_EQ(daemon.throttle_bps(), 2e6);

  // Activate the throttle via a real boost mapping.
  net::Packet request;
  request.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  request.tuple.dst_ip = net::IpAddress::v4(198, 51, 100, 1);
  request.tuple.src_port = 40000;
  request.tuple.dst_port = 80;
  net::http::Request http("GET", "/", "x.example");
  const std::string text = http.serialize();
  request.payload.assign(text.begin(), text.end());
  cookies::attach(request, generator.generate(),
                  cookies::Transport::kHttpHeader);
  daemon.classify(request);
  ASSERT_TRUE(daemon.throttle_active());

  // Offer 2 seconds' worth of best-effort traffic; the shaped band
  // should deliver ~2 Mb/s, the recalibrated rate.
  for (int i = 0; i < 400; ++i) {
    net::Packet p;
    p.tuple.src_port = 9;
    p.wire_size = 1500;
    downlink.send(std::move(p), kBestEffortBand);
  }
  loop.run_until(1 * kSecond);
  EXPECT_NEAR(static_cast<double>(slow_band_bytes), 250'000.0, 40'000.0);
}

}  // namespace
}  // namespace nnn::boost_lane
