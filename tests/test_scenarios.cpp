// Additional end-to-end scenarios: cookie->DSCP interior enforcement
// (§4.6), packet-granularity cookies (§4.3), descriptor renewal
// (§4.1), and a campus-trace replay with accounting invariants.
#include <gtest/gtest.h>

#include "baselines/diffserv.h"
#include "boost_lane/agent.h"
#include "boost_lane/browser.h"
#include "controlplane/local_subscriber.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "dataplane/middlebox.h"
#include "dataplane/zero_rating.h"
#include "net/http.h"
#include "server/cookie_server.h"
#include "server/json_api.h"
#include "util/clock.h"
#include "workload/trace.h"
#include "workload/websites.h"

namespace nnn {
namespace {

using util::kSecond;

cookies::CookieDescriptor make_descriptor(cookies::CookieId id) {
  cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(id + 9));
  d.service_data = "Boost";
  return d;
}

net::Packet udp_cookie_packet(uint16_t port, const cookies::Cookie& c) {
  net::Packet p;
  p.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
  p.tuple.src_port = port;
  p.tuple.dst_port = 443;
  p.tuple.proto = net::L4Proto::kUdp;
  cookies::attach(p, c, cookies::Transport::kUdpHeader);
  return p;
}

// §4.6 "Cookie->DSCP mapping: Service enforcement does not have to be
// co-located with cookie inspection. The ISP can look up cookies at
// the edge, and then use an internal mechanism to consume a service
// within the network."
TEST(CookieToDscp, EdgeRemarksInteriorEnforces) {
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox::Config config;
  config.remark_dscp = 46;  // EF
  dataplane::Middlebox edge(clock, verifier, registry, config);

  const auto descriptor = make_descriptor(1);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 1);

  // Interior domain knows nothing about cookies — only DSCP classes.
  baselines::DiffServDomain interior("isp-core",
                                     baselines::BoundaryPolicy::kPreserve);
  interior.define_class(46, "fast-lane");

  net::Packet request = udp_cookie_packet(5000, generator.generate());
  edge.process(request);
  EXPECT_EQ(request.dscp, 46);
  interior.ingress(request);
  EXPECT_EQ(interior.interior_class(request.dscp), "fast-lane");

  // Established-flow packets are remarked from the flow table — the
  // interior never needs cookie support ("without requiring all
  // switches to support cookies").
  net::Packet data;
  data.tuple = request.tuple;
  data.wire_size = 1200;
  edge.process(data);
  EXPECT_EQ(data.dscp, 46);

  // Cookie-less traffic stays best-effort end to end.
  net::Packet plain;
  plain.tuple = request.tuple;
  plain.tuple.src_port = 5001;
  edge.process(plain);
  EXPECT_EQ(plain.dscp, 0);
  EXPECT_EQ(interior.interior_class(plain.dscp), "");
}

// §4.3: granularity can be narrowed to a single packet; the service
// then applies to the cookie-bearing packet only, and no flow state is
// installed.
TEST(PacketGranularity, ServiceAppliesToSinglePacketOnly) {
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock, verifier, registry);

  auto descriptor = make_descriptor(2);
  descriptor.attributes.granularity = cookies::Granularity::kPacket;
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 2);

  net::Packet first = udp_cookie_packet(6000, generator.generate());
  const auto verdict = middlebox.process(first);
  EXPECT_TRUE(verdict.action.has_value());
  EXPECT_TRUE(verdict.mapped_now);

  // The next packet of the same flow gets no service: nothing was
  // installed in the flow table.
  net::Packet second;
  second.tuple = first.tuple;
  second.wire_size = 800;
  EXPECT_FALSE(middlebox.process(second).action.has_value());

  // Each boosted packet needs its own cookie — and gets it.
  net::Packet third = udp_cookie_packet(6000, generator.generate());
  EXPECT_TRUE(middlebox.process(third).action.has_value());
}

// §4.1: "A cookie descriptor typically lasts hours or days, and is
// renewed by the user as needed." The agent renews transparently.
TEST(DescriptorRenewal, AgentRenewsExpiredDescriptor) {
  util::ManualClock clock(1'000'000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer server(clock, 17, &descriptor_log);
  controlplane::LocalSubscriber subscriber(descriptor_log, verifier);
  server::ServiceOffer offer;
  offer.name = "Boost";
  offer.service_data = "Boost";
  offer.descriptor_lifetime = 3600LL * kSecond;
  server.add_service(offer);
  server::JsonApi api(server);

  boost_lane::BoostAgent agent(clock, api, "home", 5);
  ASSERT_TRUE(agent.always_boost("cnn.com"));
  const auto first_id = agent.descriptor()->cookie_id;

  // The descriptor expires; the user's standing preference remains.
  clock.advance(2 * 3600LL * kSecond);
  EXPECT_FALSE(agent.has_descriptor());

  util::Rng rng(6);
  boost_lane::Browser browser(rng, net::IpAddress::v4(192, 168, 1, 10));
  const auto tab = browser.open_tab();
  const auto load = browser.navigate(tab, workload::cnn_profile());
  const auto& flow = *std::find_if(
      load.flows.begin(), load.flows.end(),
      [](const boost_lane::BrowserFlow& f) { return f.tab.has_value(); });
  net::Packet request =
      workload::PageLoadGenerator::make_request_packet(flow.flow);
  // process_request triggers a renewal under the hood.
  EXPECT_TRUE(agent.process_request(flow, request));
  EXPECT_TRUE(agent.has_descriptor());
  EXPECT_NE(agent.descriptor()->cookie_id, first_id);
  // The renewed descriptor's cookies verify.
  const auto extracted = cookies::extract(request);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(verifier.verify(extracted->stack.front()).ok());
}

// §5.1 / §1: boost mappings expire (one-hour boost events, short
// bursts), controlled by the descriptor's mapping_ttl attribute.
TEST(MappingTtl, MappedFlowRevertsAfterTtl) {
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock, verifier, registry);

  auto descriptor = make_descriptor(20);
  descriptor.attributes.mapping_ttl = 10 * kSecond;
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 20);

  net::Packet request = udp_cookie_packet(7000, generator.generate());
  ASSERT_TRUE(middlebox.process(request).action.has_value());

  // Within the TTL: still boosted.
  clock.advance(9 * kSecond);
  net::Packet data;
  data.tuple = request.tuple;
  data.wire_size = 900;
  EXPECT_TRUE(middlebox.process(data).action.has_value());

  // Past the TTL: back to best effort.
  clock.advance(2 * kSecond);
  net::Packet late;
  late.tuple = request.tuple;
  late.wire_size = 900;
  EXPECT_FALSE(middlebox.process(late).action.has_value());
}

TEST(MappingTtl, NoTtlMeansFlowLifetime) {
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock, verifier, registry);
  const auto descriptor = make_descriptor(21);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 21);
  net::Packet request = udp_cookie_packet(7001, generator.generate());
  middlebox.process(request);
  clock.advance(30 * kSecond);  // under the idle timeout
  net::Packet data;
  data.tuple = request.tuple;
  data.wire_size = 900;
  EXPECT_TRUE(middlebox.process(data).action.has_value());
}

TEST(MappingTtl, JsonRoundTripsAttribute) {
  cookies::Attributes attrs;
  attrs.mapping_ttl = 3600LL * kSecond;
  const auto parsed = cookies::Attributes::from_json(attrs.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->mapping_ttl, attrs.mapping_ttl);
}

// §4.2's application-assisted trigger needs cookies honored mid-flow;
// the default deployment (sniff-3) ignores them.
TEST(MidFlowCookies, HonoredOnlyWhenConfigured) {
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  const auto descriptor = make_descriptor(22);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 22);

  const auto run = [&](bool mid_flow) {
    dataplane::Middlebox::Config config;
    config.mid_flow_cookies = mid_flow;
    dataplane::Middlebox middlebox(clock, verifier, registry, config);
    // Exhaust the sniff window with plain packets.
    net::FiveTuple tuple;
    tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
    tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
    tuple.src_port = static_cast<uint16_t>(mid_flow ? 7100 : 7101);
    tuple.dst_port = 443;
    tuple.proto = net::L4Proto::kUdp;
    for (int i = 0; i < 4; ++i) {
      net::Packet p;
      p.tuple = tuple;
      p.wire_size = 700;
      middlebox.process(p);
    }
    // The application's late burst trigger.
    net::Packet trigger = udp_cookie_packet(tuple.src_port,
                                            generator.generate());
    return middlebox.process(trigger).action.has_value();
  };
  EXPECT_TRUE(run(true));
  EXPECT_FALSE(run(false));
}

// Campus-scale replay: run a scaled synthetic trace through the
// zero-rating middlebox and check accounting invariants (the §4.6
// deployment: "two counters per IP ... both directions of a flow").
TEST(CampusReplay, AccountingInvariantsHold) {
  util::ManualClock clock(0);
  cookies::CookieVerifier verifier(clock);
  dataplane::ServiceRegistry registry;
  registry.bind("zr", dataplane::ZeroRateAction{});
  dataplane::Middlebox middlebox(clock, verifier, registry);
  dataplane::ZeroRatingLedger ledger;

  cookies::CookieDescriptor descriptor = make_descriptor(3);
  descriptor.service_data = "zr";
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 3);

  workload::CampusTraceGenerator::Config config;
  config.flows = 2000;
  config.clients = 120;
  config.duration = 120LL * kSecond;
  workload::CampusTraceGenerator trace_gen(config, 77);
  const auto trace = trace_gen.generate();

  util::Rng rng(78);
  uint64_t total_bytes = 0;
  uint64_t expected_free = 0;
  uint16_t next_port = 1025;
  for (const auto& flow : trace) {
    clock.set(flow.start);
    const bool zero_rated = rng.chance(0.3);  // user's chosen app
    net::FiveTuple tuple;
    tuple.src_ip = flow.client;
    tuple.dst_ip = net::IpAddress::v4(151, 101, 7, 7);
    tuple.src_port = next_port++;
    if (next_port == 0) next_port = 1025;
    tuple.dst_port = 443;
    tuple.proto = net::L4Proto::kUdp;

    const uint32_t packets = std::min(flow.packets, 12u);  // scaled
    for (uint32_t i = 0; i < packets; ++i) {
      net::Packet p;
      p.tuple = tuple;
      p.wire_size = flow.mean_packet_bytes;
      if (i == 0 && zero_rated) {
        cookies::attach(p, generator.generate(),
                        cookies::Transport::kUdpHeader);
        p.wire_size = flow.mean_packet_bytes;
      }
      const uint32_t size = p.size();
      middlebox.process_and_account(p, ledger, flow.client);
      total_bytes += size;
      if (zero_rated) expected_free += size;
    }
  }

  // Invariant: every byte is accounted exactly once, free or charged.
  uint64_t ledger_total = 0;
  uint64_t ledger_free = 0;
  std::set<net::IpAddress> clients;
  for (const auto& flow : trace) clients.insert(flow.client);
  for (const auto& client : clients) {
    const auto usage = ledger.usage(client);
    ledger_total += usage.total();
    ledger_free += usage.free_bytes;
  }
  EXPECT_EQ(ledger_total, total_bytes);
  EXPECT_EQ(ledger_free, expected_free);
  EXPECT_GT(ledger_free, 0u);
  EXPECT_LT(ledger_free, total_bytes);
}

}  // namespace
}  // namespace nnn
