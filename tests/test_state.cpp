// State layer: flat open-addressing tables, hashed expiry wheel, the
// compact descriptor store, and hot/cold midstate tiering.
//
// The flat-table tests are differential against std::unordered_map —
// the structure it replaced — over randomized op streams, so any
// probe/tombstone/rehash bug shows up as a divergence rather than
// needing a hand-written oracle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cookies/descriptor_store.h"
#include "cookies/hot_tier.h"
#include "state/expiry_wheel.h"
#include "state/flat_table.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn {
namespace {

using util::kSecond;

// --- FlatTable / FlatMap -------------------------------------------

TEST(FlatTable, DifferentialAgainstUnorderedMapUnderRandomOps) {
  state::FlatMap<uint64_t, uint64_t> flat;
  std::unordered_map<uint64_t, uint64_t> ref;
  util::Rng rng(0xF1A7);
  // Small key space so inserts, replacements, erases and re-inserts of
  // recently erased keys (tombstone reuse) all happen constantly.
  constexpr uint64_t kKeySpace = 4096;
  for (int op = 0; op < 200'000; ++op) {
    const uint64_t key = rng.next_u64(kKeySpace);
    switch (rng.next_u64(4)) {
      case 0:
      case 1: {  // insert or overwrite
        const uint64_t value = rng.next_u64();
        flat.try_emplace(key).first->value = value;
        ref[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {  // find
        const uint64_t* found = flat.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full-content check via iteration, both directions.
  size_t visited = 0;
  flat.for_each([&](const auto& item) {
    ++visited;
    const auto it = ref.find(item.key);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(item.value, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatTable, SequentialIdsStayShortProbed) {
  // libstdc++ std::hash<uint64_t> is the identity; without the
  // splitmix64 finalizer, sequential cookie ids would aim 128
  // consecutive hashes at each 16-slot group and probing would
  // explode. This is the regression test for state::mix_hash.
  state::FlatMap<uint64_t, uint64_t> flat;
  constexpr uint64_t kN = 200'000;
  for (uint64_t id = 0; id < kN; ++id) flat.try_emplace(id).first->value = id;
  for (uint64_t id = 0; id < kN; ++id) {
    const uint64_t* v = flat.find(id);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, id);
  }
  const state::ProbeStats stats = flat.probe_stats(4096);
  EXPECT_GT(stats.samples, 0u);
  // With mix_hash and 7/8 max load, nearly every lookup terminates in
  // its first group; allow a little slack for unlucky clusters.
  EXPECT_LE(stats.p99, 3u);
}

TEST(FlatTable, EraseIfDropsExactlyMatchingEntries) {
  state::FlatMap<uint64_t, uint64_t> flat;
  for (uint64_t k = 0; k < 1000; ++k) flat.try_emplace(k).first->value = k;
  const size_t dropped =
      flat.erase_if([](const auto& item) { return item.key % 2 == 1; });
  EXPECT_EQ(dropped, 500u);
  EXPECT_EQ(flat.size(), 500u);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(flat.find(k) != nullptr, k % 2 == 0) << k;
  }
}

TEST(FlatTable, ChurnDoesNotAccumulateTombstonesOrMemory) {
  // Insert/erase churn with a small live set: tombstone pressure must
  // trigger same-size purges, not unbounded growth.
  state::FlatMap<uint64_t, uint64_t> flat;
  constexpr uint64_t kWindow = 1024;
  for (uint64_t i = 0; i < 200'000; ++i) {
    flat.try_emplace(i).first->value = i;
    if (i >= kWindow) flat.erase(i - kWindow);
  }
  EXPECT_EQ(flat.size(), kWindow);
  // 1024 live entries at 7/8 load fit in 2048 slots; a few powers of
  // two of headroom is fine, unbounded drift is not.
  EXPECT_LE(flat.memory_bytes(),
            16u * kWindow * (sizeof(state::FlatMap<uint64_t, uint64_t>::Item) +
                             1));
}

// --- ExpiryWheel ----------------------------------------------------

struct WheelHarness {
  struct Entry {
    util::Timestamp expires = 0;
    uint32_t next = state::ExpiryWheel::kNil;
  };
  std::vector<Entry> entries;
  std::vector<uint32_t> fired;
  state::ExpiryWheel wheel;

  explicit WheelHarness(util::Timestamp tick, size_t slots,
                        util::Timestamp start = 0) {
    wheel.init(tick, slots, start);
  }
  auto next_ref() {
    return [this](uint32_t h) -> uint32_t& { return entries[h].next; };
  }
  uint32_t schedule(util::Timestamp expires) {
    const uint32_t h = static_cast<uint32_t>(entries.size());
    entries.push_back(Entry{expires, state::ExpiryWheel::kNil});
    wheel.schedule(h, expires, next_ref());
    return h;
  }
  state::ExpiryWheel::AdvanceResult advance(util::Timestamp now) {
    return wheel.advance(
        now, next_ref(), [this](uint32_t h) { return entries[h].expires; },
        [this](uint32_t h) { fired.push_back(h); });
  }
};

TEST(ExpiryWheel, FiresEntryDueExactlyAtHorizon) {
  WheelHarness w(/*tick=*/kSecond, /*slots=*/64);
  const util::Timestamp due = 5 * kSecond;
  w.schedule(due);
  auto result = w.advance(due - 1);
  EXPECT_EQ(result.fired, 0u);
  EXPECT_EQ(w.wheel.size(), 1u);
  // The bound must never overshoot the real minimum.
  EXPECT_LE(result.next_due_bound, due);
  result = w.advance(due);  // expiry <= now: fires exactly at the boundary
  EXPECT_EQ(result.fired, 1u);
  EXPECT_EQ(w.wheel.size(), 0u);
  EXPECT_EQ(result.next_due_bound, state::ExpiryWheel::kNever);
}

TEST(ExpiryWheel, BackdatedEntryClampsToCursorAndFiresNext) {
  WheelHarness w(kSecond, 64, /*start=*/100 * kSecond);
  // Clock skew handed us an already-expired entry; it must clamp into
  // the current slot and fire on the next advance, not be lost to an
  // already-passed slot.
  w.schedule(7 * kSecond);
  const auto result = w.advance(100 * kSecond);
  EXPECT_EQ(result.fired, 1u);
}

TEST(ExpiryWheel, SkewedAppendOrderStaysExact) {
  WheelHarness w(/*tick=*/16 * kSecond, /*slots=*/64);
  // Three entries land in the same slot out of expiry order (a skewed
  // clock): the slot loses its sorted flag and must fall back to the
  // full walk, firing exactly the due subset.
  const uint32_t late = w.schedule(15 * kSecond);
  const uint32_t early = w.schedule(2 * kSecond);
  const uint32_t mid = w.schedule(9 * kSecond);
  const auto result = w.advance(9 * kSecond);
  EXPECT_EQ(result.fired, 2u);
  EXPECT_EQ(w.fired, (std::vector<uint32_t>{early, mid}));
  // The survivor's exact expiry is the bound (current-slot precision).
  EXPECT_EQ(result.next_due_bound, w.entries[late].expires);
}

TEST(ExpiryWheel, LongIdleGapDrainsEverySlotOnce) {
  WheelHarness w(kSecond, 64);
  for (int i = 0; i < 200; ++i) {
    w.schedule((1 + i % 60) * kSecond);
  }
  // Jump far past several wheel revolutions: one advance must fire
  // everything without spinning revolution-by-revolution.
  const auto result = w.advance(1000 * kSecond);
  EXPECT_EQ(result.fired, 200u);
  EXPECT_EQ(w.wheel.size(), 0u);
  EXPECT_EQ(w.wheel.occupied_slots(), 0u);
}

TEST(ExpiryWheel, PopFrontEvictsOldestUnderMonotoneInserts) {
  WheelHarness w(kSecond, 64);
  const uint32_t a = w.schedule(3 * kSecond);
  const uint32_t b = w.schedule(5 * kSecond);
  const uint32_t c = w.schedule(9 * kSecond);
  EXPECT_EQ(w.wheel.pop_front(w.next_ref()), a);
  EXPECT_EQ(w.wheel.pop_front(w.next_ref()), b);
  EXPECT_EQ(w.wheel.pop_front(w.next_ref()), c);
  EXPECT_EQ(w.wheel.pop_front(w.next_ref()), state::ExpiryWheel::kNil);
}

// --- DescriptorStore ------------------------------------------------

cookies::CookieDescriptor make_descriptor(cookies::CookieId id,
                                          size_t key_len = 32) {
  cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.resize(key_len);
  for (size_t i = 0; i < key_len; ++i) {
    d.key[i] = static_cast<uint8_t>(id * 31 + i);
  }
  d.service_data = "Boost";
  d.attributes.transports = {cookies::Transport::kUdpHeader};
  d.attributes.extra["region"] = "us";
  return d;
}

TEST(DescriptorStore, MaterializeRoundTripsExactly) {
  cookies::DescriptorStore store;
  auto with_expiry = make_descriptor(1);
  with_expiry.attributes.expires_at = 42 * kSecond;
  auto no_expiry = make_descriptor(2);
  auto long_key = make_descriptor(3, /*key_len=*/48);  // spills
  store.upsert(with_expiry);
  store.upsert(no_expiry);
  store.upsert(long_key);

  for (const auto& original : {with_expiry, no_expiry, long_key}) {
    const auto* record = store.find(original.cookie_id);
    ASSERT_NE(record, nullptr);
    EXPECT_FALSE(record->revoked);
    EXPECT_EQ(store.materialize(*record), original);
  }
  // Same service profile across all three records.
  EXPECT_EQ(store.profile_count(), 1u);
}

TEST(DescriptorStore, ExpiryLivesPerRecordNotPerProfile) {
  cookies::DescriptorStore store;
  auto a = make_descriptor(1);
  a.attributes.expires_at = 10 * kSecond;
  auto b = make_descriptor(2);
  b.attributes.expires_at = 99 * kSecond;
  store.upsert(a);
  store.upsert(b);
  // Distinct expiries share one interned profile; each record carries
  // its own.
  EXPECT_EQ(store.profile_count(), 1u);
  EXPECT_TRUE(store.find(1)->expired(10 * kSecond));
  EXPECT_FALSE(store.find(2)->expired(10 * kSecond));
  EXPECT_EQ(store.materialize(*store.find(2)), b);
}

TEST(DescriptorStore, EraseSwapKeepsOtherRecordsFindable) {
  cookies::DescriptorStore store;
  for (cookies::CookieId id = 1; id <= 100; ++id) {
    store.upsert(make_descriptor(id));
  }
  // Erase from the middle: swap-remove moves the last record into the
  // hole and must re-point its index entry.
  EXPECT_TRUE(store.erase(50));
  EXPECT_FALSE(store.erase(50));
  EXPECT_EQ(store.size(), 99u);
  for (cookies::CookieId id = 1; id <= 100; ++id) {
    const auto* record = store.find(id);
    if (id == 50) {
      EXPECT_EQ(record, nullptr);
      continue;
    }
    ASSERT_NE(record, nullptr) << id;
    EXPECT_EQ(store.materialize(*record), make_descriptor(id));
  }
}

TEST(DescriptorStore, RevokeUnknownIdPlantsTombstone) {
  cookies::DescriptorStore store;
  store.revoke(77);
  const auto* record = store.find(77);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->revoked);
  // Re-granting clears the tombstone.
  store.upsert(make_descriptor(77));
  EXPECT_FALSE(store.find(77)->revoked);
}

// --- HotTier --------------------------------------------------------

TEST(HotTier, LookupTrustsOnlyCurrentEpoch) {
  cookies::DescriptorStore store;
  store.upsert(make_descriptor(1));
  cookies::HotTier tier(/*budget=*/8);

  EXPECT_EQ(tier.lookup(1, /*epoch=*/1), nullptr);
  const auto* admitted = tier.admit(*store.find(1), store, /*epoch=*/1);
  ASSERT_NE(admitted, nullptr);
  EXPECT_EQ(admitted->descriptor, make_descriptor(1));
  EXPECT_EQ(tier.rehydrations(), 1u);

  EXPECT_NE(tier.lookup(1, 1), nullptr);
  // Table swap: stale stamp, the caller must re-resolve.
  EXPECT_EQ(tier.lookup(1, 2), nullptr);
  // Revalidation with an unchanged key keeps the schedule (no rebuild).
  tier.admit(*store.find(1), store, 2);
  EXPECT_EQ(tier.rehydrations(), 1u);
  EXPECT_NE(tier.lookup(1, 2), nullptr);
  EXPECT_EQ(tier.resident(), 1u);
}

TEST(HotTier, KeyRotationRebuildsSchedule) {
  cookies::DescriptorStore store;
  store.upsert(make_descriptor(1));
  cookies::HotTier tier(8);
  tier.admit(*store.find(1), store, 1);
  ASSERT_EQ(tier.rehydrations(), 1u);

  auto rotated = make_descriptor(1);
  rotated.key.assign(32, 0xAB);
  store.upsert(rotated);
  const auto* entry = tier.admit(*store.find(1), store, 2);
  EXPECT_EQ(tier.rehydrations(), 2u);
  EXPECT_EQ(entry->descriptor.key, rotated.key);
}

TEST(HotTier, BudgetBoundsResidencyViaClockEviction) {
  cookies::DescriptorStore store;
  for (cookies::CookieId id = 1; id <= 32; ++id) {
    store.upsert(make_descriptor(id));
  }
  cookies::HotTier tier(/*budget=*/4);
  for (cookies::CookieId id = 1; id <= 32; ++id) {
    tier.begin_burst();
    tier.admit(*store.find(id), store, 1);
  }
  EXPECT_LE(tier.resident(), 4u);
  EXPECT_GE(tier.evictions(), 28u);
  // The most recent admission survived.
  EXPECT_NE(tier.lookup(32, 1), nullptr);
}

TEST(HotTier, EvictedEntryStaysReadableUntilNextBurst) {
  cookies::DescriptorStore store;
  store.upsert(make_descriptor(1));
  store.upsert(make_descriptor(2));
  cookies::HotTier tier(/*budget=*/1);
  tier.begin_burst();
  const auto* first = tier.admit(*store.find(1), store, 1);
  // Admitting a second entry over a budget of one evicts the first —
  // but mid-burst eviction only parks the slot in limbo, so a
  // VerifyResult still pointing at it reads intact data.
  const auto* second = tier.admit(*store.find(2), store, 1);
  ASSERT_NE(first, second);
  EXPECT_EQ(first->descriptor.cookie_id, 1u);
  EXPECT_EQ(second->descriptor.cookie_id, 2u);
  EXPECT_EQ(tier.resident(), 1u);
  // Next burst releases the limbo slot for reuse.
  tier.begin_burst();
  tier.admit(*store.find(1), store, 1);
  EXPECT_EQ(tier.resident(), 1u);
}

}  // namespace
}  // namespace nnn
