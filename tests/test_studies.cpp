// Study models: Fig. 1 deployment, Fig. 2 survey, Fig. 6 accuracy,
// Table 1 probes. Assertions are bands around the paper's aggregates.
#include <gtest/gtest.h>

#include "studies/accuracy.h"
#include "studies/deployment.h"
#include "studies/properties.h"
#include "studies/survey.h"

namespace nnn::studies {
namespace {

TEST(Deployment, InstallRateMatchesPaper) {
  DeploymentModel model({}, 42);
  const auto prefs = model.run();
  // 161 of 400 installed (40%); sampling jitter allowed.
  EXPECT_NEAR(static_cast<double>(model.installed_users()), 161.0, 20.0);
  EXPECT_FALSE(prefs.empty());
}

TEST(Deployment, PreferencesAreHeavyTailed) {
  DeploymentModel model({}, 42);
  const auto prefs = model.run();
  const auto summary =
      DeploymentModel::summarize(prefs, 400, model.installed_users());
  // "43% of expressed preferences were unique"
  EXPECT_NEAR(summary.unique_share, 0.43, 0.10);
  // "median popularity index of 223"
  EXPECT_GT(summary.median_rank, 40u);
  EXPECT_LT(summary.median_rank, 1500u);
  // Dozens of distinct sites across 161 homes.
  EXPECT_GT(summary.distinct_sites, 40u);
}

TEST(Deployment, PopularSitesLeadTheRanking) {
  DeploymentModel model({}, 7);
  const auto prefs = model.run();
  const auto summary =
      DeploymentModel::summarize(prefs, 400, model.installed_users());
  ASSERT_FALSE(summary.top_sites.empty());
  // The most-boosted site is one of the popular head sites, picked by
  // several users (Fig. 1's left side).
  EXPECT_GE(summary.top_sites.front().second, 3u);
}

TEST(Deployment, DifferentSeedsDifferentSamplesSameShape) {
  for (const uint64_t seed : {1ull, 2ull, 3ull}) {
    DeploymentModel model({}, seed);
    const auto prefs = model.run();
    const auto summary =
        DeploymentModel::summarize(prefs, 400, model.installed_users());
    EXPECT_GT(summary.unique_share, 0.25) << "seed " << seed;
    EXPECT_LT(summary.unique_share, 0.60) << "seed " << seed;
  }
}

TEST(Survey, InterestRateMatchesPaper) {
  SurveyModel model({}, 11);
  const auto responses = model.run();
  const auto summary = SurveyModel::summarize(responses);
  EXPECT_EQ(summary.respondents, 1000u);
  // "65% of users expressed interest"
  EXPECT_NEAR(static_cast<double>(summary.interested), 650.0, 45.0);
}

TEST(Survey, HeavyTailOfApps) {
  SurveyModel model({}, 11);
  const auto summary = SurveyModel::summarize(model.run());
  // All 106 observed apps appear (the catalog is the response set).
  EXPECT_EQ(summary.distinct_apps, 106u);
  // facebook dominates (Fig. 2's y-axis tops out ~50)...
  EXPECT_NEAR(static_cast<double>(summary.per_app.at("facebook")), 47.0,
              8.0);
  // ...and most apps are singletons (the heavy tail).
  size_t singletons = 0;
  for (const auto& [name, count] : summary.per_app) {
    if (count == 1) ++singletons;
  }
  EXPECT_GE(singletons, 70u);
}

TEST(Survey, ProgramCoverageMatchesPaper) {
  SurveyModel model({}, 11);
  const auto summary = SurveyModel::summarize(model.run());
  // "Music Freedom just 11.5%"
  EXPECT_NEAR(summary.program_coverage.at("Music Freedom"), 0.115, 0.04);
  // "Wikipedia Zero covers only 0.4%"
  EXPECT_LT(summary.program_coverage.at("Wikipedia-Zero"), 0.015);
}

TEST(Survey, DeterministicUnderSeed) {
  SurveyModel a({}, 3);
  SurveyModel b({}, 3);
  EXPECT_EQ(SurveyModel::summarize(a.run()).per_app,
            SurveyModel::summarize(b.run()).per_app);
}

class AccuracyTest : public ::testing::Test {
 protected:
  static const AccuracyResult& result() {
    static const AccuracyResult r = AccuracyExperiment(1234).run();
    return r;
  }

  static const SiteAccuracy& find(const std::vector<SiteAccuracy>& v,
                                  const std::string& site) {
    for (const auto& acc : v) {
      if (acc.site == site) return acc;
    }
    throw std::runtime_error("missing site " + site);
  }
};

TEST_F(AccuracyTest, CookiesBoostOver90PercentNoFalsePositives) {
  for (const auto& site : {"cnn.com", "youtube.com", "skai.gr"}) {
    const auto& acc = find(result().cookies, site);
    EXPECT_GT(acc.matched_pct, 90.0) << site;   // ">90% of traffic"
    EXPECT_LT(acc.matched_pct, 100.0) << site;  // DNS/prefetch missed
    EXPECT_EQ(acc.false_pct, 0.0) << site;      // "no false positives"
  }
}

TEST_F(AccuracyTest, DpiMatchesCnnPoorly) {
  const auto& cnn = find(result().dpi, "cnn.com");
  // "DPI correctly identified only 18% of the traffic"
  EXPECT_NEAR(cnn.matched_pct, 18.0, 6.0);
}

TEST_F(AccuracyTest, DpiMissesSkaiEntirely) {
  const auto& skai = find(result().dpi, "skai.gr");
  EXPECT_EQ(skai.matched_pct, 0.0);  // "failed to detect any traffic"
}

TEST_F(AccuracyTest, DpiYoutubeFalseMatchesSkaiEmbeds) {
  const auto& youtube = find(result().dpi, "youtube.com");
  EXPECT_GT(youtube.matched_pct, 50.0);
  EXPECT_GT(youtube.false_pct, 1.0);  // skai's embedded player packets
}

TEST_F(AccuracyTest, OobServerOnlyMatchesButOvermatches) {
  for (const auto& site : {"cnn.com", "youtube.com", "skai.gr"}) {
    const auto& acc = find(result().oob, site);
    EXPECT_GT(acc.matched_pct, 85.0) << site;
    EXPECT_GT(acc.false_pct, 10.0) << site;  // shared CDN/ads servers
  }
  // The paper's headline number: ~40% false positives on their example.
  double max_false = 0;
  for (const auto& acc : result().oob) {
    max_false = std::max(max_false, acc.false_pct);
  }
  EXPECT_GT(max_false, 25.0);
}

TEST_F(AccuracyTest, OobExactDescriptionsDieAtNat) {
  for (const auto& site : {"cnn.com", "youtube.com", "skai.gr"}) {
    const auto& acc = find(result().oob_exact, site);
    EXPECT_EQ(acc.matched_pct, 0.0) << site;
  }
}

TEST(Properties, MatrixMatchesPaperTable1) {
  const auto rows = evaluate_properties();
  ASSERT_EQ(rows.size(), 14u);
  // Cookies hold every property in Table 1.
  for (const auto& row : rows) {
    EXPECT_TRUE(row.cookies) << row.property;
  }
  // Spot-check the baseline columns against the paper's table.
  const auto find_row = [&](const std::string& property) {
    for (const auto& row : rows) {
      if (row.property == property) return row;
    }
    throw std::runtime_error("missing row " + property);
  };
  const auto replay = find_row("protection from replay, spoofing");
  EXPECT_TRUE(replay.dpi);
  EXPECT_FALSE(replay.oob);
  EXPECT_FALSE(replay.diffserv);
  const auto privacy = find_row("respect privacy");
  EXPECT_FALSE(privacy.dpi);
  EXPECT_TRUE(privacy.oob);
  EXPECT_TRUE(privacy.diffserv);
  const auto overhead = find_row("low overhead");
  EXPECT_TRUE(overhead.dpi);
  EXPECT_FALSE(overhead.oob);
  const auto independence =
      find_row("independent from headerspace, payload, path");
  EXPECT_FALSE(independence.dpi);
  EXPECT_FALSE(independence.oob);
  EXPECT_FALSE(independence.diffserv);
}

TEST(Properties, IndividualProbesHold) {
  EXPECT_TRUE(probe_cookie_replay_protection());
  EXPECT_TRUE(probe_cookie_spoof_protection());
  EXPECT_TRUE(probe_diffserv_no_auth());
  EXPECT_TRUE(probe_oob_spoofable());
  EXPECT_TRUE(probe_cookie_revocation());
  EXPECT_TRUE(probe_cookie_privacy());
  EXPECT_TRUE(probe_dpi_needs_visibility());
  EXPECT_TRUE(probe_cookie_nat_independence());
  EXPECT_TRUE(probe_cookie_multi_transport());
  EXPECT_TRUE(probe_cookie_composition());
  EXPECT_TRUE(probe_cookie_delegation());
  EXPECT_TRUE(probe_diffserv_class_limit());
}

}  // namespace
}  // namespace nnn::studies
