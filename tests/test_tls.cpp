// TLS ClientHello codec with SNI and the network-cookie extension.
#include <gtest/gtest.h>

#include "net/tls.h"
#include "util/rng.h"

namespace nnn::net::tls {
namespace {

TEST(ClientHello, RecordRoundTrip) {
  ClientHello hello;
  hello.random.fill(0xab);
  hello.session_id = {1, 2, 3};
  hello.cipher_suites = {0x1301, 0x1302};
  hello.set_server_name("video.example.com");
  const auto parsed = ClientHello::parse_record(
      util::BytesView(hello.serialize_record()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->legacy_version, hello.legacy_version);
  EXPECT_EQ(parsed->random, hello.random);
  EXPECT_EQ(parsed->session_id, hello.session_id);
  EXPECT_EQ(parsed->cipher_suites, hello.cipher_suites);
  EXPECT_EQ(parsed->server_name().value(), "video.example.com");
}

TEST(ClientHello, CookieExtensionRoundTrip) {
  ClientHello hello;
  hello.set_server_name("example.com");
  const util::Bytes cookie = {9, 8, 7, 6, 5};
  hello.set_cookie(util::BytesView(cookie));
  const auto parsed = ClientHello::parse_record(
      util::BytesView(hello.serialize_record()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cookie().value(), cookie);
  // SNI still intact next to the custom extension.
  EXPECT_EQ(parsed->server_name().value(), "example.com");
}

TEST(ClientHello, SetCookieReplacesExisting) {
  ClientHello hello;
  hello.set_cookie(util::BytesView(util::Bytes{1}));
  hello.set_cookie(util::BytesView(util::Bytes{2, 3}));
  EXPECT_EQ(hello.cookie().value(), (util::Bytes{2, 3}));
  EXPECT_EQ(hello.extensions.size(), 1u);
}

TEST(ClientHello, ClearCookieRemovesExtension) {
  ClientHello hello;
  EXPECT_FALSE(hello.clear_cookie());
  hello.set_cookie(util::BytesView(util::Bytes{1}));
  EXPECT_TRUE(hello.clear_cookie());
  EXPECT_FALSE(hello.cookie().has_value());
}

TEST(ClientHello, NoExtensionsParses) {
  ClientHello hello;
  hello.extensions.clear();
  const auto parsed = ClientHello::parse_record(
      util::BytesView(hello.serialize_record()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->server_name().has_value());
  EXPECT_FALSE(parsed->cookie().has_value());
}

TEST(ClientHello, SetServerNameReplaces) {
  ClientHello hello;
  hello.set_server_name("a.example");
  hello.set_server_name("b.example");
  EXPECT_EQ(hello.server_name().value(), "b.example");
  EXPECT_EQ(hello.extensions.size(), 1u);
}

TEST(ClientHello, RejectsNonHandshakeRecord) {
  ClientHello hello;
  auto record = hello.serialize_record();
  record[0] = 23;  // application_data
  EXPECT_FALSE(
      ClientHello::parse_record(util::BytesView(record)).has_value());
}

TEST(ClientHello, RejectsTruncation) {
  ClientHello hello;
  hello.set_server_name("example.com");
  const auto record = hello.serialize_record();
  for (size_t keep = 0; keep < record.size(); keep += 7) {
    EXPECT_FALSE(ClientHello::parse_record(
                     util::BytesView(record.data(), keep))
                     .has_value())
        << "keep=" << keep;
  }
}

TEST(ClientHello, GarbageNeverCrashes) {
  util::Rng rng(41);
  for (int i = 0; i < 300; ++i) {
    util::Bytes junk(rng.next_u64(120));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.next_u64());
    (void)ClientHello::parse_record(util::BytesView(junk));
  }
  SUCCEED();
}

}  // namespace
}  // namespace nnn::net::tls
