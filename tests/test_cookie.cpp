// Cookie wire format, signatures, and composition stacks.
#include <gtest/gtest.h>

#include "cookies/cookie.h"
#include "cookies/generator.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn::cookies {
namespace {

CookieDescriptor make_descriptor(CookieId id) {
  CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(id + 3));
  d.service_data = "Boost";
  return d;
}

TEST(Cookie, EncodeDecodeRoundTrip) {
  util::ManualClock clock(12'345 * util::kSecond);
  CookieGenerator gen(make_descriptor(77), clock, 1);
  const Cookie c = gen.generate();
  const auto decoded = Cookie::decode(util::BytesView(c.encode()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, c);
}

TEST(Cookie, EncodedSizeIsFixed) {
  util::ManualClock clock(0);
  CookieGenerator gen(make_descriptor(1), clock, 2);
  EXPECT_EQ(gen.generate().encode().size(), kCookieWireSize);
}

TEST(Cookie, TextFormRoundTrips) {
  util::ManualClock clock(99 * util::kSecond);
  CookieGenerator gen(make_descriptor(42), clock, 3);
  const Cookie c = gen.generate();
  const std::string text = c.encode_text();
  // base64: printable, header-safe.
  for (const char ch : text) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '+' ||
                ch == '/' || ch == '=');
  }
  const auto decoded = Cookie::decode_text(text);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, c);
}

TEST(Cookie, GeneratorStampsClockTime) {
  util::ManualClock clock(1000 * util::kSecond);
  CookieGenerator gen(make_descriptor(5), clock, 4);
  EXPECT_EQ(gen.generate().timestamp, 1000u);
  clock.advance(30 * util::kSecond);
  EXPECT_EQ(gen.generate().timestamp, 1030u);
}

TEST(Cookie, GeneratorProducesUniqueUuids) {
  util::ManualClock clock(0);
  CookieGenerator gen(make_descriptor(6), clock, 5);
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(seen.insert(gen.generate().uuid.to_string()).second);
  }
}

TEST(Cookie, SignatureBindsAllFields) {
  util::ManualClock clock(500 * util::kSecond);
  const auto descriptor = make_descriptor(7);
  CookieGenerator gen(descriptor, clock, 6);
  Cookie c = gen.generate();
  const auto valid_tag = c.compute_tag(util::BytesView(descriptor.key));
  EXPECT_EQ(c.signature, valid_tag);

  Cookie tampered_id = c;
  tampered_id.cookie_id ^= 1;
  EXPECT_NE(tampered_id.compute_tag(util::BytesView(descriptor.key)),
            c.signature);

  Cookie tampered_time = c;
  tampered_time.timestamp += 1;
  EXPECT_NE(tampered_time.compute_tag(util::BytesView(descriptor.key)),
            c.signature);
}

TEST(Cookie, DecodeRejectsBadMagicAndVersion) {
  util::ManualClock clock(0);
  CookieGenerator gen(make_descriptor(8), clock, 7);
  auto wire = gen.generate().encode();
  auto bad_magic = wire;
  bad_magic[0] = 'X';
  EXPECT_FALSE(Cookie::decode(util::BytesView(bad_magic)).has_value());
  auto bad_version = wire;
  bad_version[3] = 0x7f;
  EXPECT_FALSE(Cookie::decode(util::BytesView(bad_version)).has_value());
}

TEST(Cookie, DecodeRejectsTruncationAndTrailing) {
  util::ManualClock clock(0);
  CookieGenerator gen(make_descriptor(9), clock, 8);
  auto wire = gen.generate().encode();
  EXPECT_FALSE(
      Cookie::decode(util::BytesView(wire.data(), wire.size() - 1))
          .has_value());
  wire.push_back(0);
  EXPECT_FALSE(Cookie::decode(util::BytesView(wire)).has_value());
}

TEST(Cookie, DecodeTextRejectsNonBase64) {
  EXPECT_FALSE(Cookie::decode_text("!!!not-base64!!!").has_value());
  EXPECT_FALSE(Cookie::decode_text("").has_value());
}

TEST(CookieStack, ComposeAndDecode) {
  util::ManualClock clock(0);
  CookieGenerator gen_a(make_descriptor(10), clock, 9);
  CookieGenerator gen_b(make_descriptor(11), clock, 10);
  CookieGenerator gen_c(make_descriptor(12), clock, 11);
  const std::vector<Cookie> stack = {gen_a.generate(), gen_b.generate(),
                                     gen_c.generate()};
  const auto decoded = decode_stack(util::BytesView(encode_stack(stack)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, stack);
}

TEST(CookieStack, SingleCookieStackEqualsPlainEncoding) {
  util::ManualClock clock(0);
  CookieGenerator gen(make_descriptor(13), clock, 12);
  const Cookie c = gen.generate();
  EXPECT_EQ(encode_stack({c}), c.encode());
}

TEST(CookieStack, TextRoundTrip) {
  util::ManualClock clock(0);
  CookieGenerator gen(make_descriptor(14), clock, 13);
  const std::vector<Cookie> stack = {gen.generate(), gen.generate()};
  const auto decoded = decode_stack_text(encode_stack_text(stack));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, stack);
}

TEST(CookieStack, RejectsTruncatedFollower) {
  util::ManualClock clock(0);
  CookieGenerator gen(make_descriptor(15), clock, 14);
  auto wire = encode_stack({gen.generate(), gen.generate()});
  wire.resize(wire.size() - 5);
  EXPECT_FALSE(decode_stack(util::BytesView(wire)).has_value());
}

TEST(CookieTime, ConvertsMicrosecondsToSeconds) {
  EXPECT_EQ(to_cookie_time(0), 0u);
  EXPECT_EQ(to_cookie_time(999'999), 0u);
  EXPECT_EQ(to_cookie_time(1'000'000), 1u);
  EXPECT_EQ(to_cookie_time(5'500'000), 5u);
}

}  // namespace
}  // namespace nnn::cookies
