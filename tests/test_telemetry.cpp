// Telemetry: instruments, registry merge, views, exporters (golden),
// and the differential check that views are bit-identical to the seed
// *Stats accessors on a fixed trace.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "audit/stats.h"
#include "cookies/generator.h"
#include "cookies/verifier.h"
#include "dataplane/flow_table.h"
#include "dataplane/middlebox.h"
#include "dataplane/qos.h"
#include "server/json_api.h"
#include "telemetry/exposition.h"
#include "telemetry/labels.h"
#include "telemetry/metrics.h"
#include "telemetry/view.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/samplers.h"

namespace nnn {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::LabelSet;
using telemetry::Registry;
using telemetry::Snapshot;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

TEST(Telemetry, CounterSingleWriterOps) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.dec(2);
  EXPECT_EQ(c.value(), 40u);
  c.inc_release(2);
  EXPECT_EQ(c.value_acquire(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Telemetry, GaugeGoesNegative) {
  Gauge g;
  g.set(10);
  g.sub(25);
  EXPECT_EQ(g.value(), -15);
  g.add(15);
  EXPECT_EQ(g.value(), 0);
}

TEST(Telemetry, ShardedCounterSumsAcrossThreads) {
  telemetry::ShardedCounter c;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(Telemetry, HistogramBucketMathInvariants) {
  const uint64_t values[] = {0,    1,    7,     8,      9,     15,
                             16,   17,   255,   256,    257,   1000,
                             4095, 4096, 65537, 1u << 20, 1ull << 40};
  for (const uint64_t v : values) {
    const uint32_t i = Histogram::bucket_index(v);
    ASSERT_LT(i, Histogram::kBuckets);
    // v lands at or below its bucket's upper bound...
    EXPECT_GE(Histogram::bucket_upper_bound(i), v) << "v=" << v;
    // ...and strictly above the previous bucket's.
    if (i > 0) {
      EXPECT_LT(Histogram::bucket_upper_bound(i - 1), v) << "v=" << v;
    }
  }
  // Upper bounds are strictly increasing (total order across buckets).
  for (uint32_t i = 1; i < 64; ++i) {
    EXPECT_GT(Histogram::bucket_upper_bound(i),
              Histogram::bucket_upper_bound(i - 1));
  }
  // Small values are exact: one bucket per integer through 15.
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), v);
    EXPECT_EQ(Histogram::bucket_upper_bound(static_cast<uint32_t>(v)), v);
  }
}

TEST(Telemetry, HistogramRecordCountSum) {
  Histogram h;
  const uint64_t values[] = {0, 1, 7, 8, 100, 1'000'000};
  uint64_t expected_sum = 0;
  for (const uint64_t v : values) {
    h.record(v);
    expected_sum += v;
  }
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), expected_sum);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(Telemetry, HistogramQuantileExactInIdentityRange) {
  // Small values occupy single-value buckets, so the estimator is
  // exact there — no interpolation error to excuse.
  Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.record(v);
  EXPECT_EQ(h.value_at_quantile(0.0), 1u);  // q=0 -> minimum
  EXPECT_EQ(h.value_at_quantile(0.5), 5u);
  EXPECT_EQ(h.value_at_quantile(1.0), 10u);
  EXPECT_EQ(Histogram().value_at_quantile(0.5), 0u);  // empty -> 0
}

TEST(Telemetry, HistogramQuantileRepeatedValue) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(7);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.value_at_quantile(q), 7u) << "q=" << q;
  }
}

TEST(Telemetry, HistogramQuantileGoldenVsExactQuantiles) {
  // Golden contract with the audit stats core: on a realistic
  // heavy-tail sample the log-linear estimate must land within one
  // sub-bucket's relative width (kSubBits=3 -> 1/8 = 12.5%) of the
  // exact sorted-sample quantile. The sample set is seed-pinned
  // (StableLogNormal), so a regression in either estimator trips this
  // deterministically.
  nnn::util::Rng rng(2024);
  const nnn::workload::StableLogNormal dist(10.0, 0.7);
  Histogram h;
  std::vector<double> samples;
  for (int i = 0; i < 5000; ++i) {
    const auto v = static_cast<uint64_t>(dist.next(rng));
    h.record(v);
    samples.push_back(static_cast<double>(v));
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    const double exact = nnn::audit::exact_quantile(samples, q);
    const double estimate = static_cast<double>(h.value_at_quantile(q));
    EXPECT_NEAR(estimate, exact, exact * 0.13 + 1.0)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate;
  }
}

TEST(Telemetry, ScopedTimerRespectsGlobalSwitch) {
  Histogram h;
  telemetry::set_timers_enabled(false);
  { telemetry::ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 0u);
  telemetry::set_timers_enabled(true);
  { telemetry::ScopedTimer t(h); }
  EXPECT_EQ(h.count(), 1u);
}

TEST(Telemetry, LabelSetSortsAndCompares) {
  LabelSet a{{"z", "1"}, {"a", "2"}};
  EXPECT_EQ(a.pairs()[0].first, "a");
  EXPECT_EQ(a.pairs()[1].first, "z");
  LabelSet b{{"a", "2"}, {"z", "1"}};
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.contains_all(LabelSet{{"a", "2"}}));
  EXPECT_FALSE(a.contains_all(LabelSet{{"a", "3"}}));
  EXPECT_TRUE(a.contains_all(LabelSet{}));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Telemetry, RegistryMergesIdenticalLabelSets) {
  Registry reg;
  const auto r1 = reg.add_collector([](telemetry::SampleBuilder& b) {
    b.counter("nnn_x_total", "help", LabelSet{{"k", "a"}}, 2);
  });
  const auto r2 = reg.add_collector([](telemetry::SampleBuilder& b) {
    b.counter("nnn_x_total", "help", LabelSet{{"k", "a"}}, 3);
    b.counter("nnn_x_total", "help", LabelSet{{"k", "b"}}, 7);
  });
  const Snapshot snap = reg.snapshot();
  const telemetry::Family* fam = snap.find("nnn_x_total");
  ASSERT_NE(fam, nullptr);
  ASSERT_EQ(fam->samples.size(), 2u);  // {k=a} merged, {k=b} distinct
  EXPECT_EQ(fam->samples[0].counter_value, 5u);
  EXPECT_EQ(fam->samples[1].counter_value, 7u);
  EXPECT_EQ(snap.counter_total("nnn_x_total"), 12u);
  EXPECT_EQ(snap.counter_total("nnn_x_total", LabelSet{{"k", "a"}}), 5u);
  EXPECT_EQ(snap.counter_total("nnn_absent_total"), 0u);
}

TEST(Telemetry, RegistrationDeregistersOnDestruction) {
  Registry reg;
  {
    const auto r = reg.add_collector([](telemetry::SampleBuilder& b) {
      b.counter("nnn_gone_total", "help", {}, 1);
    });
    EXPECT_EQ(reg.collector_count(), 1u);
    EXPECT_NE(reg.snapshot().find("nnn_gone_total"), nullptr);
  }
  EXPECT_EQ(reg.collector_count(), 0u);
  EXPECT_EQ(reg.snapshot().find("nnn_gone_total"), nullptr);
}

TEST(Telemetry, StatusCountersEmitOneSamplePerValue) {
  telemetry::StatusCounters<cookies::VerifyStatus,
                            cookies::kVerifyStatusCount>
      status;
  status.inc(cookies::VerifyStatus::kOk, 5);
  status.inc(cookies::VerifyStatus::kReplayed, 2);
  EXPECT_EQ(status.total(), 7u);
  Registry reg;
  const auto r = reg.add_collector([&](telemetry::SampleBuilder& b) {
    status.collect(b, "nnn_s_total", "help",
                   [](cookies::VerifyStatus s) { return to_string(s); });
  });
  const Snapshot snap = reg.snapshot();
  const telemetry::Family* fam = snap.find("nnn_s_total");
  ASSERT_NE(fam, nullptr);
  EXPECT_EQ(fam->samples.size(), cookies::kVerifyStatusCount);
  EXPECT_EQ(snap.counter_total("nnn_s_total", LabelSet{{"status", "ok"}}),
            5u);
  EXPECT_EQ(
      snap.counter_total("nnn_s_total", LabelSet{{"status", "replayed"}}),
      2u);
}

TEST(Telemetry, ViewCellsRoundTripThroughRegistry) {
  Registry reg;
  telemetry::View<dataplane::MiddleboxStats> view;
  view.register_with(reg);
  view.cell<&dataplane::MiddleboxStats::packets>().inc(5);
  view.cell<&dataplane::MiddleboxStats::bytes>().inc(640);
  const dataplane::MiddleboxStats s = view.snapshot();
  EXPECT_EQ(s.packets, 5u);
  EXPECT_EQ(s.bytes, 640u);
  const Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_total("nnn_middlebox_packets_total"), 5u);
  EXPECT_EQ(snap.counter_total("nnn_middlebox_bytes_total"), 640u);
}

// ---------------------------------------------------------------------------
// Exporters (structure + golden files)
// ---------------------------------------------------------------------------

/// Deterministic fixture registry both exporters render.
class GoldenRegistry {
 public:
  GoldenRegistry() {
    latency_.record(0);
    latency_.record(5);
    latency_.record(100);
    latency_.record(4096);
    registration_ = registry_.add_collector(
        [this](telemetry::SampleBuilder& b) {
          b.counter("nnn_test_requests_total", "Requests by status",
                    LabelSet{{"status", "ok"}}, 3);
          b.counter("nnn_test_requests_total", "Requests by status",
                    LabelSet{{"status", "error"}}, 1);
          b.gauge("nnn_test_queue_depth", "Current queue depth", {}, 7);
          b.histogram("nnn_test_latency_nanos", "Request latency", {},
                      latency_);
          b.counter("nnn_test_escapes_total", "Label escaping",
                    LabelSet{{"path", "a\"b\\c\nd"}}, 1);
        });
  }

  Snapshot snapshot() const { return registry_.snapshot(); }

 private:
  Registry registry_;
  Histogram latency_;
  telemetry::Registration registration_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Compares `actual` against the golden file; regenerate goldens with
/// NNN_UPDATE_GOLDEN=1 in the environment.
void expect_matches_golden(const std::string& actual,
                           const std::string& filename) {
  const std::string path = std::string(NNN_GOLDEN_DIR) + "/" + filename;
  if (std::getenv("NNN_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    ASSERT_TRUE(out.good()) << "failed to write " << path;
    return;
  }
  const std::string expected = read_file(path);
  ASSERT_FALSE(expected.empty())
      << "missing golden file " << path
      << " (run with NNN_UPDATE_GOLDEN=1 to create)";
  EXPECT_EQ(actual, expected) << "exposition drifted from " << filename;
}

TEST(Telemetry, PrometheusGolden) {
  const GoldenRegistry fixture;
  expect_matches_golden(telemetry::to_prometheus(fixture.snapshot()),
                        "metrics.prom");
}

TEST(Telemetry, JsonGolden) {
  const GoldenRegistry fixture;
  expect_matches_golden(
      telemetry::to_json(fixture.snapshot()).dump_pretty() + "\n",
      "metrics.json");
}

TEST(Telemetry, PrometheusHistogramIsCumulativeWithInf) {
  const GoldenRegistry fixture;
  const std::string text = telemetry::to_prometheus(fixture.snapshot());
  EXPECT_NE(text.find("# TYPE nnn_test_latency_nanos histogram"),
            std::string::npos);
  EXPECT_NE(text.find("nnn_test_latency_nanos_bucket{le=\"+Inf\"} 4"),
            std::string::npos);
  EXPECT_NE(text.find("nnn_test_latency_nanos_count 4"), std::string::npos);
  EXPECT_NE(text.find("nnn_test_latency_nanos_sum 4201"), std::string::npos);
}

TEST(Telemetry, JsonExportParsesBack) {
  const GoldenRegistry fixture;
  const json::Value v = telemetry::to_json(fixture.snapshot());
  const auto reparsed = json::parse(v.dump());
  ASSERT_TRUE(reparsed.has_value());
  const json::Value* families = reparsed->find("families");
  ASSERT_NE(families, nullptr);
  ASSERT_TRUE(families->is_array());
  EXPECT_EQ(families->as_array().size(), 4u);
}

// ---------------------------------------------------------------------------
// Differential: views vs seed accessors on a fixed trace
// ---------------------------------------------------------------------------

cookies::CookieDescriptor test_descriptor(cookies::CookieId id) {
  cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(id * 11 + 1));
  d.service_data = "Boost";
  return d;
}

TEST(Telemetry, VerifierViewMatchesAccessorsAndRegistry) {
  util::ManualClock clock(1'000'000 * util::kSecond);
  cookies::CookieVerifier verifier(clock);
  const auto descriptor = test_descriptor(1);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator gen(descriptor, clock, 1);

  for (int i = 0; i < 3; ++i) verifier.verify(gen.generate());
  const cookies::Cookie replay = gen.generate();
  verifier.verify(replay);
  verifier.verify(replay);  // -> kReplayed
  cookies::Cookie unknown = gen.generate();
  unknown.cookie_id = 999;
  verifier.verify(unknown);  // -> kUnknownId
  cookies::Cookie forged = gen.generate();
  forged.signature[0] ^= 1;
  verifier.verify(forged);  // -> kBadSignature

  const cookies::VerifierStats s = verifier.stats();
  EXPECT_EQ(s.verified, 4u);
  EXPECT_EQ(s.replayed, 1u);
  EXPECT_EQ(s.unknown_id, 1u);
  EXPECT_EQ(s.bad_signature, 1u);

  // The registry exports exactly the accessor's numbers (same cells).
  const Snapshot snap = Registry::global().snapshot();
  const LabelSet ok{{"status", "ok"}};
  EXPECT_EQ(snap.counter_total("nnn_verify_total", ok), s.verified);
  EXPECT_EQ(snap.counter_total("nnn_verify_total",
                               LabelSet{{"status", "replayed"}}),
            s.replayed);
  EXPECT_EQ(snap.counter_total("nnn_verify_total",
                               LabelSet{{"status", "unknown-id"}}),
            s.unknown_id);
  EXPECT_EQ(snap.counter_total("nnn_verify_total",
                               LabelSet{{"status", "bad-signature"}}),
            s.bad_signature);
  EXPECT_EQ(snap.counter_total("nnn_verify_total"), s.total());
  // Descriptor gauge mirrors the table size.
  const telemetry::Family* gauges = snap.find("nnn_verifier_descriptors");
  ASSERT_NE(gauges, nullptr);
  ASSERT_EQ(gauges->samples.size(), 1u);
  EXPECT_EQ(gauges->samples[0].gauge_value, 1);
  // Batch latency histogram family is present alongside the counters.
  EXPECT_NE(snap.find("nnn_verify_batch_nanos"), nullptr);
}

TEST(Telemetry, FlowTableAndQosViewsMatchAccessors) {
  util::ManualClock clock(0);
  dataplane::FlowTable table(3, 10 * util::kSecond);
  net::FiveTuple t;
  t.src_port = 5;
  table.touch(t, 100, clock.now());
  net::FiveTuple t2;
  t2.src_port = 6;
  table.touch(t2, 100, clock.now());
  table.expire_idle(3600 * util::kSecond);

  const dataplane::FlowTableStats fs = table.stats();
  EXPECT_EQ(fs.flows_created, 2u);
  EXPECT_EQ(fs.flows_expired, 2u);
  EXPECT_EQ(fs.lookups, 2u);

  dataplane::PriorityQueueSet queues(2, 250);
  net::Packet p;
  p.wire_size = 100;
  queues.enqueue(net::Packet(p), 0);
  queues.enqueue(net::Packet(p), 0);
  queues.enqueue(net::Packet(p), 0);  // dropped (over 250 B)
  queues.enqueue(net::Packet(p), 1);
  queues.dequeue();

  const Snapshot snap = Registry::global().snapshot();
  EXPECT_EQ(snap.counter_total("nnn_flows_created_total"), fs.flows_created);
  EXPECT_EQ(snap.counter_total("nnn_flows_expired_total"), fs.flows_expired);
  EXPECT_EQ(snap.counter_total("nnn_flow_lookups_total"), fs.lookups);

  const LabelSet band0{{"band", "0"}};
  const LabelSet band1{{"band", "1"}};
  EXPECT_EQ(snap.counter_total("nnn_qos_band_enqueued_total", band0),
            queues.stats(0).enqueued);
  EXPECT_EQ(snap.counter_total("nnn_qos_band_dropped_total", band0),
            queues.stats(0).dropped);
  EXPECT_EQ(snap.counter_total("nnn_qos_band_dequeued_total", band0),
            queues.stats(0).dequeued);
  EXPECT_EQ(snap.counter_total("nnn_qos_band_enqueued_total", band1),
            queues.stats(1).enqueued);
  EXPECT_EQ(queues.stats(0).dropped, 1u);
}

// ---------------------------------------------------------------------------
// Logger -> registry
// ---------------------------------------------------------------------------

TEST(Telemetry, LogEventsReachRegistryEvenWhenFiltered) {
  auto& logger = util::Logger::instance();
  logger.set_sink([](util::LogLevel, std::string_view) {});  // quiet

  const LabelSet warn{{"level", "warn"}};
  const LabelSet debug{{"level", "debug"}};
  const Snapshot before = Registry::global().snapshot();
  util::log_warn_tagged("telemetry-test", "fail-open {}", 1);
  // kDebug is below the default kWarn threshold: suppressed from the
  // sink but still counted (the silent-fail-open guarantee).
  util::log_debug("invisible");
  const Snapshot after = Registry::global().snapshot();

  EXPECT_EQ(after.counter_total("nnn_log_total", warn) -
                before.counter_total("nnn_log_total", warn),
            1u);
  EXPECT_EQ(after.counter_total("nnn_log_total", debug) -
                before.counter_total("nnn_log_total", debug),
            1u);
  EXPECT_EQ(after.counter_total(
                "nnn_log_component_total",
                LabelSet{{"component", "telemetry-test"}, {"level", "warn"}}),
            1u);
  logger.set_sink(nullptr);
}

// ---------------------------------------------------------------------------
// HTTP surface
// ---------------------------------------------------------------------------

TEST(Telemetry, MetricsEndpointServesPrometheusAndJson) {
  util::ManualClock clock(0);
  server::CookieServer cookie_server(clock, 42);
  server::ServiceOffer offer;
  offer.name = "Boost";
  offer.service_data = "boost";
  cookie_server.add_service(offer);
  cookie_server.acquire("Boost", "alice");
  server::JsonApi api(cookie_server);

  const auto prom = api.handle_http("GET", "/metrics");
  EXPECT_EQ(prom.status, 200);
  EXPECT_EQ(prom.content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(prom.body.find("# TYPE nnn_server_grants_total counter"),
            std::string::npos);
  EXPECT_NE(prom.body.find("nnn_server_grants_total 1"), std::string::npos);

  const auto as_json = api.handle_http("GET", "/metrics.json");
  EXPECT_EQ(as_json.status, 200);
  EXPECT_EQ(as_json.content_type, "application/json");
  const auto parsed = json::parse(as_json.body);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_NE(parsed->find("families"), nullptr);

  const auto posted =
      api.handle_http("POST", "/api", R"({"method":"list_services"})");
  EXPECT_EQ(posted.status, 200);
  const auto response = json::parse(posted.body);
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->get_bool("ok"));

  EXPECT_EQ(api.handle_http("GET", "/nope").status, 404);

  // The JSON-RPC "metrics" method returns the same snapshot inline.
  const auto rpc = json::parse(api.handle_text(R"({"method":"metrics"})"));
  ASSERT_TRUE(rpc.has_value());
  EXPECT_TRUE(rpc->get_bool("ok"));
  ASSERT_NE(rpc->find("metrics"), nullptr);
  EXPECT_NE(rpc->find("metrics")->find("families"), nullptr);
}

}  // namespace
}  // namespace nnn
