// Cookie server: issuance, auth, quotas, revocation, audit, JSON API,
// and discovery.
#include <gtest/gtest.h>

#include "controlplane/local_subscriber.h"
#include "cookies/verifier.h"
#include "server/cookie_server.h"
#include "server/discovery.h"
#include "server/json_api.h"
#include "util/clock.h"

namespace nnn::server {
namespace {

ServiceOffer boost_offer() {
  ServiceOffer offer;
  offer.name = "Boost";
  offer.description = "user-defined fast lane";
  offer.service_data = "Boost";
  offer.auth = AuthPolicy::kOpen;
  offer.descriptor_lifetime = 3600LL * util::kSecond;  // one hour (§5.1)
  return offer;
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest()
      : clock_(1'000'000 * util::kSecond),
        verifier_(clock_),
        server_(clock_, 77, &log_),
        subscriber_(log_, verifier_) {
    server_.add_service(boost_offer());
  }

  util::ManualClock clock_;
  cookies::CookieVerifier verifier_;
  controlplane::DescriptorLog log_;
  CookieServer server_;
  controlplane::LocalSubscriber subscriber_;
};

TEST_F(ServerTest, OpenServiceGrantsDescriptor) {
  const auto result = server_.acquire("Boost", "home-1");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.descriptor->service_data, "Boost");
  EXPECT_EQ(result.descriptor->key.size(), 32u);
  EXPECT_NE(result.descriptor->cookie_id, 0u);
  // Expiry stamped one hour out.
  EXPECT_EQ(result.descriptor->attributes.expires_at.value(),
            clock_.now() + 3600LL * util::kSecond);
}

TEST_F(ServerTest, GrantInstallsIntoVerifier) {
  const auto result = server_.acquire("Boost", "home-1");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(verifier_.knows(result.descriptor->cookie_id));
}

TEST_F(ServerTest, DistinctGrantsGetDistinctIdsAndKeys) {
  const auto a = server_.acquire("Boost", "home-1");
  const auto b = server_.acquire("Boost", "home-2");
  EXPECT_NE(a.descriptor->cookie_id, b.descriptor->cookie_id);
  EXPECT_NE(a.descriptor->key, b.descriptor->key);
}

TEST_F(ServerTest, UnknownServiceDenied) {
  const auto result = server_.acquire("Nope", "home-1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(*result.error, AcquireError::kUnknownService);
}

TEST_F(ServerTest, TokenAuthEnforced) {
  ServiceOffer cellular = boost_offer();
  cellular.name = "CellBoost";
  cellular.auth = AuthPolicy::kToken;
  server_.add_service(cellular);
  server_.add_account(Account{"alice", "secret-token"});

  EXPECT_EQ(*server_.acquire("CellBoost", "mallory").error,
            AcquireError::kAuthRequired);
  EXPECT_EQ(*server_.acquire("CellBoost", "alice", "wrong").error,
            AcquireError::kBadCredentials);
  EXPECT_TRUE(server_.acquire("CellBoost", "alice", "secret-token").ok());
}

TEST_F(ServerTest, MonthlyQuotaEnforced) {
  ServiceOffer limited = boost_offer();
  limited.name = "Limited";
  limited.monthly_quota = 2;
  server_.add_service(limited);

  EXPECT_TRUE(server_.acquire("Limited", "bob").ok());
  EXPECT_TRUE(server_.acquire("Limited", "bob").ok());
  EXPECT_EQ(*server_.acquire("Limited", "bob").error,
            AcquireError::kQuotaExceeded);
  // Another user has their own quota.
  EXPECT_TRUE(server_.acquire("Limited", "carol").ok());
  // A month later the window slides open again.
  clock_.advance(31LL * 24 * 3600 * util::kSecond);
  EXPECT_TRUE(server_.acquire("Limited", "bob").ok());
}

TEST_F(ServerTest, RevocationPropagatesToVerifier) {
  const auto result = server_.acquire("Boost", "home-1");
  const auto id = result.descriptor->cookie_id;
  EXPECT_TRUE(server_.revoke(id, "user request"));
  EXPECT_EQ(verifier_.find(id), nullptr);
  EXPECT_FALSE(server_.revoke(id, "again"));  // already revoked
  EXPECT_TRUE(server_.active_descriptors("home-1").empty());
}

TEST_F(ServerTest, AuditLogRecordsEverything) {
  const auto grant = server_.acquire("Boost", "home-1");
  server_.acquire("Nope", "home-1");
  server_.revoke(grant.descriptor->cookie_id, "cleanup");

  const auto& log = server_.audit_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.records()[0].event, AuditEvent::kGranted);
  EXPECT_EQ(log.records()[1].event, AuditEvent::kDenied);
  EXPECT_EQ(log.records()[1].detail, "unknown-service");
  EXPECT_EQ(log.records()[2].event, AuditEvent::kRevoked);
  EXPECT_EQ(log.for_user("home-1").size(), 3u);
  EXPECT_EQ(log.for_service("Boost").size(), 2u);
  // Exported JSON never contains keys.
  const std::string exported = log.to_json().dump();
  EXPECT_EQ(exported.find("\"key\""), std::string::npos);
}

TEST_F(ServerTest, JsonApiListServices) {
  JsonApi api(server_);
  const auto response = json::parse(api.handle_text(R"({"method":"list_services"})"));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->get_bool("ok"));
  const auto& services = response->find("services")->as_array();
  ASSERT_EQ(services.size(), 1u);
  EXPECT_EQ(services[0].get_string("name"), "Boost");
}

TEST_F(ServerTest, JsonApiAcquireRoundTrip) {
  JsonApi api(server_);
  const auto response = json::parse(api.handle_text(
      R"({"method":"acquire","service":"Boost","user":"home-9"})"));
  ASSERT_TRUE(response.has_value());
  ASSERT_TRUE(response->get_bool("ok"));
  const auto descriptor =
      cookies::CookieDescriptor::from_json(*response->find("descriptor"));
  ASSERT_TRUE(descriptor.has_value());
  EXPECT_TRUE(verifier_.knows(descriptor->cookie_id));
  EXPECT_FALSE(descriptor->key.empty());
}

TEST_F(ServerTest, JsonApiErrors) {
  JsonApi api(server_);
  EXPECT_EQ(json::parse(api.handle_text("not json"))->get_string("error"),
            "bad-request");
  EXPECT_EQ(json::parse(api.handle_text(R"({"method":"dance"})"))
                ->get_string("error"),
            "unknown-method");
  EXPECT_EQ(json::parse(api.handle_text(R"({"method":"acquire","user":"x"})"))
                ->get_string("error"),
            "bad-request");
  EXPECT_EQ(
      json::parse(api.handle_text(
                      R"({"method":"acquire","service":"Zap","user":"x"})"))
          ->get_string("error"),
      "unknown-service");
}

TEST_F(ServerTest, JsonApiRevoke) {
  JsonApi api(server_);
  const auto grant = server_.acquire("Boost", "home-1");
  // Ids travel as strings (64-bit values do not fit JSON doubles).
  const std::string request =
      std::string(R"({"method":"revoke","cookie_id":")") +
      std::to_string(grant.descriptor->cookie_id) + R"("})";
  const auto response = json::parse(api.handle_text(request));
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->get_bool("ok"));
  EXPECT_EQ(verifier_.find(grant.descriptor->cookie_id), nullptr);
}

TEST(Discovery, OrderedByMethod) {
  DiscoveryRegistry registry;
  registry.advertise({"home", "http://fallback.example",
                      DiscoveryMethod::kHardcoded});
  registry.advertise({"home", "http://cookie-server.example",
                      DiscoveryMethod::kDhcpOption});
  registry.advertise({"cell", "http://cell.example",
                      DiscoveryMethod::kMdns});

  const auto found = registry.discover("home");
  ASSERT_EQ(found.size(), 2u);
  EXPECT_EQ(found[0].method, DiscoveryMethod::kDhcpOption);
  EXPECT_EQ(registry.first_endpoint("home").value(),
            "http://cookie-server.example");
  EXPECT_EQ(registry.first_endpoint("cell").value(), "http://cell.example");
  EXPECT_FALSE(registry.first_endpoint("office").has_value());
}

}  // namespace
}  // namespace nnn::server
