// Remaining util coverage: fmt, strings, clock, logging.
#include <gtest/gtest.h>

#include "util/clock.h"
#include "util/fmt.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nnn::util {
namespace {

TEST(Fmt, SubstitutesInOrder) {
  EXPECT_EQ(fmt("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(fmt("{}", std::string("str")), "str");
  EXPECT_EQ(fmt("no placeholders"), "no placeholders");
}

TEST(Fmt, HexSpec) {
  EXPECT_EQ(fmt("{:x}", 255), "ff");
  EXPECT_EQ(fmt("0x{:x}!", 4096), "0x1000!");
}

TEST(Fmt, SurplusPlaceholdersRenderLiterally) {
  EXPECT_EQ(fmt("{} and {}", 1), "1 and {}");
}

TEST(Fmt, SurplusArgumentsIgnored) {
  EXPECT_EQ(fmt("only {}", 1, 2, 3), "only 1");
}

TEST(Fmt, MixedTypes) {
  EXPECT_EQ(fmt("{}|{}|{}", "a", 2.5, false), "a|2.5|0");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("nosep", ','), (std::vector<std::string>{"nosep"}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nx"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("a", "ab"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("x", "http://"));
  EXPECT_TRUE(ends_with("file.cpp", ".cpp"));
  EXPECT_FALSE(ends_with("cpp", ".cpp"));
}

TEST(Strings, DomainMatches) {
  EXPECT_TRUE(domain_matches("cnn.com", "cnn.com"));
  EXPECT_TRUE(domain_matches("cdn.cnn.com", "cnn.com"));
  EXPECT_TRUE(domain_matches("CDN.CNN.COM", "cnn.com"));
  EXPECT_FALSE(domain_matches("notcnn.com", "cnn.com"));
  EXPECT_FALSE(domain_matches("cnn.com.evil.example", "cnn.com"));
  EXPECT_FALSE(domain_matches("com", "cnn.com"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Clock, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.set(10);
  EXPECT_EQ(clock.now(), 10);
}

TEST(Clock, SystemClockIsMonotonicNonDecreasing) {
  SystemClock clock;
  const Timestamp a = clock.now();
  const Timestamp b = clock.now();
  EXPECT_LE(a, b);
}

TEST(Logging, SinkCapturesAtOrAboveLevel) {
  auto& logger = Logger::instance();
  const LogLevel saved_level = logger.level();
  std::vector<std::string> captured;
  logger.set_sink([&](LogLevel, std::string_view msg) {
    captured.emplace_back(msg);
  });
  logger.set_level(LogLevel::kWarn);
  log_debug("hidden {}", 1);
  log_info("hidden too");
  log_warn("warn {}", 2);
  log_error("error {}", 3);
  EXPECT_EQ(captured, (std::vector<std::string>{"warn 2", "error 3"}));
  // Restore defaults for other tests.
  logger.set_sink(nullptr);
  logger.set_level(saved_level);
}

}  // namespace
}  // namespace nnn::util
