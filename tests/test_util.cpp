// Remaining util coverage: fmt, strings, clock, logging, Expected/Error.
#include <gtest/gtest.h>

#include <memory>

#include "telemetry/labels.h"
#include "util/clock.h"
#include "util/error.h"
#include "util/expected.h"
#include "util/fmt.h"
#include "util/logging.h"
#include "util/strings.h"

namespace nnn::util {
namespace {

TEST(Fmt, SubstitutesInOrder) {
  EXPECT_EQ(fmt("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(fmt("{}", std::string("str")), "str");
  EXPECT_EQ(fmt("no placeholders"), "no placeholders");
}

TEST(Fmt, HexSpec) {
  EXPECT_EQ(fmt("{:x}", 255), "ff");
  EXPECT_EQ(fmt("0x{:x}!", 4096), "0x1000!");
}

TEST(Fmt, SurplusPlaceholdersRenderLiterally) {
  EXPECT_EQ(fmt("{} and {}", 1), "1 and {}");
}

TEST(Fmt, SurplusArgumentsIgnored) {
  EXPECT_EQ(fmt("only {}", 1, 2, 3), "only 1");
}

TEST(Fmt, MixedTypes) {
  EXPECT_EQ(fmt("{}|{}|{}", "a", 2.5, false), "a|2.5|0");
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("nosep", ','), (std::vector<std::string>{"nosep"}));
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nx"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_EQ(to_lower("AbC-123"), "abc-123");
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("a", "ab"));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("x", "http://"));
  EXPECT_TRUE(ends_with("file.cpp", ".cpp"));
  EXPECT_FALSE(ends_with("cpp", ".cpp"));
}

TEST(Strings, DomainMatches) {
  EXPECT_TRUE(domain_matches("cnn.com", "cnn.com"));
  EXPECT_TRUE(domain_matches("cdn.cnn.com", "cnn.com"));
  EXPECT_TRUE(domain_matches("CDN.CNN.COM", "cnn.com"));
  EXPECT_FALSE(domain_matches("notcnn.com", "cnn.com"));
  EXPECT_FALSE(domain_matches("cnn.com.evil.example", "cnn.com"));
  EXPECT_FALSE(domain_matches("com", "cnn.com"));
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Clock, ManualClockAdvances) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance(50);
  EXPECT_EQ(clock.now(), 150);
  clock.set(10);
  EXPECT_EQ(clock.now(), 10);
}

TEST(Clock, SystemClockIsMonotonicNonDecreasing) {
  SystemClock clock;
  const Timestamp a = clock.now();
  const Timestamp b = clock.now();
  EXPECT_LE(a, b);
}

TEST(Logging, SinkCapturesAtOrAboveLevel) {
  auto& logger = Logger::instance();
  const LogLevel saved_level = logger.level();
  std::vector<std::string> captured;
  logger.set_sink([&](LogLevel, std::string_view msg) {
    captured.emplace_back(msg);
  });
  logger.set_level(LogLevel::kWarn);
  log_debug("hidden {}", 1);
  log_info("hidden too");
  log_warn("warn {}", 2);
  log_error("error {}", 3);
  EXPECT_EQ(captured, (std::vector<std::string>{"warn 2", "error 3"}));
  // Restore defaults for other tests.
  logger.set_sink(nullptr);
  logger.set_level(saved_level);
}

TEST(Expected, ValueAndErrorAlternatives) {
  Expected<int> ok = 42;
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value_or(-1), 42);

  Expected<int> bad =
      unexpected(Error{ErrorDomain::kWire, ErrorCode::kTruncated, "hdr"});
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().domain, ErrorDomain::kWire);
  EXPECT_EQ(bad.error().code, ErrorCode::kTruncated);
  EXPECT_EQ(bad.error().detail, "hdr");
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Expected, EqualityIgnoresDetail) {
  const Error a{ErrorDomain::kSync, ErrorCode::kTimeout, "poll"};
  const Error b{ErrorDomain::kSync, ErrorCode::kTimeout, "other"};
  const Error c{ErrorDomain::kSync, ErrorCode::kUnavailable};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Expected, ToOptionalBridgesLegacyShape) {
  Expected<std::string> ok = std::string("payload");
  const std::optional<std::string> opt = ok.to_optional();
  ASSERT_TRUE(opt.has_value());
  EXPECT_EQ(*opt, "payload");

  Expected<std::string> bad =
      unexpected(Error{ErrorDomain::kMessages, ErrorCode::kMalformed});
  EXPECT_FALSE(bad.to_optional().has_value());
}

TEST(Expected, MoveOnlyValue) {
  Expected<std::unique_ptr<int>> ok = std::make_unique<int>(7);
  ASSERT_TRUE(ok.has_value());
  std::unique_ptr<int> moved = std::move(ok).value();
  EXPECT_EQ(*moved, 7);
}

TEST(Expected, VoidSpecialization) {
  Expected<void> ok;
  EXPECT_TRUE(ok.has_value());
  Expected<void> bad =
      unexpected(Error{ErrorDomain::kServer, ErrorCode::kQuotaExceeded});
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, ErrorCode::kQuotaExceeded);
}

TEST(ErrorTaxonomy, ToStringFormats) {
  EXPECT_EQ(nnn::to_string(ErrorDomain::kWire), "wire");
  EXPECT_EQ(nnn::to_string(ErrorCode::kBadChecksum), "bad-checksum");
  EXPECT_EQ(nnn::to_string(Error{ErrorDomain::kWire, ErrorCode::kTruncated}),
            "wire/truncated");
  EXPECT_EQ(nnn::to_string(Error{ErrorDomain::kVerify, ErrorCode::kReplayed,
                                 "uuid cache"}),
            "verify/replayed (uuid cache)");
}

TEST(ErrorTaxonomy, TallyCountsByDomainAndCode) {
  auto& tally = ErrorTally::instance();
  const uint64_t before =
      tally.count(ErrorDomain::kMessages, ErrorCode::kTruncated);
  count_error({ErrorDomain::kMessages, ErrorCode::kTruncated});
  count_error({ErrorDomain::kMessages, ErrorCode::kTruncated, "delta"});
  EXPECT_EQ(tally.count(ErrorDomain::kMessages, ErrorCode::kTruncated),
            before + 2);
  // The zero Error is never tallied.
  const uint64_t total = tally.total();
  count_error({});
  EXPECT_EQ(tally.total(), total);
}

TEST(ErrorTaxonomy, VisitSkipsZeroCells) {
  auto& tally = ErrorTally::instance();
  count_error({ErrorDomain::kFault, ErrorCode::kOverload});
  bool saw = false;
  uint64_t nonzero_cells = 0;
  tally.visit([&](ErrorDomain d, ErrorCode c, uint64_t n) {
    EXPECT_GT(n, 0u);
    ++nonzero_cells;
    if (d == ErrorDomain::kFault && c == ErrorCode::kOverload) saw = true;
  });
  EXPECT_TRUE(saw);
  EXPECT_GT(nonzero_cells, 0u);
}

}  // namespace
}  // namespace nnn::util
