// netio subsystem tests: timer wheel semantics, event-loop plumbing,
// and real loopback TCP — sync convergence over sockets, HTTP
// keep-alive across split reads, poisoned-stream closes, accept-rate
// shedding, idle/handshake timeouts, and injected socket faults.
//
// Loopback tests run the EventLoop on a background thread against the
// SystemClock and poll with deadlines; every wait is bounded, nothing
// sleeps for a fixed "long enough".
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "controlplane/descriptor_log.h"
#include "controlplane/epoch.h"
#include "controlplane/sync_client.h"
#include "controlplane/sync_server.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "net/http.h"
#include "net/wire.h"
#include "netio/event_loop.h"
#include "netio/http_endpoint.h"
#include "netio/sync_endpoint.h"
#include "netio/sync_transport.h"
#include "netio/timer_wheel.h"
#include "netio/transport.h"
#include "server/cookie_server.h"
#include "server/json_api.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace nnn {
namespace {

using util::kMillisecond;
using util::kSecond;
using util::Timestamp;

// --- Timer wheel ----------------------------------------------------

TEST(TimerWheel, FiresAtDeadlineAndDropsExpired) {
  netio::TimerWheel wheel;
  std::vector<uint64_t> fired;
  wheel.insert(1, 25 * kMillisecond);
  wheel.insert(2, 500 * kMillisecond);
  wheel.advance(30 * kMillisecond, [&](uint64_t id, Timestamp) {
    fired.push_back(id);
    return Timestamp{0};
  });
  EXPECT_EQ(fired, std::vector<uint64_t>{1});
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(600 * kMillisecond, [&](uint64_t id, Timestamp) {
    fired.push_back(id);
    return Timestamp{0};
  });
  EXPECT_EQ(fired, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, LazyRearmFiresAtAuthoritativeDeadline) {
  netio::TimerWheel wheel;
  wheel.insert(7, 20 * kMillisecond);
  int fires = 0;
  // The owner keeps moving the deadline: the callback reports the
  // authoritative one and the wheel re-files without complaint.
  Timestamp authoritative = 80 * kMillisecond;
  const auto cb = [&](uint64_t, Timestamp now) {
    if (now >= authoritative) {
      ++fires;
      return Timestamp{0};
    }
    return authoritative;
  };
  wheel.advance(25 * kMillisecond, cb);
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(50 * kMillisecond, cb);
  EXPECT_EQ(fires, 0);
  wheel.advance(90 * kMillisecond, cb);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, EntryDueLaterInWalkedTickFiresNextTick) {
  netio::TimerWheel::Config config;
  config.tick = 10 * kMillisecond;
  config.slots = 8;  // 80 ms per revolution
  netio::TimerWheel wheel(config);
  wheel.insert(1, 18 * kMillisecond);
  int fires = 0;
  const auto cb = [&](uint64_t, Timestamp now) {
    if (now >= 18 * kMillisecond) {
      ++fires;
      return Timestamp{0};
    }
    return Timestamp{18 * kMillisecond};
  };
  // The walk covers the entry's slot before the entry is due: it must
  // be re-filed ahead of the cursor, not stranded in the walked slot
  // until the wheel comes around again (~80 ms later).
  wheel.advance(12 * kMillisecond, cb);
  EXPECT_EQ(fires, 0);
  EXPECT_EQ(wheel.size(), 1u);
  wheel.advance(22 * kMillisecond, cb);
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, DeadlineBeyondOneRevolutionStillFires) {
  netio::TimerWheel::Config config;
  config.tick = 10 * kMillisecond;
  config.slots = 8;  // tiny wheel: 80 ms per revolution
  netio::TimerWheel wheel(config);
  wheel.insert(1, 1 * kSecond);
  int fires = 0;
  for (Timestamp t = 0; t <= 1100 * kMillisecond; t += 40 * kMillisecond) {
    wheel.advance(t, [&](uint64_t, Timestamp now) {
      if (now >= 1 * kSecond) {
        ++fires;
        return Timestamp{0};
      }
      return Timestamp{1 * kSecond};
    });
  }
  EXPECT_EQ(fires, 1);
}

// --- Event loop -----------------------------------------------------

TEST(EventLoop, PostedTasksRunOnLoopThread) {
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  std::atomic<int> ran{0};
  std::thread t([&] { loop.run(); });
  for (int i = 0; i < 10; ++i) {
    loop.post([&] { ran.fetch_add(1); });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (ran.load() < 10 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  loop.stop();
  t.join();
  EXPECT_EQ(ran.load(), 10);
}

TEST(EventLoop, TimersFire) {
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  std::atomic<bool> fired{false};
  loop.add_timer(clock.now() + 20 * kMillisecond, [&](Timestamp) {
    fired.store(true);
    return Timestamp{0};
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!fired.load() && std::chrono::steady_clock::now() < deadline) {
    loop.poll(10 * kMillisecond);
  }
  EXPECT_TRUE(fired.load());
}

// Regression: a timer handler that calls add_timer mid-dispatch (the
// reconnect/retry shape) inserts into the loop's timer map, which may
// rehash — dispatch must not hold an iterator across the call.
TEST(EventLoop, TimerHandlerMayAddTimersDuringDispatch) {
  util::ManualClock clock;
  netio::EventLoop loop(clock);
  std::atomic<int> fired{0};
  std::atomic<int> children{0};
  loop.add_timer(clock.now() + 10 * kMillisecond, [&](Timestamp now) {
    ++fired;
    // Burst of insertions to force a rehash while this handler's map
    // entry is the one being dispatched.
    for (int i = 0; i < 64; ++i) {
      loop.add_timer(now + 10 * kMillisecond, [&](Timestamp) {
        ++children;
        return Timestamp{0};
      });
    }
    return Timestamp{0};
  });
  clock.advance(15 * kMillisecond);
  loop.poll(0);
  EXPECT_EQ(fired.load(), 1);
  clock.advance(15 * kMillisecond);
  loop.poll(0);
  EXPECT_EQ(children.load(), 64);
}

// --- Loopback helpers -----------------------------------------------

/// Blocking client socket with a receive timeout, for driving servers
/// byte-by-byte from the test thread.
class BlockingClient {
 public:
  explicit BlockingClient(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~BlockingClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  bool send_all(const void* data, size_t len) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    while (len > 0) {
      const ssize_t n = ::send(fd_, p, len, MSG_NOSIGNAL);
      if (n <= 0) return false;
      p += n;
      len -= static_cast<size_t>(n);
    }
    return true;
  }
  bool send_all(std::string_view s) { return send_all(s.data(), s.size()); }

  /// Read until `want` bytes arrive, the peer closes, or the timeout.
  std::string read_some(size_t want) {
    std::string out;
    char buf[4096];
    while (out.size() < want) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  /// True when the peer has terminated the connection within the
  /// timeout — a clean FIN (recv == 0) or an RST (ECONNRESET, which an
  /// injected reset produces when the server closes with unread data).
  bool peer_closed() {
    char buf[256];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return errno == ECONNRESET || errno == EPIPE;
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

template <typename Pred>
bool wait_for(Pred pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// EventLoop on a background thread, started/joined RAII-style.
class LoopThread {
 public:
  explicit LoopThread(netio::EventLoop& loop) : loop_(loop) {
    thread_ = std::thread([this] { loop_.run(); });
  }
  ~LoopThread() { stop(); }
  void stop() {
    if (thread_.joinable()) {
      loop_.stop();
      thread_.join();
    }
  }

 private:
  netio::EventLoop& loop_;
  std::thread thread_;
};

// --- Sync over real sockets -----------------------------------------

TEST(NetioSync, ClientConvergesOverTcp) {
  telemetry::Registry registry;
  util::SystemClock clock;
  netio::EventLoop loop(clock);

  controlplane::DescriptorLog log;
  for (uint64_t i = 1; i <= 20; ++i) {
    cookies::CookieDescriptor d;
    d.cookie_id = i;
    d.key.assign(32, static_cast<uint8_t>(i));
    log.append_add(std::move(d));
  }
  controlplane::SyncServer server(log);

  netio::TcpServer::Config config;
  config.name = "sync-test";
  auto tcp = netio::TcpServer::create(loop, config,
                                      netio::sync_protocol(server),
                                      nullptr, registry);
  ASSERT_TRUE(tcp.has_value());
  const uint16_t port = (*tcp)->port();

  netio::TcpSyncTransport::Config tconfig;
  tconfig.port = port;
  netio::TcpSyncTransport transport(loop, tconfig);

  LoopThread driver(loop);

  controlplane::TablePublisher tables;
  controlplane::SyncClient::Config cconfig;
  cconfig.client_id = 42;
  cconfig.poll_interval = 10 * kMillisecond;
  cconfig.response_timeout = 100 * kMillisecond;
  controlplane::SyncClient client(clock, tables, cconfig,
                                  transport.send_fn());
  client.start();
  const bool converged = wait_for([&] {
    transport.poll([&](util::BytesView d) { client.on_datagram(d); });
    client.tick();
    return client.applied_version() == log.version();
  });
  EXPECT_TRUE(converged) << "applied=" << client.applied_version()
                         << " server=" << log.version();
  EXPECT_EQ(client.breaker_state(), controlplane::BreakerState::kClosed);

  // Live update propagates through the same socket.
  cookies::CookieDescriptor extra;
  extra.cookie_id = 99;
  extra.key.assign(32, 0x7f);
  log.append_add(std::move(extra));
  EXPECT_TRUE(wait_for([&] {
    transport.poll([&](util::BytesView d) { client.on_datagram(d); });
    client.tick();
    return client.applied_version() == log.version();
  }));

  const auto& metrics = (*tcp)->metrics();
  EXPECT_GE(metrics.accepts.value(), 1u);
  EXPECT_GE(metrics.frames.value(), 2u);

  driver.stop();
}

TEST(NetioSync, MalformedFrameClosesConnection) {
  telemetry::Registry registry;
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  controlplane::DescriptorLog log;
  controlplane::SyncServer server(log);
  auto tcp = netio::TcpServer::create(loop, {}, netio::sync_protocol(server),
                                      nullptr, registry);
  ASSERT_TRUE(tcp.has_value());
  LoopThread driver(loop);

  BlockingClient client((*tcp)->port());
  ASSERT_TRUE(client.connected());
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";  // not sync framing
  ASSERT_TRUE(client.send_all(garbage, sizeof(garbage) - 1));
  EXPECT_TRUE(client.peer_closed());
  EXPECT_TRUE(wait_for(
      [&] { return (*tcp)->metrics().closes.value() >= 1u; }));
  driver.stop();
}

TEST(NetioSync, OversizedFrameLengthRejectedBeforeBuffering) {
  telemetry::Registry registry;
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  controlplane::DescriptorLog log;
  controlplane::SyncServer server(log);
  auto tcp = netio::TcpServer::create(loop, {}, netio::sync_protocol(server),
                                      nullptr, registry);
  ASSERT_TRUE(tcp.has_value());
  LoopThread driver(loop);

  BlockingClient client((*tcp)->port());
  ASSERT_TRUE(client.connected());
  // Valid magic/version, hostile length: 0xffffffff.
  const uint8_t evil[8] = {0x4e, 0x43, 0x01, 0x00, 0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(client.send_all(evil, sizeof(evil)));
  EXPECT_TRUE(client.peer_closed());
  driver.stop();
}

// --- HTTP endpoint ---------------------------------------------------

TEST(NetioHttp, KeepAliveAcrossSplitReads) {
  telemetry::Registry registry;
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  controlplane::DescriptorLog log;
  server::CookieServer cookie_server(clock, 1, &log);
  server::JsonApi api(cookie_server, registry);
  auto tcp = netio::TcpServer::create(loop, {}, netio::http_protocol(api),
                                      nullptr, registry);
  ASSERT_TRUE(tcp.has_value());
  LoopThread driver(loop);

  BlockingClient client((*tcp)->port());
  ASSERT_TRUE(client.connected());

  // Request 1, delivered in three fragments with pauses: the endpoint
  // must buffer across reads.
  ASSERT_TRUE(client.send_all("GET /metr"));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(client.send_all("ics HTTP/1.1\r\nHost: lo"));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(client.send_all("calhost\r\n\r\n"));

  std::string head = client.read_some(15);  // "HTTP/1.1 200 OK"
  ASSERT_GE(head.size(), 15u);
  EXPECT_EQ(head.substr(0, 15), "HTTP/1.1 200 OK");
  // Drain the rest of response 1 using its Content-Length.
  std::string rest = head;
  while (true) {
    const auto parsed = net::http::Response::parse(rest);
    if (parsed && parsed->header("Content-Length")) {
      const size_t cl = std::stoul(*parsed->header("Content-Length"));
      if (parsed->body.size() >= cl) break;
    }
    const std::string more = client.read_some(1);
    if (more.empty()) break;
    rest += more;
  }

  // Request 2 on the SAME connection (keep-alive): a POST with a split
  // body.
  const std::string body = R"({"method":"list_services"})";
  std::string post = "POST / HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n";
  ASSERT_TRUE(client.send_all(post));
  ASSERT_TRUE(client.send_all(body.substr(0, 5)));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(client.send_all(body.substr(5)));
  const std::string second = client.read_some(15);
  ASSERT_GE(second.size(), 15u);
  EXPECT_EQ(second.substr(0, 15), "HTTP/1.1 200 OK");

  EXPECT_TRUE(wait_for(
      [&] { return (*tcp)->metrics().http_requests.value() >= 2u; }));
  // One connection served both requests.
  EXPECT_EQ((*tcp)->metrics().accepts.value(), 1u);
  driver.stop();
}

TEST(NetioHttp, BadRequestGets400AndClose) {
  telemetry::Registry registry;
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  controlplane::DescriptorLog log;
  server::CookieServer cookie_server(clock, 1, &log);
  server::JsonApi api(cookie_server, registry);
  auto tcp = netio::TcpServer::create(loop, {}, netio::http_protocol(api),
                                      nullptr, registry);
  ASSERT_TRUE(tcp.has_value());
  LoopThread driver(loop);

  BlockingClient client((*tcp)->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("NOT AN HTTP LINE\r\n\r\n"));
  const std::string reply = client.read_some(12);
  ASSERT_GE(reply.size(), 12u);
  EXPECT_EQ(reply.substr(0, 12), "HTTP/1.1 400");
  EXPECT_TRUE(client.peer_closed());
  driver.stop();
}

// --- Admission control and timeouts ---------------------------------

TEST(NetioAdmission, ConnectionCeilingSheds) {
  telemetry::Registry registry;
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  controlplane::DescriptorLog log;
  controlplane::SyncServer server(log);
  netio::TcpServer::Config config;
  config.max_connections = 2;
  auto tcp = netio::TcpServer::create(loop, config,
                                      netio::sync_protocol(server),
                                      nullptr, registry);
  ASSERT_TRUE(tcp.has_value());
  LoopThread driver(loop);

  std::vector<std::unique_ptr<BlockingClient>> clients;
  for (int i = 0; i < 5; ++i) {
    clients.push_back(std::make_unique<BlockingClient>((*tcp)->port()));
    ASSERT_TRUE(clients.back()->connected());
  }
  EXPECT_TRUE(wait_for([&] {
    const auto& m = (*tcp)->metrics();
    return m.accepts.value() + m.accept_shed.value() >= 5u;
  }));
  const auto& m = (*tcp)->metrics();
  EXPECT_EQ(m.accepts.value(), 2u);
  EXPECT_EQ(m.accept_shed.value(), 3u);
  driver.stop();
}

TEST(NetioAdmission, IdleTimeoutReclaims) {
  telemetry::Registry registry;
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  controlplane::DescriptorLog log;
  controlplane::SyncServer server(log);
  netio::TcpServer::Config config;
  config.limits.handshake_timeout = 50 * kMillisecond;
  auto tcp = netio::TcpServer::create(loop, config,
                                      netio::sync_protocol(server),
                                      nullptr, registry);
  ASSERT_TRUE(tcp.has_value());
  LoopThread driver(loop);

  BlockingClient client((*tcp)->port());
  ASSERT_TRUE(client.connected());
  // Say nothing: the handshake deadline must reclaim the connection.
  EXPECT_TRUE(client.peer_closed());
  EXPECT_TRUE(wait_for(
      [&] { return (*tcp)->metrics().handshake_timeouts.value() >= 1u; }));
  driver.stop();
}

// --- Injected socket faults -----------------------------------------

TEST(NetioFaults, InjectedResetKillsConnections) {
  telemetry::Registry registry;
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  controlplane::DescriptorLog log;
  controlplane::SyncServer server(log);

  fault::Injector injector(registry);
  fault::FaultPlan plan;
  fault::FaultEvent reset;
  reset.kind = fault::FaultKind::kConnReset;
  reset.start = clock.now();
  reset.duration = 60 * kSecond;  // covers the whole test
  reset.magnitude = 1.0;          // every connection dies
  plan.add(reset);
  injector.arm(plan, 1);

  auto tcp = netio::TcpServer::create(loop, {}, netio::sync_protocol(server),
                                      &injector, registry);
  ASSERT_TRUE(tcp.has_value());
  LoopThread driver(loop);

  BlockingClient client((*tcp)->port());
  ASSERT_TRUE(client.connected());
  util::Bytes frame;
  net::append_sync_frame(frame, 1, util::BytesView());
  ASSERT_TRUE(client.send_all(frame.data(), frame.size()));
  EXPECT_TRUE(client.peer_closed());
  EXPECT_TRUE(wait_for(
      [&] { return (*tcp)->metrics().resets.value() >= 1u; }));
  EXPECT_GE(injector.injected(fault::FaultKind::kConnReset), 1u);
  driver.stop();
}

TEST(NetioFaults, AcceptStallDefersAdmissionThenRecovers) {
  telemetry::Registry registry;
  util::SystemClock clock;
  netio::EventLoop loop(clock);
  controlplane::DescriptorLog log;
  controlplane::SyncServer server(log);

  fault::Injector injector(registry);
  fault::FaultPlan plan;
  fault::FaultEvent stall;
  stall.kind = fault::FaultKind::kAcceptStall;
  stall.start = 0;
  stall.duration = 200 * kMillisecond;
  const Timestamp t0 = clock.now();
  stall.start = t0;
  plan.add(stall);
  injector.arm(plan, 1);

  auto tcp = netio::TcpServer::create(loop, {}, netio::sync_protocol(server),
                                      &injector, registry);
  ASSERT_TRUE(tcp.has_value());
  LoopThread driver(loop);

  BlockingClient client((*tcp)->port());
  ASSERT_TRUE(client.connected());  // SYN queues in the kernel backlog
  // While the stall is active nothing is accepted...
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ((*tcp)->metrics().accepts.value(), 0u);
  // ...and after it lifts, the backlog drains.
  EXPECT_TRUE(wait_for(
      [&] { return (*tcp)->metrics().accepts.value() >= 1u; }));
  driver.stop();
}

}  // namespace
}  // namespace nnn
