// The Fig. 4 packet generator (the MoonGen stand-in) and sim::Host
// plumbing details not covered elsewhere.
#include <gtest/gtest.h>

#include <unordered_set>

#include "cookies/transport.h"
#include "dataplane/middlebox.h"
#include "sim/host.h"
#include "util/clock.h"
#include "workload/packet_gen.h"

namespace nnn {
namespace {

using util::kSecond;

class PacketGenTest : public ::testing::Test {
 protected:
  PacketGenTest() : clock_(1000 * kSecond), verifier_(clock_) {}

  workload::PacketGenerator make(workload::PacketGenerator::Config config) {
    return workload::PacketGenerator(config, clock_, verifier_, 99);
  }

  util::ManualClock clock_;
  cookies::CookieVerifier verifier_;
};

TEST_F(PacketGenTest, InstallsDescriptorsIntoVerifier) {
  workload::PacketGenerator::Config config;
  config.descriptors = 250;
  auto generator = make(config);
  EXPECT_EQ(verifier_.descriptor_count(), 250u);
  EXPECT_TRUE(verifier_.knows(1));
  EXPECT_TRUE(verifier_.knows(250));
  EXPECT_FALSE(verifier_.knows(251));
}

TEST_F(PacketGenTest, BatchShapeMatchesConfig) {
  workload::PacketGenerator::Config config;
  config.packet_size = 512;
  config.packets_per_flow = 50;
  config.descriptors = 10;
  auto generator = make(config);
  const auto batch = generator.make_batch(8);
  ASSERT_EQ(batch.size(), 8u * 50);
  std::unordered_set<net::FiveTuple> tuples;
  for (const auto& packet : batch) {
    EXPECT_EQ(packet.size(), 512u);
    tuples.insert(packet.tuple);
  }
  EXPECT_EQ(tuples.size(), 8u);  // one tuple per flow
}

TEST_F(PacketGenTest, FirstPacketOfEachFlowCarriesValidCookie) {
  workload::PacketGenerator::Config config;
  config.packets_per_flow = 10;
  config.descriptors = 5;
  auto generator = make(config);
  const auto batch = generator.make_batch(6);
  for (size_t flow = 0; flow < 6; ++flow) {
    const auto& first = batch[flow * 10];
    const auto extracted = cookies::extract(first);
    ASSERT_TRUE(extracted.has_value()) << "flow " << flow;
    EXPECT_TRUE(verifier_.verify(extracted->stack.front()).ok());
    // Non-first packets carry nothing.
    EXPECT_FALSE(cookies::extract(batch[flow * 10 + 1]).has_value());
  }
}

TEST_F(PacketGenTest, BatchesUseFreshFlowsAcrossCalls) {
  workload::PacketGenerator::Config config;
  config.packets_per_flow = 2;
  config.descriptors = 3;
  auto generator = make(config);
  const auto a = generator.make_batch(4);
  const auto b = generator.make_batch(4);
  std::unordered_set<net::FiveTuple> tuples;
  for (const auto& p : a) tuples.insert(p.tuple);
  for (const auto& p : b) tuples.insert(p.tuple);
  EXPECT_EQ(tuples.size(), 8u);
}

TEST_F(PacketGenTest, WholeBatchMapsThroughMiddlebox) {
  workload::PacketGenerator::Config config;
  config.packets_per_flow = 10;
  config.descriptors = 100;
  auto generator = make(config);
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock_, verifier_, registry);
  auto batch = generator.make_batch(50);
  uint64_t boosted = 0;
  for (auto& packet : batch) {
    if (middlebox.process(packet).action) ++boosted;
  }
  // Every packet of every flow rides the service its cookie set up.
  EXPECT_EQ(boosted, batch.size());
  EXPECT_EQ(middlebox.verifier().stats().verified, 50u);
}

TEST_F(PacketGenTest, Ipv6TransportProducesV6Packets) {
  workload::PacketGenerator::Config config;
  config.packets_per_flow = 3;
  config.descriptors = 2;
  config.transport = cookies::Transport::kIpv6Extension;
  auto generator = make(config);
  const auto batch = generator.make_batch(2);
  ASSERT_FALSE(batch.empty());
  EXPECT_TRUE(batch.front().ipv6);
  EXPECT_TRUE(batch.front().l3_cookie.has_value());
}

TEST(SimHost, DefaultHandlerAndPorts) {
  sim::Host host(net::IpAddress::v4(10, 0, 0, 1), "h");
  int unmatched = 0;
  host.set_default_handler([&](const net::Packet&) { ++unmatched; });
  net::Packet p;
  p.tuple.src_port = 5;
  host.receive(p);
  EXPECT_EQ(unmatched, 1);

  int matched = 0;
  host.register_handler(p.tuple, [&](const net::Packet&) { ++matched; });
  host.receive(p);
  EXPECT_EQ(matched, 1);
  EXPECT_EQ(unmatched, 1);
  host.unregister_handler(p.tuple);
  host.receive(p);
  EXPECT_EQ(unmatched, 2);

  const uint16_t a = host.allocate_port();
  const uint16_t b = host.allocate_port();
  EXPECT_NE(a, b);
}

TEST(SimHost, SendWithoutUplinkIsSafe) {
  sim::Host host(net::IpAddress::v4(10, 0, 0, 2), "h2");
  net::Packet p;
  EXPECT_NO_THROW(host.send(std::move(p)));  // logged, not fatal
}

}  // namespace
}  // namespace nnn
