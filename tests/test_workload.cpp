// Workload generators: website catalog, page loads, app catalog
// marginals (Fig. 2 table), campus trace (§4.6 parameters), and the
// golden vectors pinning the samplers the audit replay engine builds
// matched schedules from.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "util/rng.h"
#include "workload/apps.h"
#include "workload/page_load.h"
#include "workload/samplers.h"
#include "workload/trace.h"
#include "workload/websites.h"

namespace nnn::workload {
namespace {

TEST(Websites, CnnProfileMatchesPaper) {
  const auto cnn = cnn_profile();
  EXPECT_EQ(cnn.flows, 255u);     // "255 flows"
  EXPECT_EQ(cnn.packets, 6741u);  // "6741 packets"
  EXPECT_EQ(cnn.servers, 71u);    // "71 different servers"
  EXPECT_NEAR(cnn.first_party_packet_share, 605.0 / 6741.0, 1e-9);
}

TEST(Websites, Fig6ProfilesMatchPaper) {
  EXPECT_EQ(youtube_profile().flows, 80u);
  EXPECT_EQ(youtube_profile().packets, 3750u);
  EXPECT_EQ(skai_profile().flows, 83u);
  EXPECT_EQ(skai_profile().packets, 1983u);
  EXPECT_EQ(skai_profile().embed_domain.value(), "youtube.com");
  EXPECT_NEAR(skai_profile().embed_packet_share, 0.12, 1e-9);
}

TEST(Websites, CatalogHasHeavyTail) {
  const auto& catalog = site_catalog();
  EXPECT_GE(catalog.size(), 200u);
  uint32_t max_rank = 0;
  std::unordered_set<std::string> domains;
  for (const auto& site : catalog) {
    max_rank = std::max(max_rank, site.alexa_rank);
    EXPECT_TRUE(domains.insert(site.domain).second)
        << "duplicate domain " << site.domain;
  }
  EXPECT_GT(max_rank, 5000u);  // Fig. 1 x-axis reaches ">5000"
}

TEST(Websites, FindSite) {
  ASSERT_NE(find_site("cnn.com"), nullptr);
  EXPECT_EQ(find_site("cnn.com")->packets, 6741u);
  EXPECT_EQ(find_site("not-a-site.example"), nullptr);
}

TEST(PageLoad, TotalsMatchProfile) {
  util::Rng rng(3);
  PageLoadGenerator gen(rng, net::IpAddress::v4(192, 168, 1, 10));
  const auto load = gen.generate(cnn_profile());
  EXPECT_EQ(load.domain, "cnn.com");
  // Flow count within rounding of the profile.
  EXPECT_NEAR(static_cast<double>(load.flows.size()), 255.0, 13.0);
  EXPECT_NEAR(static_cast<double>(load.total_packets), 6741.0, 340.0);
}

TEST(PageLoad, OriginMixMatchesShares) {
  util::Rng rng(4);
  PageLoadGenerator gen(rng, net::IpAddress::v4(192, 168, 1, 10));
  const auto load = gen.generate(cnn_profile());
  uint64_t first_party = 0;
  uint64_t dedicated = 0;
  uint64_t total = 0;
  for (const auto& flow : load.flows) {
    total += flow.packets;
    if (flow.origin == OriginKind::kFirstParty) first_party += flow.packets;
    if (flow.origin == OriginKind::kDedicatedCdn) dedicated += flow.packets;
  }
  EXPECT_NEAR(static_cast<double>(first_party) / total, 0.09, 0.03);
  EXPECT_NEAR(static_cast<double>(dedicated) / total, 0.09, 0.03);
}

TEST(PageLoad, EmbedFlowsCarryEmbedHost) {
  util::Rng rng(5);
  PageLoadGenerator gen(rng, net::IpAddress::v4(192, 168, 1, 10));
  const auto load = gen.generate(skai_profile());
  bool saw_embed = false;
  for (const auto& flow : load.flows) {
    if (flow.origin == OriginKind::kEmbed) {
      saw_embed = true;
      EXPECT_EQ(flow.host, "youtube.com");
    }
  }
  EXPECT_TRUE(saw_embed);
}

TEST(PageLoad, DistinctSourcePortsPerFlow) {
  util::Rng rng(6);
  PageLoadGenerator gen(rng, net::IpAddress::v4(192, 168, 1, 10));
  const auto load = gen.generate(youtube_profile());
  // Flows use the same client but (almost surely) distinct ports.
  std::unordered_set<uint16_t> ports;
  for (const auto& flow : load.flows) ports.insert(flow.tuple.src_port);
  EXPECT_GT(ports.size(), load.flows.size() * 9 / 10);
}

TEST(PageLoad, RequestPacketIsParseable) {
  util::Rng rng(7);
  PageLoadGenerator gen(rng, net::IpAddress::v4(192, 168, 1, 10));
  const auto load = gen.generate(cnn_profile());
  int checked = 0;
  for (const auto& flow : load.flows) {
    const auto packets = PageLoadGenerator::materialize_flow(flow, rng);
    ASSERT_EQ(packets.size(), flow.packets);
    const auto& request = packets[flow.request_index];
    ASSERT_FALSE(request.payload.empty());
    if (++checked > 20) break;
  }
}

TEST(Apps, CatalogHas106Entries) {
  EXPECT_EQ(app_catalog().size(), 106u);
}

TEST(Apps, CategoryMarginalsMatchFig2) {
  const auto m = catalog_marginals();
  const std::map<AppCategory, size_t> expected = {
      {AppCategory::kAvStreaming, 32}, {AppCategory::kSocial, 12},
      {AppCategory::kNews, 12},        {AppCategory::kGaming, 9},
      {AppCategory::kPhotos, 4},       {AppCategory::kEmail, 4},
      {AppCategory::kMaps, 4},         {AppCategory::kBrowser, 3},
      {AppCategory::kEducation, 2},    {AppCategory::kOther, 24},
  };
  for (const auto& [category, count] : m.by_category) {
    EXPECT_EQ(count, expected.at(category))
        << "category " << to_string(category);
  }
}

TEST(Apps, PopularityMarginalsMatchFig2) {
  const auto m = catalog_marginals();
  const std::map<PopularityBucket, size_t> expected = {
      {PopularityBucket::kUnder1M, 16},
      {PopularityBucket::k1MTo10M, 13},
      {PopularityBucket::k10MTo100M, 28},
      {PopularityBucket::k100MTo500M, 14},
      {PopularityBucket::kOver500M, 10},
      {PopularityBucket::kNotListed, 25},
  };
  for (const auto& [bucket, count] : m.by_popularity) {
    EXPECT_EQ(count, expected.at(bucket)) << "bucket " << to_string(bucket);
  }
}

TEST(Apps, MusicSurveyMatchesSection6) {
  const auto m = catalog_marginals();
  EXPECT_EQ(m.music_apps, 51u);             // "51 music applications"
  EXPECT_EQ(m.music_freedom_covered, 17u);  // "only 17 out of 51"
}

TEST(Apps, DpiRecognizes23Of106) {
  EXPECT_EQ(catalog_marginals().dpi_recognized, 23u);  // "23 out of 106"
}

TEST(Apps, NamedAppsPresent) {
  ASSERT_NE(find_app("facebook"), nullptr);
  EXPECT_EQ(find_app("facebook")->category, AppCategory::kSocial);
  EXPECT_EQ(find_app("facebook")->popularity, PopularityBucket::kOver500M);
  ASSERT_NE(find_app("wikipedia"), nullptr);
  ASSERT_NE(find_app("soma.fm"), nullptr);
  EXPECT_TRUE(find_app("soma.fm")->is_music);
  EXPECT_EQ(find_app("nope"), nullptr);
}

TEST(Apps, SurveyWeightsAreHeavyTailed) {
  uint32_t max_weight = 0;
  size_t weight_one = 0;
  for (const auto& app : app_catalog()) {
    max_weight = std::max(max_weight, app.survey_weight);
    if (app.survey_weight == 1) ++weight_one;
  }
  EXPECT_GE(max_weight, 40u);        // facebook dominates (~45-50)
  EXPECT_GT(weight_one, 70u);        // a long tail of singletons
}

TEST(Trace, SummaryMatchesConfiguredMarginals) {
  CampusTraceGenerator::Config config;
  config.flows = 40'000;
  config.clients = 500;
  config.duration = 900LL * util::kSecond;
  CampusTraceGenerator gen(config, 11);
  const auto trace = gen.generate();
  const auto summary =
      CampusTraceGenerator::summarize(trace, config.duration);
  EXPECT_EQ(summary.flows, 40'000u);
  // Median flow size targets the paper's 50 packets.
  EXPECT_NEAR(static_cast<double>(summary.median_flow_packets), 50.0, 8.0);
  EXPECT_GT(summary.distinct_clients, 250u);
  EXPECT_LE(summary.distinct_clients, 500u);
  EXPECT_GT(summary.packets, summary.flows * 40);
}

TEST(Trace, SortedByStartTime) {
  CampusTraceGenerator::Config config;
  config.flows = 5000;
  CampusTraceGenerator gen(config, 12);
  const auto trace = gen.generate();
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].start, trace[i].start);
  }
}

TEST(Trace, PaperScaleArrivalPeakNear442) {
  // At the paper's scale (11.3 M flows / 15 h) the p99 of per-second
  // arrivals is 442. Run a scaled version with identical *rates*:
  // same flows-per-second, shorter window.
  CampusTraceGenerator::Config config;
  const double paper_rate = 11.3e6 / (15 * 3600.0);  // ≈ 209 fps mean
  config.duration = 600LL * util::kSecond;
  config.flows = static_cast<uint64_t>(paper_rate * 600);
  config.clients = 5'000;
  CampusTraceGenerator gen(config, 13);
  const auto summary =
      CampusTraceGenerator::summarize(gen.generate(), config.duration);
  EXPECT_NEAR(summary.p99_new_flows_per_sec, 442.0, 80.0);
}

TEST(Trace, DeterministicUnderSeed) {
  CampusTraceGenerator::Config config;
  config.flows = 1000;
  CampusTraceGenerator a(config, 99);
  CampusTraceGenerator b(config, 99);
  const auto ta = a.generate();
  const auto tb = b.generate();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].start, tb[i].start);
    EXPECT_EQ(ta[i].packets, tb[i].packets);
  }
}

// ---------------------------------------------------------------------------
// Sampler golden vectors (PR 9 satellite)
//
// The audit subsystem's matched-pair schedules are a pure function of
// (config, seed); that only holds if the samplers underneath never
// change their draw values or draw ORDER. These vectors pin both.
// mt19937_64's output sequence is mandated by the C++ standard, so
// integer draws are exact everywhere; StableLogNormal routes through
// libm (log/sqrt/cos/exp), so its goldens use a tight relative
// tolerance that absorbs last-ulp differences and nothing more.
// ---------------------------------------------------------------------------

TEST(SamplerGolden, RawEngineDrawsAreStandardMandated) {
  util::Rng rng(5);
  const uint64_t expected[] = {12415856028556828342ull,
                               710100233786309728ull,
                               4155840352752516200ull,
                               12468748035862044898ull};
  for (const uint64_t e : expected) EXPECT_EQ(rng.next_u64(), e);
}

TEST(SamplerGolden, StableLogNormalVector) {
  util::Rng rng(7);
  const StableLogNormal dist(10.6, 0.8);
  const double expected[] = {
      143360.81318449703, 54782.308748859243, 60799.563684228124,
      136965.44660609431, 35470.266109418204, 13289.464989449369,
      30046.561932689194, 24267.846602314443,
  };
  for (const double e : expected) {
    EXPECT_NEAR(dist.next(rng), e, e * 1e-12);
  }
}

TEST(SamplerGolden, StableLogNormalConsumesExactlyTwoDraws) {
  // The draw-order contract the replay schedules rely on: one sample
  // advances the engine by exactly two next_double() calls.
  util::Rng a(123);
  util::Rng b(123);
  const StableLogNormal dist(5.0, 1.0);
  (void)dist.next(a);
  b.next_double();
  b.next_double();
  EXPECT_EQ(a.next_u64(), b.next_u64()) << "draw count drifted";
}

TEST(SamplerGolden, StableLogNormalMedianNearExpMu) {
  util::Rng rng(99);
  const StableLogNormal dist(10.6, 0.8);
  std::vector<double> samples;
  for (int i = 0; i < 4001; ++i) samples.push_back(dist.next(rng));
  std::nth_element(samples.begin(), samples.begin() + 2000, samples.end());
  // exp(10.6) ~ 40135; the sample median should sit near it.
  EXPECT_NEAR(samples[2000], std::exp(10.6), std::exp(10.6) * 0.1);
}

TEST(SamplerGolden, ZipfRankVector) {
  util::Rng rng(3);
  const util::ZipfSampler zipf(100, 1.4);
  const size_t expected[] = {3, 1, 4, 1, 3, 1, 8, 2, 6, 1, 1, 4};
  for (const size_t e : expected) EXPECT_EQ(zipf.sample(rng), e);
}

TEST(SamplerGolden, PreferenceSamplerVector) {
  util::Rng rng(11);
  const PreferenceSampler sampler(50, {});
  const PreferenceDraw expected[] = {
      {true, 0, 87565},  {false, 5, 0},  {true, 0, 61872}, {false, 4, 0},
      {false, 15, 0},    {true, 0, 20182}, {false, 2, 0},  {true, 0, 76505},
  };
  for (const PreferenceDraw& e : expected) {
    const PreferenceDraw d = sampler.next(rng);
    EXPECT_EQ(d.niche, e.niche);
    EXPECT_EQ(d.head_rank, e.head_rank);
    EXPECT_EQ(d.tail_rank, e.tail_rank);
  }
}

}  // namespace
}  // namespace nnn::workload
