// Cookie descriptors: attributes, expiry, JSON (control-plane) forms.
#include <gtest/gtest.h>

#include "cookies/delegation.h"
#include "cookies/descriptor.h"

namespace nnn::cookies {
namespace {

CookieDescriptor sample_descriptor() {
  CookieDescriptor d;
  d.cookie_id = 0x1122334455667788ULL;
  d.key = {1, 2, 3, 4, 5, 6, 7, 8};
  d.service_data = "Boost";
  d.attributes.granularity = Granularity::kFlow;
  d.attributes.shared = true;
  d.attributes.ack_cookie = true;
  d.attributes.transports = {Transport::kHttpHeader,
                             Transport::kTlsExtension};
  d.attributes.expires_at = 123'456'789;
  d.attributes.extra["region"] = "us";
  return d;
}

TEST(Descriptor, JsonRoundTripWithKey) {
  const auto d = sample_descriptor();
  const auto parsed = CookieDescriptor::from_json(d.to_json(true));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, d);
}

TEST(Descriptor, AuditFormOmitsKey) {
  const auto d = sample_descriptor();
  const auto audit = d.to_json(/*include_key=*/false);
  EXPECT_EQ(audit.find("key"), nullptr);
  // The audit form still identifies the descriptor; 64-bit ids travel
  // as strings because JSON numbers are doubles.
  EXPECT_EQ(audit.find("cookie_id")->as_string(),
            std::to_string(d.cookie_id));
}

TEST(Descriptor, FullRange64BitIdSurvivesJson) {
  CookieDescriptor d = sample_descriptor();
  d.cookie_id = 0xfedcba9876543210ULL;  // would not fit a double
  const auto parsed = CookieDescriptor::from_json(d.to_json(true));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->cookie_id, d.cookie_id);
}

TEST(Descriptor, ExpiryLogic) {
  CookieDescriptor d = sample_descriptor();
  d.attributes.expires_at = 1000;
  EXPECT_FALSE(d.expired(999));
  EXPECT_TRUE(d.expired(1000));
  EXPECT_TRUE(d.expired(2000));
  d.attributes.expires_at.reset();
  EXPECT_FALSE(d.expired(INT64_MAX));
}

TEST(Attributes, DefaultsMatchPaper) {
  const Attributes a;
  EXPECT_EQ(a.granularity, Granularity::kFlow);  // "By default, a
                                                 // cookie characterizes
                                                 // the flow"
  EXPECT_TRUE(a.reverse_flow);
  EXPECT_FALSE(a.shared);
  EXPECT_FALSE(a.ack_cookie);
  EXPECT_FALSE(a.delivery_guarantee);
  EXPECT_TRUE(a.transports.empty());
}

TEST(Attributes, TransportRestriction) {
  Attributes a;
  EXPECT_TRUE(a.allows_transport(Transport::kUdpHeader));  // empty = any
  a.transports = {Transport::kHttpHeader};
  EXPECT_TRUE(a.allows_transport(Transport::kHttpHeader));
  EXPECT_FALSE(a.allows_transport(Transport::kUdpHeader));
}

TEST(Attributes, JsonRejectsBadValues) {
  EXPECT_FALSE(Attributes::from_json(json::Value(3)).has_value());
  const auto bad_gran = json::parse(R"({"granularity":"nonsense"})");
  EXPECT_FALSE(Attributes::from_json(*bad_gran).has_value());
  const auto bad_transport = json::parse(R"({"transports":["smoke"]})");
  EXPECT_FALSE(Attributes::from_json(*bad_transport).has_value());
}

TEST(Descriptor, FromJsonRejectsMissingId) {
  const auto v = json::parse(R"({"service_data":"x"})");
  EXPECT_FALSE(CookieDescriptor::from_json(*v).has_value());
}

TEST(Descriptor, TransportNamesRoundTrip) {
  for (const Transport t :
       {Transport::kHttpHeader, Transport::kTlsExtension,
        Transport::kIpv6Extension, Transport::kUdpHeader,
        Transport::kTcpOption}) {
    EXPECT_EQ(transport_from_string(to_string(t)), t);
  }
  EXPECT_FALSE(transport_from_string("carrier-pigeon").has_value());
}

TEST(Delegation, SharedDescriptorsDelegate) {
  auto d = sample_descriptor();
  d.attributes.shared = true;
  const auto delegated = delegate_descriptor(d, "alice", "cdn.example");
  ASSERT_TRUE(delegated.has_value());
  EXPECT_EQ(delegated->descriptor, d);
  EXPECT_EQ(delegated->delegated_by, "alice");
  EXPECT_EQ(delegated->delegated_to, "cdn.example");
}

TEST(Delegation, NonSharedDescriptorsRefuse) {
  auto d = sample_descriptor();
  d.attributes.shared = false;
  EXPECT_FALSE(delegate_descriptor(d, "alice", "cdn.example").has_value());
}

TEST(Delegation, AckByEchoReturnsSameCookie) {
  util::ManualClock clock(50 * util::kSecond);
  auto d = sample_descriptor();
  d.attributes.expires_at.reset();
  CookieGenerator gen(d, clock, 1);
  const Cookie c = gen.generate();
  EXPECT_EQ(ack_by_echo(c), c);
}

TEST(Delegation, AckByMintIsFreshButSameDescriptor) {
  util::ManualClock clock(50 * util::kSecond);
  auto d = sample_descriptor();
  d.attributes.expires_at.reset();
  CookieGenerator gen(d, clock, 2);
  const Cookie first = gen.generate();
  const Cookie ack = ack_by_mint(gen);
  EXPECT_EQ(ack.cookie_id, first.cookie_id);
  EXPECT_NE(ack.uuid, first.uuid);
}

}  // namespace
}  // namespace nnn::cookies
