// JSON parser/serializer: RFC 8259 behaviours the cookie-server API
// depends on.
#include <gtest/gtest.h>

#include "json/json.h"

namespace nnn::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->as_bool(), true);
  EXPECT_EQ(parse("false")->as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("3.25")->as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse("-17")->as_number(), -17.0);
  EXPECT_DOUBLE_EQ(parse("1e3")->as_number(), 1000.0);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, NestedDocument) {
  const auto v = parse(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(v.has_value());
  const auto& arr = v->find("a")->as_array();
  ASSERT_EQ(arr.size(), 3u);
  EXPECT_EQ(arr[2].find("b")->as_string(), "c");
  EXPECT_TRUE(v->find("d")->find("e")->is_null());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")")->as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse(R"("A")")->as_string(), "A");
  EXPECT_EQ(parse(R"("é")")->as_string(), "\xc3\xa9");       // é
  EXPECT_EQ(parse(R"("😀")")->as_string(),
            "\xf0\x9f\x98\x80");  // 😀 surrogate pair
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_FALSE(parse("").has_value());
  EXPECT_FALSE(parse("{").has_value());
  EXPECT_FALSE(parse("[1,").has_value());
  EXPECT_FALSE(parse("{\"a\":}").has_value());
  EXPECT_FALSE(parse("tru").has_value());
  EXPECT_FALSE(parse("01").has_value());          // leading zero
  EXPECT_FALSE(parse("1 2").has_value());         // trailing garbage
  EXPECT_FALSE(parse("\"\\ud800\"").has_value()); // unpaired surrogate
  EXPECT_FALSE(parse("\"\x01\"").has_value());    // raw control char
  EXPECT_FALSE(parse("{'a':1}").has_value());     // single quotes
}

TEST(JsonParse, DepthLimitProtectsParser) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(parse(deep).has_value());
}

TEST(JsonDump, CompactRoundtrip) {
  Object obj;
  obj["name"] = "Boost";
  obj["count"] = 3;
  obj["ok"] = true;
  obj["tags"] = Array{Value("a"), Value("b")};
  const Value v(std::move(obj));
  const auto reparsed = parse(v.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, v);
}

TEST(JsonDump, EscapesControlCharacters) {
  const Value v(std::string("a\nb\x01"));
  EXPECT_EQ(v.dump(), "\"a\\nb\\u0001\"");
}

TEST(JsonDump, IntegersPrintWithoutExponent) {
  EXPECT_EQ(Value(uint64_t{100000}).dump(), "100000");
  EXPECT_EQ(Value(-42).dump(), "-42");
}

TEST(JsonDump, KeyOrderIsDeterministic) {
  Object a;
  a["z"] = 1;
  a["a"] = 2;
  EXPECT_EQ(Value(std::move(a)).dump(), R"({"a":2,"z":1})");
}

TEST(JsonValue, TypedGettersWithFallbacks) {
  const auto v = parse(R"({"s":"x","n":5,"b":true})").value();
  EXPECT_EQ(v.get_string("s"), "x");
  EXPECT_EQ(v.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(v.get_int("n"), 5);
  EXPECT_EQ(v.get_int("s", -1), -1);  // wrong type -> fallback
  EXPECT_TRUE(v.get_bool("b"));
}

TEST(JsonValue, AccessorsThrowOnWrongType) {
  const Value v(3.0);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_NO_THROW(v.as_number());
}

TEST(JsonDump, PrettyPrintsIndented) {
  Object obj;
  obj["a"] = Array{Value(1)};
  const std::string pretty = Value(std::move(obj)).dump_pretty();
  EXPECT_NE(pretty.find("\n  \"a\""), std::string::npos);
}

}  // namespace
}  // namespace nnn::json
