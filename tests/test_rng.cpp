// Deterministic RNG and the heavy-tail samplers.
#include <gtest/gtest.h>

#include <map>

#include "util/rng.h"

namespace nnn::util {
namespace {

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BoundedDrawStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_u64(17), 17u);
  }
}

TEST(Rng, BoundedDrawRejectsZero) {
  Rng rng(7);
  EXPECT_THROW(rng.next_u64(0), std::invalid_argument);
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(11);
  Rng fork = a.fork();
  // The fork and the parent should not mirror each other.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == fork.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto copy = v;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(ZipfSampler, RanksAreOneBased) {
  Rng rng(17);
  ZipfSampler zipf(10, 1.0);
  for (int i = 0; i < 5000; ++i) {
    const size_t rank = zipf.sample(rng);
    EXPECT_GE(rank, 1u);
    EXPECT_LE(rank, 10u);
  }
}

TEST(ZipfSampler, HeadDominatesTail) {
  Rng rng(19);
  ZipfSampler zipf(100, 1.2);
  std::map<size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[1], counts[50] * 5);
  EXPECT_GT(counts[1], 20000 / 20);  // rank 1 well over uniform share
}

TEST(ZipfSampler, SkewParameterControlsConcentration) {
  Rng rng(23);
  ZipfSampler flat(50, 0.2);
  ZipfSampler steep(50, 2.0);
  int flat_head = 0;
  int steep_head = 0;
  for (int i = 0; i < 10000; ++i) {
    if (flat.sample(rng) == 1) ++flat_head;
    if (steep.sample(rng) == 1) ++steep_head;
  }
  EXPECT_GT(steep_head, flat_head * 3);
}

TEST(LogNormal, MedianNearExpMu) {
  Rng rng(29);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng.log_normal(std::log(50.0), 1.0));
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  const double median = samples[samples.size() / 2];
  EXPECT_NEAR(median, 50.0, 5.0);
}

}  // namespace
}  // namespace nnn::util
