// End-to-end integration: the full §4.4 walkthrough (discovery ->
// acquisition -> insertion -> verification -> QoS), the Fig. 5b lanes,
// and a zero-rating deployment.
#include <gtest/gtest.h>

#include "boost_lane/agent.h"
#include "boost_lane/browser.h"
#include "boost_lane/daemon.h"
#include "controlplane/local_subscriber.h"
#include "cookies/transport.h"
#include "dataplane/middlebox.h"
#include "net/http.h"
#include "server/cookie_server.h"
#include "server/discovery.h"
#include "server/json_api.h"
#include "sim/nat.h"
#include "studies/fct_experiment.h"
#include "util/clock.h"
#include "workload/page_load.h"
#include "workload/websites.h"

namespace nnn {
namespace {

using util::kSecond;

// The concrete §4.4 example: "an ISP offers its customers a fast-lane
// for their high priority traffic. The home AP discovers that cookie
// descriptors are available ... acquires a cookie descriptor, which is
// valid for one week. A browser extension ... uses the cookie
// descriptor to add cookies to outgoing packets."
TEST(EndToEnd, Section44Walkthrough) {
  util::ManualClock clock(2'000'000 * kSecond);

  // ISP side.
  cookies::CookieVerifier verifier(clock);
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer server(clock, 101, &descriptor_log);
  controlplane::LocalSubscriber subscriber(descriptor_log, verifier);
  server::ServiceOffer offer;
  offer.name = "Boost";
  offer.description = "fast lane for high-priority traffic";
  offer.service_data = "Boost";
  offer.descriptor_lifetime = 7LL * 24 * 3600 * kSecond;  // one week
  server.add_service(offer);
  server::JsonApi api(server);

  // Discovery through the DHCP lease.
  server::DiscoveryRegistry discovery;
  discovery.advertise({"home-net", "http://cookie-server.example",
                       server::DiscoveryMethod::kDhcpOption});
  ASSERT_EQ(discovery.first_endpoint("home-net").value(),
            "http://cookie-server.example");

  // Browser extension boosts a website.
  util::Rng rng(55);
  boost_lane::Browser browser(rng, net::IpAddress::v4(192, 168, 1, 10));
  boost_lane::BoostAgent agent(clock, api, "household-7", 9);
  const auto tab = browser.open_tab();
  auto load = browser.navigate(tab, workload::youtube_profile());
  ASSERT_TRUE(agent.always_boost("youtube.com"));
  // Descriptor valid for one week.
  EXPECT_EQ(agent.descriptor()->attributes.expires_at.value(),
            clock.now() + 7LL * 24 * 3600 * kSecond);

  // Dataplane at the AP/head-end behind NAT.
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock, verifier, registry);
  sim::Nat nat(net::IpAddress::v4(203, 0, 113, 50));

  uint64_t boosted = 0;
  uint64_t total = 0;
  for (const auto& flow : load.flows) {
    auto packets =
        workload::PageLoadGenerator::materialize_flow(flow.flow, rng);
    for (size_t i = 0; i < packets.size(); ++i) {
      net::Packet packet = packets[i];
      if (i == flow.flow.request_index) {
        agent.process_request(flow, packet);
      }
      nat.translate_outbound(packet);
      if (middlebox.process(packet).action) ++boosted;
      ++total;
    }
  }
  // The boosted share matches the Fig. 6a story: >90%, <100%.
  const double share = 100.0 * static_cast<double>(boosted) / total;
  EXPECT_GT(share, 90.0);
  EXPECT_LT(share, 100.0);
}

TEST(EndToEnd, Fig5bLaneOrderingHolds) {
  // A reduced-trial version of the Fig. 5b experiment: boosted flows
  // finish fastest, throttled slowest, best-effort in between.
  studies::FctConfig config;
  config.trials = 6;
  config.seed = 9;
  const auto boosted =
      studies::run_fct(studies::Lane::kBoosted, config);
  const auto best_effort =
      studies::run_fct(studies::Lane::kBestEffort, config);
  const auto throttled =
      studies::run_fct(studies::Lane::kThrottled, config);

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  for (const double fct : boosted) EXPECT_GT(fct, 0);
  for (const double fct : best_effort) EXPECT_GT(fct, 0);
  for (const double fct : throttled) EXPECT_GT(fct, 0);

  const double m_boost = median(boosted);
  const double m_be = median(best_effort);
  const double m_throttle = median(throttled);
  EXPECT_LT(m_boost, m_be);
  EXPECT_LT(m_be, m_throttle);
  // Rough magnitudes from the figure: boosted well under a second;
  // throttled bounded below by 300 KB / 1 Mb/s = 2.4 s.
  EXPECT_LT(m_boost, 1.5);
  EXPECT_GT(m_throttle, 2.4);
}

TEST(EndToEnd, ZeroRatingDeployment) {
  util::ManualClock clock(3'000'000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer server(clock, 202, &descriptor_log);
  controlplane::LocalSubscriber log_subscriber(descriptor_log, verifier);
  server::ServiceOffer offer;
  offer.name = "ZeroRate-MyApp";
  offer.service_data = "zero-rate";
  offer.auth = server::AuthPolicy::kToken;  // cellular: login required
  server.add_service(offer);
  server.add_account(server::Account{"alice", "tok"});

  dataplane::ServiceRegistry registry;
  registry.bind("zero-rate", dataplane::ZeroRateAction{});
  dataplane::Middlebox middlebox(clock, verifier, registry);
  dataplane::ZeroRatingLedger ledger(5'000'000);  // 5 MB monthly cap

  const auto grant = server.acquire("ZeroRate-MyApp", "alice", "tok");
  ASSERT_TRUE(grant.ok());
  cookies::CookieGenerator generator(*grant.descriptor, clock, 31);

  const auto subscriber = net::IpAddress::v4(100, 64, 0, 7);

  // The chosen app's flow: cookie on the first packet, then data.
  net::FiveTuple app_flow;
  app_flow.src_ip = subscriber;
  app_flow.dst_ip = net::IpAddress::v4(151, 101, 0, 9);
  app_flow.src_port = 40000;
  app_flow.dst_port = 443;

  net::Packet request;
  request.tuple = app_flow;
  net::http::Request http("GET", "/stream", "myapp.example");
  const std::string text = http.serialize();
  request.payload.assign(text.begin(), text.end());
  cookies::attach(request, generator.generate(),
                  cookies::Transport::kHttpHeader);
  middlebox.process_and_account(request, ledger, subscriber);
  for (int i = 0; i < 100; ++i) {
    net::Packet data;
    data.tuple = app_flow;
    data.wire_size = 1400;
    middlebox.process_and_account(data, ledger, subscriber);
  }
  // Other traffic is charged.
  for (int i = 0; i < 50; ++i) {
    net::Packet other;
    other.tuple = app_flow;
    other.tuple.src_port = 40001;
    other.wire_size = 1000;
    middlebox.process_and_account(other, ledger, subscriber);
  }

  const auto usage = ledger.usage(subscriber);
  EXPECT_GE(usage.free_bytes, 100u * 1400);
  EXPECT_EQ(usage.charged_bytes, 50'000u);
  EXPECT_FALSE(ledger.over_cap(subscriber));

  // Revocation: after the ISP revokes, new flows are charged again.
  server.revoke(grant.descriptor->cookie_id, "subscription ended");
  net::Packet request2;
  request2.tuple = app_flow;
  request2.tuple.src_port = 40002;
  request2.payload.assign(text.begin(), text.end());
  cookies::attach(request2, generator.generate(),
                  cookies::Transport::kHttpHeader);
  const auto verdict =
      middlebox.process_and_account(request2, ledger, subscriber);
  EXPECT_FALSE(verdict.action.has_value());
  EXPECT_EQ(*verdict.verify_status,
            cookies::VerifyStatus::kDescriptorRevoked);
}

TEST(EndToEnd, CompositionAcrossTwoNetworks) {
  // §4.5's videocall: one packet carries two cookies, each network
  // applies its own service without any coordination.
  util::ManualClock clock(4'000'000 * kSecond);
  cookies::CookieVerifier verifier_a(clock);
  cookies::CookieVerifier verifier_b(clock);
  dataplane::ServiceRegistry registry_a;
  dataplane::ServiceRegistry registry_b;
  registry_a.bind("boost-a", dataplane::PriorityAction{0});
  registry_b.bind("boost-b", dataplane::PriorityAction{0});
  dataplane::Middlebox box_a(clock, verifier_a, registry_a);
  dataplane::Middlebox box_b(clock, verifier_b, registry_b);

  cookies::CookieDescriptor da;
  da.cookie_id = 1;
  da.key.assign(32, 0xaa);
  da.service_data = "boost-a";
  verifier_a.add_descriptor(da);
  cookies::CookieDescriptor db;
  db.cookie_id = 2;
  db.key.assign(32, 0xbb);
  db.service_data = "boost-b";
  verifier_b.add_descriptor(db);

  cookies::CookieGenerator gen_a(da, clock, 1);
  cookies::CookieGenerator gen_b(db, clock, 2);

  net::Packet packet;
  packet.tuple.proto = net::L4Proto::kUdp;
  packet.tuple.src_port = 5004;  // RTP-ish
  packet.payload = {0x80, 0x60, 0x00, 0x01};
  ASSERT_TRUE(cookies::attach(packet,
                              {gen_a.generate(), gen_b.generate()},
                              cookies::Transport::kUdpHeader));

  const auto verdict_a = box_a.process(packet);
  EXPECT_TRUE(verdict_a.action.has_value());
  EXPECT_EQ(verdict_a.service_data, "boost-a");
  const auto verdict_b = box_b.process(packet);
  EXPECT_TRUE(verdict_b.action.has_value());
  EXPECT_EQ(verdict_b.service_data, "boost-b");
}

}  // namespace
}  // namespace nnn
