// Cookie transports: attach/extract across all four carriers.
#include <gtest/gtest.h>

#include "cookies/generator.h"
#include "cookies/transport.h"
#include "net/http.h"
#include "net/tls.h"
#include "util/clock.h"

namespace nnn::cookies {
namespace {

CookieDescriptor make_descriptor() {
  CookieDescriptor d;
  d.cookie_id = 0xc0ffee;
  d.key.assign(32, 0x5a);
  d.service_data = "Boost";
  return d;
}

class TransportTest : public ::testing::Test {
 protected:
  TransportTest()
      : clock_(100 * util::kSecond),
        generator_(make_descriptor(), clock_, 99) {}

  net::Packet http_packet() {
    net::Packet p;
    p.tuple.proto = net::L4Proto::kTcp;
    p.tuple.dst_port = 80;
    net::http::Request r("GET", "/page", "cnn.com");
    const std::string text = r.serialize();
    p.payload.assign(text.begin(), text.end());
    return p;
  }

  net::Packet tls_packet() {
    net::Packet p;
    p.tuple.proto = net::L4Proto::kTcp;
    p.tuple.dst_port = 443;
    net::tls::ClientHello hello;
    hello.set_server_name("cnn.com");
    p.payload = hello.serialize_record();
    return p;
  }

  net::Packet udp_packet() {
    net::Packet p;
    p.tuple.proto = net::L4Proto::kUdp;
    p.payload = {1, 2, 3};
    return p;
  }

  net::Packet tcp_packet() {
    net::Packet p;
    p.tuple.proto = net::L4Proto::kTcp;
    p.tuple.dst_port = 443;
    p.payload = {0xde, 0xad};  // opaque application bytes
    return p;
  }

  net::Packet ipv6_packet() {
    net::Packet p;
    p.ipv6 = true;
    p.tuple.proto = net::L4Proto::kTcp;
    return p;
  }

  net::Packet quic_packet(bool long_header = true) {
    net::Packet p;
    p.tuple.proto = net::L4Proto::kUdp;
    p.tuple.dst_port = 443;
    net::QuicHeader q;
    q.long_header = long_header;
    q.scid = 0xc1d0;
    q.dcid = 0xc1d1;
    p.quic = q;
    p.payload = {9, 9, 9};  // opaque ciphertext stand-in
    return p;
  }

  util::ManualClock clock_;
  CookieGenerator generator_;
};

TEST_F(TransportTest, HttpHeaderCarriesCookie) {
  net::Packet p = http_packet();
  const Cookie c = generator_.generate();
  ASSERT_TRUE(attach(p, c, Transport::kHttpHeader));
  const auto extracted = extract(p);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->transport, Transport::kHttpHeader);
  EXPECT_EQ(extracted->stack.front(), c);
  // The header is real HTTP: the request still parses and keeps Host.
  const auto request = net::http::Request::parse(
      std::string(p.payload.begin(), p.payload.end()));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->host(), "cnn.com");
  EXPECT_TRUE(request->header(net::http::kCookieHeader).has_value());
}

TEST_F(TransportTest, TlsExtensionCarriesCookie) {
  net::Packet p = tls_packet();
  const Cookie c = generator_.generate();
  ASSERT_TRUE(attach(p, c, Transport::kTlsExtension));
  const auto extracted = extract(p);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->transport, Transport::kTlsExtension);
  EXPECT_EQ(extracted->stack.front(), c);
  // SNI intact.
  const auto hello =
      net::tls::ClientHello::parse_record(util::BytesView(p.payload));
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->server_name().value(), "cnn.com");
}

TEST_F(TransportTest, Ipv6OptionCarriesCookie) {
  net::Packet p = ipv6_packet();
  const Cookie c = generator_.generate();
  ASSERT_TRUE(attach(p, c, Transport::kIpv6Extension));
  const auto extracted = extract(p);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->transport, Transport::kIpv6Extension);
  EXPECT_EQ(extracted->stack.front(), c);
}

TEST_F(TransportTest, UdpShimCarriesCookieAndPreservesPayload) {
  net::Packet p = udp_packet();
  const Cookie c = generator_.generate();
  ASSERT_TRUE(attach(p, c, Transport::kUdpHeader));
  const auto extracted = extract(p);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->transport, Transport::kUdpHeader);
  EXPECT_EQ(extracted->stack.front(), c);
  // Stripping restores the original payload exactly.
  EXPECT_TRUE(strip(p));
  EXPECT_EQ(p.payload, (util::Bytes{1, 2, 3}));
}

TEST_F(TransportTest, TcpOptionCarriesCookie) {
  net::Packet p = tcp_packet();
  const Cookie c = generator_.generate();
  ASSERT_TRUE(attach(p, c, Transport::kTcpOption));
  const auto extracted = extract(p);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->transport, Transport::kTcpOption);
  EXPECT_EQ(extracted->stack.front(), c);
  // The payload is untouched: the cookie lives in the header.
  EXPECT_EQ(p.payload, (util::Bytes{0xde, 0xad}));
  EXPECT_TRUE(strip(p));
  EXPECT_FALSE(extract(p).has_value());
}

TEST_F(TransportTest, TcpOptionRefusedOnUdp) {
  net::Packet p = udp_packet();
  EXPECT_FALSE(attach(p, generator_.generate(), Transport::kTcpOption));
}

TEST_F(TransportTest, QuicTransportParamCarriesCookie) {
  net::Packet p = quic_packet();
  const Cookie c = generator_.generate();
  ASSERT_TRUE(attach(p, c, Transport::kQuicTransportParam));
  const auto extracted = extract(p);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->transport, Transport::kQuicTransportParam);
  EXPECT_EQ(extracted->stack.front(), c);
  // The ciphertext payload is untouched: the cookie is handshake
  // metadata, not payload.
  EXPECT_EQ(p.payload, (util::Bytes{9, 9, 9}));
  EXPECT_TRUE(strip(p));
  EXPECT_FALSE(extract(p).has_value());
}

TEST_F(TransportTest, QuicTransportParamRefusedPastHandshake) {
  // Transport parameters exist only in the handshake flight: a
  // short-header packet cannot carry one, and a non-QUIC packet has
  // nowhere to put one.
  net::Packet short_header = quic_packet(/*long_header=*/false);
  EXPECT_FALSE(attach(short_header, generator_.generate(),
                      Transport::kQuicTransportParam));
  net::Packet plain = udp_packet();
  EXPECT_FALSE(
      attach(plain, generator_.generate(), Transport::kQuicTransportParam));
}

TEST_F(TransportTest, CarrierMismatchLeavesPacketUntouched) {
  net::Packet p = udp_packet();
  const auto original = p.payload;
  EXPECT_FALSE(attach(p, generator_.generate(), Transport::kHttpHeader));
  EXPECT_FALSE(attach(p, generator_.generate(), Transport::kTlsExtension));
  EXPECT_FALSE(attach(p, generator_.generate(), Transport::kIpv6Extension));
  EXPECT_EQ(p.payload, original);

  net::Packet v4_tcp = http_packet();
  EXPECT_FALSE(
      attach(v4_tcp, generator_.generate(), Transport::kUdpHeader));
  EXPECT_FALSE(
      attach(v4_tcp, generator_.generate(), Transport::kIpv6Extension));
}

TEST_F(TransportTest, EmptyStackRefused) {
  net::Packet p = udp_packet();
  EXPECT_FALSE(attach(p, std::vector<Cookie>{}, Transport::kUdpHeader));
}

TEST_F(TransportTest, ExtractFindsNothingOnPlainTraffic) {
  net::Packet plain_http = http_packet();
  EXPECT_FALSE(extract(plain_http).has_value());
  net::Packet plain_tls = tls_packet();
  EXPECT_FALSE(extract(plain_tls).has_value());
  net::Packet plain_udp = udp_packet();
  EXPECT_FALSE(extract(plain_udp).has_value());
  net::Packet empty;
  EXPECT_FALSE(extract(empty).has_value());
}

TEST_F(TransportTest, ReattachReplacesExistingCookie) {
  net::Packet p = http_packet();
  const Cookie first = generator_.generate();
  const Cookie second = generator_.generate();
  attach(p, first, Transport::kHttpHeader);
  attach(p, second, Transport::kHttpHeader);
  const auto extracted = extract(p);
  ASSERT_TRUE(extracted.has_value());
  ASSERT_EQ(extracted->stack.size(), 1u);
  EXPECT_EQ(extracted->stack.front(), second);
}

TEST_F(TransportTest, StackOfCookiesRoundTripsOnEveryCarrier) {
  const std::vector<Cookie> stack = {generator_.generate(),
                                     generator_.generate()};
  struct Case {
    net::Packet packet;
    Transport transport;
  };
  std::vector<Case> cases;
  cases.push_back({http_packet(), Transport::kHttpHeader});
  cases.push_back({tls_packet(), Transport::kTlsExtension});
  cases.push_back({ipv6_packet(), Transport::kIpv6Extension});
  cases.push_back({udp_packet(), Transport::kUdpHeader});
  cases.push_back({tcp_packet(), Transport::kTcpOption});
  for (auto& [packet, transport] : cases) {
    ASSERT_TRUE(attach(packet, stack, transport));
    const auto extracted = extract(packet, transport);
    ASSERT_TRUE(extracted.has_value());
    EXPECT_EQ(extracted->stack, stack);
  }
}

TEST_F(TransportTest, StripRemovesEveryCarrier) {
  net::Packet http = http_packet();
  attach(http, generator_.generate(), Transport::kHttpHeader);
  EXPECT_TRUE(strip(http));
  EXPECT_FALSE(extract(http).has_value());

  net::Packet tls = tls_packet();
  attach(tls, generator_.generate(), Transport::kTlsExtension);
  EXPECT_TRUE(strip(tls));
  EXPECT_FALSE(extract(tls).has_value());

  net::Packet v6 = ipv6_packet();
  attach(v6, generator_.generate(), Transport::kIpv6Extension);
  EXPECT_TRUE(strip(v6));
  EXPECT_FALSE(extract(v6).has_value());

  net::Packet plain = udp_packet();
  EXPECT_FALSE(strip(plain));
}

// --- Packet::cookie_bytes — the unified carrier accessor (PR 8) -----

/// Every carrier surfaces the SAME encoded stack bytes through
/// cookie_bytes(), tagged with where they rode, and the no-HMAC
/// cookie-id peek the RX demux steers by works on all of them.
TEST_F(TransportTest, CookieBytesFindsEveryCarrier) {
  const Cookie c = generator_.generate();
  const util::Bytes encoded = encode_stack({c});
  struct Case {
    net::Packet packet;
    Transport transport;
    net::CookieCarrier carrier;
  };
  std::vector<Case> cases;
  cases.push_back(
      {ipv6_packet(), Transport::kIpv6Extension, net::CookieCarrier::kIpv6Option});
  cases.push_back(
      {tcp_packet(), Transport::kTcpOption, net::CookieCarrier::kTcpOption});
  cases.push_back(
      {udp_packet(), Transport::kUdpHeader, net::CookieCarrier::kUdpShim});
  cases.push_back(
      {tls_packet(), Transport::kTlsExtension, net::CookieCarrier::kTlsExtension});
  cases.push_back(
      {http_packet(), Transport::kHttpHeader, net::CookieCarrier::kHttpHeader});
  cases.push_back({quic_packet(), Transport::kQuicTransportParam,
                   net::CookieCarrier::kQuicTransportParam});
  for (auto& [packet, transport, carrier] : cases) {
    ASSERT_TRUE(attach(packet, c, transport));
    const auto raw = packet.cookie_bytes();
    ASSERT_TRUE(raw.has_value())
        << "carrier " << static_cast<int>(carrier) << " not found";
    EXPECT_EQ(raw->carrier, carrier);
    EXPECT_TRUE(util::equal(raw->bytes(), util::BytesView(encoded)))
        << "carrier bytes differ from encode_stack";
    EXPECT_EQ(peek_cookie_id(raw->bytes()), c.cookie_id);
  }
  net::Packet plain = udp_packet();
  EXPECT_FALSE(plain.cookie_bytes().has_value());
}

/// Extraction precedence is fixed: cheapest carrier first. A packet
/// wearing several cookies answers with the binary fixed-offset one
/// before anything that needs a payload parse.
TEST_F(TransportTest, CookieBytesPrecedenceOrder) {
  const Cookie c = generator_.generate();

  // l3 beats l4: an IPv6+TCP packet with both answers kIpv6Option.
  net::Packet v6 = ipv6_packet();
  ASSERT_TRUE(attach(v6, c, Transport::kIpv6Extension));
  ASSERT_TRUE(attach(v6, c, Transport::kTcpOption));
  ASSERT_EQ(v6.cookie_bytes()->carrier, net::CookieCarrier::kIpv6Option);
  v6.l3_cookie.reset();
  ASSERT_EQ(v6.cookie_bytes()->carrier, net::CookieCarrier::kTcpOption);

  // TLS payload + TCP option: the header option wins (no parse needed).
  net::Packet tls = tls_packet();
  ASSERT_TRUE(attach(tls, c, Transport::kTlsExtension));
  ASSERT_TRUE(attach(tls, c, Transport::kTcpOption));
  ASSERT_EQ(tls.cookie_bytes()->carrier, net::CookieCarrier::kTcpOption);
  tls.l4_cookie.reset();
  ASSERT_EQ(tls.cookie_bytes()->carrier, net::CookieCarrier::kTlsExtension);

  // QUIC transport parameter sits with the binary carriers: it beats
  // the UDP shim (fixed payload offset) on the same handshake packet,
  // and the l4 direct field would beat it if a QUIC packet could have
  // one. With the parameter gone the shim is found again.
  net::Packet quic = quic_packet();
  ASSERT_TRUE(attach(quic, c, Transport::kQuicTransportParam));
  ASSERT_TRUE(attach(quic, c, Transport::kUdpHeader));
  ASSERT_EQ(quic.cookie_bytes()->carrier,
            net::CookieCarrier::kQuicTransportParam);
  quic.quic->tp_cookie.clear();
  ASSERT_EQ(quic.cookie_bytes()->carrier, net::CookieCarrier::kUdpShim);
}

/// The text carriers must copy out (TLS extension body, base64-decoded
/// HTTP header): their view is backed by RawCookie::storage, not the
/// payload, so it stays valid if the payload reallocates.
TEST_F(TransportTest, CookieBytesTextCarriersAreStorageBacked) {
  const Cookie c = generator_.generate();
  for (net::Packet p : {tls_packet(), http_packet()}) {
    const Transport t = p.tuple.dst_port == 443 ? Transport::kTlsExtension
                                                : Transport::kHttpHeader;
    ASSERT_TRUE(attach(p, c, t));
    const auto raw = p.cookie_bytes();
    ASSERT_TRUE(raw.has_value());
    ASSERT_FALSE(raw->storage.empty());
    EXPECT_EQ(raw->bytes().data(), raw->storage.data());
    // And the storage holds a decodable stack.
    const auto stack = decode_stack(raw->bytes());
    ASSERT_TRUE(stack.has_value());
    EXPECT_EQ(stack->front(), c);
  }
}

TEST_F(TransportTest, MalformedCookieBlobIgnored) {
  // An X-Network-Cookie header with junk does not yield a cookie.
  net::Packet p = http_packet();
  net::http::Request r("GET", "/", "cnn.com");
  r.add_header(std::string(net::http::kCookieHeader), "not-base64!!");
  const std::string text = r.serialize();
  p.payload.assign(text.begin(), text.end());
  EXPECT_FALSE(extract(p).has_value());
}

}  // namespace
}  // namespace nnn::cookies
