// Replay cache: use-once enforcement within the NCT horizon.
#include <gtest/gtest.h>

#include <vector>

#include "cookies/replay_cache.h"
#include "util/rng.h"

namespace nnn::cookies {
namespace {

crypto::Uuid uuid_from_seed(uint64_t seed) {
  util::Rng rng(seed);
  return crypto::Uuid::generate(rng);
}

TEST(ReplayCache, DetectsDuplicate) {
  ReplayCache cache(5 * util::kSecond);
  const auto u = uuid_from_seed(1);
  EXPECT_TRUE(cache.insert(u, 0));
  EXPECT_FALSE(cache.insert(u, 1 * util::kSecond));
  EXPECT_TRUE(cache.contains(u));
}

TEST(ReplayCache, ForgetsAfterHorizon) {
  ReplayCache cache(5 * util::kSecond);
  const auto u = uuid_from_seed(2);
  EXPECT_TRUE(cache.insert(u, 0));
  // Still remembered within the horizon...
  EXPECT_FALSE(cache.insert(u, 4 * util::kSecond));
  // ...but forgotten after it (the timestamp check rejects such
  // cookies anyway, so forgetting is safe and bounds memory).
  EXPECT_TRUE(cache.insert(u, 6 * util::kSecond));
}

TEST(ReplayCache, PurgeEvictsOnlyExpired) {
  ReplayCache cache(10 * util::kSecond);
  const auto a = uuid_from_seed(3);
  const auto b = uuid_from_seed(4);
  cache.insert(a, 0);
  cache.insert(b, 8 * util::kSecond);
  cache.purge(11 * util::kSecond);
  EXPECT_FALSE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, SizeStaysBoundedUnderChurn) {
  ReplayCache cache(5 * util::kSecond);
  util::Rng rng(5);
  util::Timestamp now = 0;
  for (int i = 0; i < 50'000; ++i) {
    cache.insert(crypto::Uuid::generate(rng), now);
    now += util::kMillisecond;  // 1000 inserts per second
  }
  // Horizon holds ~5 seconds x 1000/s = ~5000 entries.
  EXPECT_LE(cache.size(), 5'100u);
  EXPECT_GE(cache.size(), 4'900u);
}

TEST(ReplayCache, CapacityClampsUuidFlood) {
  // A flood of unique uuids at one instant never ages out by horizon;
  // the explicit capacity bound is what stops unbounded growth.
  ReplayCache cache(5 * util::kSecond, /*capacity=*/100);
  EXPECT_EQ(cache.capacity(), 100u);
  util::Rng rng(7);
  std::vector<crypto::Uuid> uuids;
  for (int i = 0; i < 250; ++i) {
    uuids.push_back(crypto::Uuid::generate(rng));
    EXPECT_TRUE(cache.insert(uuids.back(), 0));
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.capacity_evictions(), 150u);
  // Oldest-first: the first 150 were evicted, the last 100 remain.
  EXPECT_FALSE(cache.contains(uuids.front()));
  EXPECT_TRUE(cache.contains(uuids.back()));
  EXPECT_TRUE(cache.contains(uuids[150]));
  EXPECT_FALSE(cache.contains(uuids[149]));
}

TEST(ReplayCache, EvictedUuidBecomesReplayableTradeoff) {
  // The documented trade-off: once the clamp evicts a uuid, a replay
  // of it is accepted again. Only reachable under a flood.
  ReplayCache cache(5 * util::kSecond, /*capacity=*/4);
  const auto victim = uuid_from_seed(8);
  EXPECT_TRUE(cache.insert(victim, 0));
  EXPECT_FALSE(cache.insert(victim, 0));  // normal replay rejection
  util::Rng rng(9);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(cache.insert(crypto::Uuid::generate(rng), 0));
  }
  EXPECT_FALSE(cache.contains(victim));
  EXPECT_TRUE(cache.insert(victim, 0));  // accepted again post-eviction
}

TEST(ReplayCache, DefaultCapacityIsGenerous) {
  ReplayCache cache(5 * util::kSecond);
  EXPECT_EQ(cache.capacity(), ReplayCache::kDefaultCapacity);
  EXPECT_EQ(cache.capacity_evictions(), 0u);
}

TEST(ReplayCache, ExpiredEntryReinsertableEvenWhenFull) {
  // purge-before-duplicate-check: an expired copy must not shadow the
  // fresh insert, and purging must run before the capacity clamp so
  // expiry (not eviction) reclaims the slot.
  ReplayCache cache(5 * util::kSecond, /*capacity=*/2);
  const auto a = uuid_from_seed(10);
  const auto b = uuid_from_seed(11);
  EXPECT_TRUE(cache.insert(a, 0));
  EXPECT_TRUE(cache.insert(b, 0));
  // Both expired by now; re-inserting `a` must succeed without any
  // capacity eviction being charged.
  EXPECT_TRUE(cache.insert(a, 6 * util::kSecond));
  EXPECT_EQ(cache.capacity_evictions(), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, DistinctUuidsAllAccepted) {
  ReplayCache cache(5 * util::kSecond);
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(cache.insert(crypto::Uuid::generate(rng), 0));
  }
  EXPECT_EQ(cache.size(), 1000u);
}

}  // namespace
}  // namespace nnn::cookies
