// Replay cache: use-once enforcement within the NCT horizon.
#include <gtest/gtest.h>

#include <deque>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cookies/replay_cache.h"
#include "util/rng.h"

namespace nnn::cookies {
namespace {

crypto::Uuid uuid_from_seed(uint64_t seed) {
  util::Rng rng(seed);
  return crypto::Uuid::generate(rng);
}

TEST(ReplayCache, DetectsDuplicate) {
  ReplayCache cache(5 * util::kSecond);
  const auto u = uuid_from_seed(1);
  EXPECT_TRUE(cache.insert(u, 0));
  EXPECT_FALSE(cache.insert(u, 1 * util::kSecond));
  EXPECT_TRUE(cache.contains(u));
}

TEST(ReplayCache, ForgetsAfterHorizon) {
  ReplayCache cache(5 * util::kSecond);
  const auto u = uuid_from_seed(2);
  EXPECT_TRUE(cache.insert(u, 0));
  // Still remembered within the horizon...
  EXPECT_FALSE(cache.insert(u, 4 * util::kSecond));
  // ...but forgotten after it (the timestamp check rejects such
  // cookies anyway, so forgetting is safe and bounds memory).
  EXPECT_TRUE(cache.insert(u, 6 * util::kSecond));
}

TEST(ReplayCache, PurgeEvictsOnlyExpired) {
  ReplayCache cache(10 * util::kSecond);
  const auto a = uuid_from_seed(3);
  const auto b = uuid_from_seed(4);
  cache.insert(a, 0);
  cache.insert(b, 8 * util::kSecond);
  cache.purge(11 * util::kSecond);
  EXPECT_FALSE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, SizeStaysBoundedUnderChurn) {
  ReplayCache cache(5 * util::kSecond);
  util::Rng rng(5);
  util::Timestamp now = 0;
  for (int i = 0; i < 50'000; ++i) {
    cache.insert(crypto::Uuid::generate(rng), now);
    now += util::kMillisecond;  // 1000 inserts per second
  }
  // Horizon holds ~5 seconds x 1000/s = ~5000 entries.
  EXPECT_LE(cache.size(), 5'100u);
  EXPECT_GE(cache.size(), 4'900u);
}

TEST(ReplayCache, CapacityClampsUuidFlood) {
  // A flood of unique uuids at one instant never ages out by horizon;
  // the explicit capacity bound is what stops unbounded growth.
  ReplayCache cache(5 * util::kSecond, /*capacity=*/100);
  EXPECT_EQ(cache.capacity(), 100u);
  util::Rng rng(7);
  std::vector<crypto::Uuid> uuids;
  for (int i = 0; i < 250; ++i) {
    uuids.push_back(crypto::Uuid::generate(rng));
    EXPECT_TRUE(cache.insert(uuids.back(), 0));
  }
  EXPECT_EQ(cache.size(), 100u);
  EXPECT_EQ(cache.capacity_evictions(), 150u);
  // Oldest-first: the first 150 were evicted, the last 100 remain.
  EXPECT_FALSE(cache.contains(uuids.front()));
  EXPECT_TRUE(cache.contains(uuids.back()));
  EXPECT_TRUE(cache.contains(uuids[150]));
  EXPECT_FALSE(cache.contains(uuids[149]));
}

TEST(ReplayCache, EvictedUuidBecomesReplayableTradeoff) {
  // The documented trade-off: once the clamp evicts a uuid, a replay
  // of it is accepted again. Only reachable under a flood.
  ReplayCache cache(5 * util::kSecond, /*capacity=*/4);
  const auto victim = uuid_from_seed(8);
  EXPECT_TRUE(cache.insert(victim, 0));
  EXPECT_FALSE(cache.insert(victim, 0));  // normal replay rejection
  util::Rng rng(9);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(cache.insert(crypto::Uuid::generate(rng), 0));
  }
  EXPECT_FALSE(cache.contains(victim));
  EXPECT_TRUE(cache.insert(victim, 0));  // accepted again post-eviction
}

TEST(ReplayCache, DefaultCapacityIsGenerous) {
  ReplayCache cache(5 * util::kSecond);
  EXPECT_EQ(cache.capacity(), ReplayCache::kDefaultCapacity);
  EXPECT_EQ(cache.capacity_evictions(), 0u);
}

TEST(ReplayCache, ExpiredEntryReinsertableEvenWhenFull) {
  // purge-before-duplicate-check: an expired copy must not shadow the
  // fresh insert, and purging must run before the capacity clamp so
  // expiry (not eviction) reclaims the slot.
  ReplayCache cache(5 * util::kSecond, /*capacity=*/2);
  const auto a = uuid_from_seed(10);
  const auto b = uuid_from_seed(11);
  EXPECT_TRUE(cache.insert(a, 0));
  EXPECT_TRUE(cache.insert(b, 0));
  // Both expired by now; re-inserting `a` must succeed without any
  // capacity eviction being charged.
  EXPECT_TRUE(cache.insert(a, 6 * util::kSecond));
  EXPECT_EQ(cache.capacity_evictions(), 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, DistinctUuidsAllAccepted) {
  ReplayCache cache(5 * util::kSecond);
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(cache.insert(crypto::Uuid::generate(rng), 0));
  }
  EXPECT_EQ(cache.size(), 1000u);
}

/// The seed-era cache in miniature: insertion-ordered deque, purge on
/// every insert. Under a monotone clock insertion order equals expiry
/// order, so its prefix purge is exact and the wheel-based cache must
/// agree on every observable (insert verdicts, membership, size,
/// capacity evictions).
class ReferenceReplayCache {
 public:
  ReferenceReplayCache(util::Timestamp horizon, size_t capacity)
      : horizon_(horizon), capacity_(capacity) {}

  bool insert(const crypto::Uuid& uuid, util::Timestamp now) {
    purge(now);
    if (seen_.contains(uuid)) return false;
    while (order_.size() >= capacity_) {
      seen_.erase(order_.front().first);
      order_.pop_front();
      ++capacity_evictions_;
    }
    order_.emplace_back(uuid, now + horizon_);
    seen_.insert(uuid);
    return true;
  }
  bool contains(const crypto::Uuid& uuid) const {
    return seen_.contains(uuid);
  }
  void purge(util::Timestamp now) {
    while (!order_.empty() && order_.front().second <= now) {
      seen_.erase(order_.front().first);
      order_.pop_front();
    }
  }
  size_t size() const { return order_.size(); }
  uint64_t capacity_evictions() const { return capacity_evictions_; }

 private:
  util::Timestamp horizon_;
  size_t capacity_;
  std::deque<std::pair<crypto::Uuid, util::Timestamp>> order_;
  std::unordered_set<crypto::Uuid> seen_;
  uint64_t capacity_evictions_ = 0;
};

TEST(ReplayCache, DifferentialAgainstReferenceUnderMonotoneChurn) {
  constexpr util::Timestamp kHorizon = 5 * util::kSecond;
  constexpr size_t kCapacity = 300;
  ReplayCache cache(kHorizon, kCapacity);
  ReferenceReplayCache reference(kHorizon, kCapacity);
  util::Rng rng(0xD1FF);
  util::Timestamp now = 0;
  std::vector<crypto::Uuid> recent;
  for (int op = 0; op < 30'000; ++op) {
    now += rng.next_u64(40) * util::kMillisecond;  // monotone, bursty
    const uint64_t kind = rng.next_u64(10);
    if (kind == 0) {
      cache.purge(now);
      reference.purge(now);
    } else if (kind <= 2 && !recent.empty()) {
      // Replay attempt on something seen recently.
      const auto& uuid = recent[rng.next_u64(recent.size())];
      ASSERT_EQ(cache.insert(uuid, now), reference.insert(uuid, now))
          << "op " << op;
    } else {
      const auto uuid = crypto::Uuid::generate(rng);
      recent.push_back(uuid);
      if (recent.size() > 512) recent.erase(recent.begin());
      ASSERT_EQ(cache.insert(uuid, now), reference.insert(uuid, now))
          << "op " << op;
    }
    ASSERT_EQ(cache.size(), reference.size()) << "op " << op;
    ASSERT_EQ(cache.capacity_evictions(), reference.capacity_evictions())
        << "op " << op;
  }
  for (const auto& uuid : recent) {
    ASSERT_EQ(cache.contains(uuid), reference.contains(uuid));
  }
}

TEST(ReplayCache, WatermarkGatesPurgeScans) {
  // The seed implementation scanned on every insert; the watermark
  // must reduce that to one scan per actual expiry batch with zero
  // behavioral difference. 1000 inserts inside one horizon => no entry
  // is ever due during the window, so no scan may run at all.
  ReplayCache cache(5 * util::kSecond);
  util::Rng rng(21);
  for (int i = 0; i < 1000; ++i) {
    cache.insert(crypto::Uuid::generate(rng),
                 static_cast<util::Timestamp>(i) * util::kMillisecond);
  }
  EXPECT_EQ(cache.purge_scans(), 0u);
  EXPECT_EQ(cache.size(), 1000u);
  // Past the first expiry the next insert pays exactly one scan...
  cache.insert(crypto::Uuid::generate(rng), 6 * util::kSecond);
  EXPECT_EQ(cache.purge_scans(), 1u);
  EXPECT_EQ(cache.size(), 1u);  // the whole window expired; only the new one
  // ...and the refreshed watermark gates again immediately after.
  cache.purge(6 * util::kSecond + util::kMillisecond);
  EXPECT_EQ(cache.purge_scans(), 1u);
}

TEST(ReplayCache, BackdatedInsertKeepsPurgeExact) {
  // Clock skew: an entry inserted with an earlier `now` than its
  // predecessor expires sooner than insertion order suggests. The
  // watermark must track the true minimum (min over inserts), so the
  // back-dated entry still purges on time. This is precisely where the
  // old prefix-scan cache silently kept expired entries.
  ReplayCache cache(5 * util::kSecond);
  const auto a = uuid_from_seed(30);
  const auto b = uuid_from_seed(31);
  cache.insert(a, 10 * util::kSecond);  // expires at 15s
  cache.insert(b, 2 * util::kSecond);   // back-dated: expires at 7s
  cache.purge(8 * util::kSecond);
  EXPECT_TRUE(cache.contains(a));
  EXPECT_FALSE(cache.contains(b));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, TelemetryAccessorsTrackState) {
  ReplayCache cache(5 * util::kSecond);
  util::Rng rng(33);
  for (int i = 0; i < 100; ++i) {
    cache.insert(crypto::Uuid::generate(rng), 0);
  }
  EXPECT_EQ(cache.wheel_slots(), ReplayCache::kWheelSlots);
  EXPECT_GE(cache.wheel_occupied_slots(), 1u);
  EXPECT_GT(cache.memory_bytes(), 100u * crypto::Uuid::kSize);
  const auto stats = cache.probe_stats(1024);
  EXPECT_GT(stats.samples, 0u);
  EXPECT_LE(stats.p99, 4u);
}

}  // namespace
}  // namespace nnn::cookies
