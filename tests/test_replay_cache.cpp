// Replay cache: use-once enforcement within the NCT horizon.
#include <gtest/gtest.h>

#include "cookies/replay_cache.h"
#include "util/rng.h"

namespace nnn::cookies {
namespace {

crypto::Uuid uuid_from_seed(uint64_t seed) {
  util::Rng rng(seed);
  return crypto::Uuid::generate(rng);
}

TEST(ReplayCache, DetectsDuplicate) {
  ReplayCache cache(5 * util::kSecond);
  const auto u = uuid_from_seed(1);
  EXPECT_TRUE(cache.insert(u, 0));
  EXPECT_FALSE(cache.insert(u, 1 * util::kSecond));
  EXPECT_TRUE(cache.contains(u));
}

TEST(ReplayCache, ForgetsAfterHorizon) {
  ReplayCache cache(5 * util::kSecond);
  const auto u = uuid_from_seed(2);
  EXPECT_TRUE(cache.insert(u, 0));
  // Still remembered within the horizon...
  EXPECT_FALSE(cache.insert(u, 4 * util::kSecond));
  // ...but forgotten after it (the timestamp check rejects such
  // cookies anyway, so forgetting is safe and bounds memory).
  EXPECT_TRUE(cache.insert(u, 6 * util::kSecond));
}

TEST(ReplayCache, PurgeEvictsOnlyExpired) {
  ReplayCache cache(10 * util::kSecond);
  const auto a = uuid_from_seed(3);
  const auto b = uuid_from_seed(4);
  cache.insert(a, 0);
  cache.insert(b, 8 * util::kSecond);
  cache.purge(11 * util::kSecond);
  EXPECT_FALSE(cache.contains(a));
  EXPECT_TRUE(cache.contains(b));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ReplayCache, SizeStaysBoundedUnderChurn) {
  ReplayCache cache(5 * util::kSecond);
  util::Rng rng(5);
  util::Timestamp now = 0;
  for (int i = 0; i < 50'000; ++i) {
    cache.insert(crypto::Uuid::generate(rng), now);
    now += util::kMillisecond;  // 1000 inserts per second
  }
  // Horizon holds ~5 seconds x 1000/s = ~5000 entries.
  EXPECT_LE(cache.size(), 5'100u);
  EXPECT_GE(cache.size(), 4'900u);
}

TEST(ReplayCache, DistinctUuidsAllAccepted) {
  ReplayCache cache(5 * util::kSecond);
  util::Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(cache.insert(crypto::Uuid::generate(rng), 0));
  }
  EXPECT_EQ(cache.size(), 1000u);
}

}  // namespace
}  // namespace nnn::cookies
