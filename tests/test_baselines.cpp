// Baselines: DPI engine, OOB controller/switch, DiffServ domains —
// including the failure modes the paper measures.
#include <gtest/gtest.h>

#include "baselines/diffserv.h"
#include "baselines/dpi.h"
#include "baselines/oob.h"
#include "net/http.h"
#include "net/tls.h"
#include "sim/nat.h"

namespace nnn::baselines {
namespace {

net::Packet http_packet(const std::string& host, uint16_t src_port) {
  net::Packet p;
  p.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 80;
  net::http::Request r("GET", "/", host);
  const std::string text = r.serialize();
  p.payload.assign(text.begin(), text.end());
  return p;
}

net::Packet tls_packet(const std::string& sni, uint16_t src_port) {
  net::Packet p;
  p.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 20);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 443;
  net::tls::ClientHello hello;
  hello.set_server_name(sni);
  p.payload = hello.serialize_record();
  return p;
}

DpiRule youtube_rule() {
  DpiRule rule;
  rule.app = "youtube";
  rule.host_suffixes = {"youtube.com", "googlevideo.com"};
  rule.payload_substrings = {"youtube.com/embed"};
  return rule;
}

TEST(Dpi, MatchesHostHeader) {
  DpiEngine dpi;
  dpi.add_rule(youtube_rule());
  net::Packet p = http_packet("www.youtube.com", 4000);
  EXPECT_EQ(dpi.classify(p).value(), "youtube");
}

TEST(Dpi, MatchesSni) {
  DpiEngine dpi;
  dpi.add_rule(youtube_rule());
  net::Packet p = tls_packet("r3.googlevideo.com", 4001);
  EXPECT_EQ(dpi.classify(p).value(), "youtube");
}

TEST(Dpi, UnknownAppInvisible) {
  // The skai.gr scenario: no rule, no match — ever.
  DpiEngine dpi;
  dpi.add_rule(youtube_rule());
  net::Packet p = http_packet("skai.gr", 4002);
  EXPECT_FALSE(dpi.classify(p).has_value());
  EXPECT_FALSE(dpi.knows_app("skai"));
}

TEST(Dpi, EmbeddedPlayerFalsePositive) {
  // skai.gr embeds YouTube's player: the embed flow carries YouTube's
  // fingerprint and is misattributed (the paper's 12%).
  DpiEngine dpi;
  dpi.add_rule(youtube_rule());
  net::Packet p = http_packet("skai.gr", 4003);
  const std::string embed_body =
      "<iframe src=\"https://www.youtube.com/embed/xyz\"></iframe>";
  net::http::Request r("GET", "/front", "skai.gr");
  r.set_body(embed_body);
  const std::string text = r.serialize();
  p.payload.assign(text.begin(), text.end());
  // Host says skai (no rule) but the payload fingerprint fires.
  EXPECT_EQ(dpi.classify(p).value(), "youtube");
}

TEST(Dpi, FlowCacheStampsWholeFlow) {
  DpiEngine dpi;
  dpi.add_rule(youtube_rule());
  net::Packet hello = tls_packet("youtube.com", 4004);
  EXPECT_TRUE(dpi.classify(hello).has_value());
  // Opaque data packet of the same flow inherits the label.
  net::Packet data;
  data.tuple = hello.tuple;
  data.wire_size = 1400;
  EXPECT_EQ(dpi.classify(data).value(), "youtube");
  EXPECT_EQ(dpi.stats().flows_classified, 1u);
  EXPECT_EQ(dpi.stats().classified_packets, 2u);
}

TEST(Dpi, LateHostStillClassifiesWithinWindow) {
  DpiEngine dpi;
  dpi.add_rule(youtube_rule());
  net::Packet opaque;
  opaque.tuple = tls_packet("x", 4005).tuple;
  opaque.wire_size = 100;
  EXPECT_FALSE(dpi.classify(opaque).has_value());  // packet 1: nothing
  net::Packet hello = tls_packet("youtube.com", 4005);
  EXPECT_TRUE(dpi.classify(hello).has_value());  // packet 2: SNI seen
}

TEST(Dpi, GivesUpAfterInspectionWindow) {
  DpiEngine dpi;
  dpi.add_rule(youtube_rule());
  net::Packet opaque;
  opaque.tuple = tls_packet("x", 4006).tuple;
  opaque.wire_size = 100;
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(dpi.classify(opaque).has_value());
  // Window exhausted: even a late SNI packet no longer flips the flow.
  net::Packet hello = tls_packet("youtube.com", 4006);
  EXPECT_FALSE(dpi.classify(hello).has_value());
}

TEST(Dpi, IpPrefixAndPortRules) {
  DpiEngine dpi;
  DpiRule rule;
  rule.app = "game";
  rule.server_prefixes = {{net::IpAddress::v4(151, 101, 0, 0).v4_value(),
                           16}};
  dpi.add_rule(rule);
  net::Packet inside;
  inside.tuple.dst_ip = net::IpAddress::v4(151, 101, 9, 9);
  EXPECT_EQ(dpi.classify(inside).value(), "game");
  net::Packet outside;
  outside.tuple.dst_ip = net::IpAddress::v4(8, 8, 8, 8);
  outside.tuple.src_port = 1;  // distinct flow
  EXPECT_FALSE(dpi.classify(outside).has_value());

  DpiEngine port_dpi;
  DpiRule port_rule;
  port_rule.app = "dns";
  port_rule.ports = {53};
  port_dpi.add_rule(port_rule);
  net::Packet dns;
  dns.tuple.dst_port = 53;
  EXPECT_EQ(port_dpi.classify(dns).value(), "dns");
}

TEST(Dpi, VisibleHostHelper) {
  EXPECT_EQ(visible_host(http_packet("cnn.com", 1)).value(), "cnn.com");
  EXPECT_EQ(visible_host(tls_packet("cdn.cnn.com", 2)).value(),
            "cdn.cnn.com");
  net::Packet opaque;
  opaque.payload = {0x16, 0x01, 0x02};
  EXPECT_FALSE(visible_host(opaque).has_value());
}

// --- OOB ---

net::FiveTuple sample_tuple() {
  net::FiveTuple t;
  t.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  t.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
  t.src_port = 40000;
  t.dst_port = 443;
  t.proto = net::L4Proto::kTcp;
  return t;
}

TEST(Oob, ExactDescriptionMatchesExactFlowOnly) {
  OobSwitch sw;
  const auto t = sample_tuple();
  sw.install({FlowDescription::exact(t), "boost"});
  net::Packet hit;
  hit.tuple = t;
  EXPECT_TRUE(sw.match(hit).has_value());
  net::Packet miss;
  miss.tuple = t;
  miss.tuple.src_port = 40001;
  EXPECT_FALSE(sw.match(miss).has_value());
}

TEST(Oob, ExactDescriptionDiesAtNat) {
  OobSwitch sw;
  const auto t = sample_tuple();
  sw.install({FlowDescription::exact(t), "boost"});
  net::Packet p;
  p.tuple = t;
  sim::Nat nat(net::IpAddress::v4(203, 0, 113, 1));
  nat.translate_outbound(p);
  EXPECT_FALSE(sw.match(p).has_value());  // §3: "invalid for the
                                          // head-end router"
}

TEST(Oob, ServerOnlyDescriptionSurvivesNatButOvermatches) {
  OobSwitch sw;
  const auto t = sample_tuple();
  sw.install({FlowDescription::server_only(t), "boost"});
  net::Packet mine;
  mine.tuple = t;
  sim::Nat nat(net::IpAddress::v4(203, 0, 113, 1));
  nat.translate_outbound(mine);
  EXPECT_TRUE(sw.match(mine).has_value());
  // Another app talking to the same server:port also matches — the
  // false-positive mechanism of Fig. 6c.
  net::Packet other_app;
  other_app.tuple = t;
  other_app.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 77);
  other_app.tuple.src_port = 1234;
  EXPECT_TRUE(sw.match(other_app).has_value());
}

TEST(Oob, ControllerCountsSignalingCost) {
  OobSwitch sw1;
  OobSwitch sw2;
  OobController controller;
  controller.attach_switch(&sw1);
  controller.attach_switch(&sw2);
  // cnn.com's 255 flows -> 255 signals, 510 rules across two switches.
  for (int i = 0; i < 255; ++i) {
    auto t = sample_tuple();
    t.src_port = static_cast<uint16_t>(40000 + i);
    controller.request_service(FlowDescription::exact(t), "boost");
  }
  EXPECT_EQ(controller.stats().signals, 255u);
  EXPECT_EQ(controller.stats().rules_installed, 510u);
  EXPECT_EQ(sw1.rule_count(), 255u);
}

TEST(Oob, FirstMatchWins) {
  OobSwitch sw;
  const auto t = sample_tuple();
  sw.install({FlowDescription::server_only(t), "first"});
  sw.install({FlowDescription::exact(t), "second"});
  net::Packet p;
  p.tuple = t;
  EXPECT_EQ(sw.match(p).value(), "first");
}

// --- DiffServ ---

TEST(DiffServ, BleachingBoundaryResetsMarking) {
  net::Packet p;
  p.dscp = 46;
  DiffServDomain isp("isp", BoundaryPolicy::kBleach);
  isp.ingress(p);
  EXPECT_EQ(p.dscp, 0);
}

TEST(DiffServ, PreservingBoundaryKeepsMarking) {
  net::Packet p;
  p.dscp = 46;
  DiffServDomain isp("isp", BoundaryPolicy::kPreserve);
  isp.ingress(p);
  EXPECT_EQ(p.dscp, 46);
}

TEST(DiffServ, RemapBoundary) {
  net::Packet p;
  p.dscp = 46;
  DiffServDomain isp("isp", BoundaryPolicy::kRemap);
  isp.set_remap(46, 10);
  isp.ingress(p);
  EXPECT_EQ(p.dscp, 10);
}

TEST(DiffServ, MultiDomainPathLosesEndToEndMeaning) {
  // The §3 argument: expressing preferences end-to-end requires every
  // network on the path to preserve the marking; one bleacher breaks it.
  net::Packet p;
  p.dscp = 46;
  DiffServDomain home("home", BoundaryPolicy::kPreserve);
  DiffServDomain transit("transit", BoundaryPolicy::kBleach);
  DiffServDomain edge("edge", BoundaryPolicy::kPreserve);
  edge.define_class(46, "low-latency");
  const uint8_t arrived = traverse(p, {&home, &transit, &edge});
  EXPECT_EQ(arrived, 0);
  EXPECT_EQ(edge.interior_class(arrived), "");
}

TEST(DiffServ, ClassTableCappedAt64) {
  DiffServDomain domain("isp", BoundaryPolicy::kPreserve);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(domain.define_class(static_cast<uint8_t>(i), "c"));
  }
  EXPECT_FALSE(domain.define_class(64, "overflow"));  // > 6 bits
  EXPECT_EQ(domain.class_count(), 64u);
}

TEST(DiffServ, NoAuthentication) {
  // Any endpoint can mark any packet: there is no credential anywhere
  // in the mechanism (contrast with cookie descriptor acquisition).
  net::Packet rogue;
  rogue.dscp = 46;  // set by a legacy console without user consent (§3)
  DiffServDomain isp("isp", BoundaryPolicy::kPreserve);
  isp.define_class(46, "paid-priority");
  isp.ingress(rogue);
  EXPECT_EQ(isp.interior_class(rogue.dscp), "paid-priority");
}

}  // namespace
}  // namespace nnn::baselines
