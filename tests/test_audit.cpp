// Tests for src/audit/: the KS statistics core against precomputed
// references, the matched-pair replay engine's determinism and null
// behavior, and the headline acceptance matrix — the auditor must flag
// kThrottleNonCookie with p < 0.01 on every seed of a 10-seed matrix
// and report CLEAN (zero false positives) on the same matrix without
// the fault. The differential test at the bottom is the reason the
// subsystem exists: every table-level audit surface stays spotless
// while the throttle runs, and only the statistical auditor convicts.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "audit/replay.h"
#include "audit/stats.h"
#include "audit/verdict.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "server/compliance.h"
#include "server/cookie_server.h"
#include "server/json_api.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace nnn::audit {
namespace {

constexpr uint64_t kSeedMatrix[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

/// Shrunk-but-real config: enough pairs for the KS test to have power,
/// few enough that the 10-seed matrix (x2: clean + throttled) stays
/// around a second.
AuditorConfig test_config() {
  AuditorConfig config;
  config.replay.pairs = 120;
  config.permutation_rounds = 500;  // p floor ~0.002 < alpha 0.01
  return config;
}

fault::FaultPlan throttle_plan(const ReplayConfig& replay,
                               double magnitude) {
  fault::FaultEvent event;
  event.kind = fault::FaultKind::kThrottleNonCookie;
  event.start = 0;
  event.duration = replay.horizon;
  event.magnitude = magnitude;
  event.target = replay.audited_link_id;
  fault::FaultPlan plan;
  plan.add(event);
  return plan;
}

// ---------------------------------------------------------------------------
// KS statistic vs precomputed references
// ---------------------------------------------------------------------------

// References computed independently (exact CDF merge walk + the
// Numerical Recipes Kolmogorov series, evaluated in Python at double
// precision).

TEST(KsStatistic, DisjointSamplesReachOne) {
  EXPECT_DOUBLE_EQ(ks_statistic({1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}), 1.0);
}

TEST(KsStatistic, InterleavedSamples) {
  EXPECT_DOUBLE_EQ(ks_statistic({1, 3, 5, 7}, {2, 4, 6, 8}), 0.25);
}

TEST(KsStatistic, TiedValuesAdvanceBothCdfs) {
  // a: [1,2,2,3,4], b: [2,3,3,5] — sup gap lands after x=4:
  // F_a = 5/5, F_b = 3/4 -> D = 0.35. Naive walks that advance one
  // cursor per step overshoot on the ties.
  EXPECT_NEAR(ks_statistic({1.0, 2.0, 2.0, 3.0, 4.0}, {2.0, 3.0, 3.0, 5.0}),
              0.35, 1e-12);
}

TEST(KsStatistic, ModerateVectorsMatchReference) {
  // sin-grid vectors, n=40 vs m=55, reference D computed externally.
  std::vector<double> a, b;
  for (int k = 0; k < 40; ++k) a.push_back(std::sin(k * 1.7) + k * 0.01);
  for (int k = 0; k < 55; ++k) {
    b.push_back(std::sin(k * 1.7 + 0.9) + k * 0.01 + 0.15);
  }
  EXPECT_NEAR(ks_statistic(a, b), 0.15454545454545454, 1e-12);
}

TEST(KsStatistic, OrderInvariant) {
  // ks_statistic sorts internally; shuffled input = sorted input.
  EXPECT_DOUBLE_EQ(ks_statistic({5, 1, 3, 2, 4}, {9, 7, 6, 10, 8}),
                   ks_statistic({1, 2, 3, 4, 5}, {6, 7, 8, 9, 10}));
}

TEST(KsStatistic, EmptySampleIsZero) {
  EXPECT_DOUBLE_EQ(ks_statistic({}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(ks_statistic({1, 2}, {}), 0.0);
}

TEST(KsAsymptoticP, MatchesReferenceValues) {
  // Same external references as above.
  EXPECT_NEAR(ks_asymptotic_p(1.0, 5, 5), 0.0037813540593701006, 1e-12);
  EXPECT_NEAR(ks_asymptotic_p(0.25, 4, 4), 0.9968756885202118, 1e-12);
  EXPECT_NEAR(ks_asymptotic_p(0.35, 5, 4), 0.8777771901764329, 1e-12);
  EXPECT_NEAR(ks_asymptotic_p(0.15454545454545454, 40, 55),
              0.6006585574719695, 1e-12);
}

TEST(KsAsymptoticP, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(ks_asymptotic_p(0.0, 10, 10), 1.0);
  EXPECT_DOUBLE_EQ(ks_asymptotic_p(0.5, 0, 10), 1.0);
  // Large D with real samples -> p pinned into [0, 1].
  const double p = ks_asymptotic_p(1.0, 1000, 1000);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1e-6);
}

TEST(KsPermutationP, IdenticalSamplesGiveOne) {
  // D_obs = 0, and every permuted D >= 0, so the add-one count is
  // exactly rounds+1: p = 1.
  const std::vector<double> s = {1, 2, 3, 4, 5, 6};
  EXPECT_DOUBLE_EQ(ks_permutation_p(s, s, 200, 42), 1.0);
}

TEST(KsPermutationP, DisjointSamplesHitTheFloor) {
  // D_obs = 1 is only reachable by re-creating a perfect split; with
  // 12 pooled values the chance is ~2/C(12,6) per round, so the
  // add-one floor 1/(rounds+1) is the overwhelmingly likely result —
  // and determinism makes it a fixed value for a fixed seed.
  const double p = ks_permutation_p({1, 2, 3, 4, 5, 6},
                                    {10, 11, 12, 13, 14, 15}, 500, 7);
  EXPECT_DOUBLE_EQ(p, 1.0 / 501.0);
}

TEST(KsPermutationP, DeterministicPerSeed) {
  std::vector<double> a, b;
  for (int k = 0; k < 30; ++k) a.push_back(std::sin(k * 0.7));
  for (int k = 0; k < 30; ++k) b.push_back(std::sin(k * 0.7 + 0.4) + 0.1);
  const double p1 = ks_permutation_p(a, b, 300, 99);
  const double p2 = ks_permutation_p(a, b, 300, 99);
  EXPECT_DOUBLE_EQ(p1, p2);
  // A different seed re-randomizes the null draws; for a mid-range p
  // the count almost surely moves by at least one round.
  const double p3 = ks_permutation_p(a, b, 300, 100);
  EXPECT_GT(p1, 0.0);
  EXPECT_LE(std::abs(p1 - p3), 0.2) << "seeds should agree approximately";
}

TEST(ExactQuantile, Type7Interpolation) {
  const std::vector<double> sorted = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(exact_quantile(sorted, 0.0), 10);
  EXPECT_DOUBLE_EQ(exact_quantile(sorted, 0.5), 30);
  EXPECT_DOUBLE_EQ(exact_quantile(sorted, 1.0), 50);
  EXPECT_DOUBLE_EQ(exact_quantile(sorted, 0.25), 20);
  EXPECT_DOUBLE_EQ(exact_quantile({10, 20}, 0.5), 15);  // interpolated
  EXPECT_DOUBLE_EQ(exact_quantile({}, 0.5), 0);
}

TEST(Median, CopiesAndSorts) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

// ---------------------------------------------------------------------------
// Replay engine
// ---------------------------------------------------------------------------

TEST(PairSchedule, DeterministicPerSeed) {
  const ReplayConfig config = test_config().replay;
  const PairSchedule a = PairSchedule::generate(config, 11);
  const PairSchedule b = PairSchedule::generate(config, 11);
  ASSERT_EQ(a.flows.size(), config.pairs);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i].bytes, b.flows[i].bytes);
    EXPECT_EQ(a.flows[i].start, b.flows[i].start);
  }
  const PairSchedule c = PairSchedule::generate(config, 12);
  bool differs = false;
  for (size_t i = 0; i < a.flows.size(); ++i) {
    differs |= a.flows[i].bytes != c.flows[i].bytes ||
               a.flows[i].start != c.flows[i].start;
  }
  EXPECT_TRUE(differs) << "different seeds must draw different schedules";
}

TEST(PairSchedule, RespectsSizeClamp) {
  ReplayConfig config = test_config().replay;
  const PairSchedule schedule = PairSchedule::generate(config, 3);
  for (const auto& entry : schedule.flows) {
    EXPECT_GE(entry.bytes, config.min_flow_bytes);
    EXPECT_LE(entry.bytes, config.max_flow_bytes);
  }
}

TEST(ReplayLane, IsDeterministic) {
  const ReplayConfig config = test_config().replay;
  const PairSchedule schedule = PairSchedule::generate(config, 5);
  const auto run1 =
      replay_lane(config, schedule, Lane::kBoosted, 5, nullptr);
  const auto run2 =
      replay_lane(config, schedule, Lane::kBoosted, 5, nullptr);
  ASSERT_EQ(run1.size(), run2.size());
  for (size_t i = 0; i < run1.size(); ++i) {
    EXPECT_DOUBLE_EQ(run1[i].fct, run2[i].fct);
    EXPECT_EQ(run1[i].completed, run2[i].completed);
  }
}

TEST(ReplayLane, BothLanesCompleteOnCleanLink) {
  const ReplayConfig config = test_config().replay;
  const PairedSamples samples = replay_matched_pairs(config, 21, nullptr);
  ASSERT_EQ(samples.boosted.size(), config.pairs);
  ASSERT_EQ(samples.baseline.size(), config.pairs);
  size_t completed = 0;
  for (const auto& f : samples.boosted) completed += f.completed;
  for (const auto& f : samples.baseline) completed += f.completed;
  // The horizon is generous; the clean link should finish essentially
  // everything in both lanes.
  EXPECT_GE(completed, 2 * config.pairs - 4);
}

// ---------------------------------------------------------------------------
// Verdict matrix: the acceptance gates
// ---------------------------------------------------------------------------

TEST(Auditor, CleanMatrixHasZeroFalsePositives) {
  telemetry::Registry registry;
  Auditor auditor(test_config(), registry);
  for (uint64_t seed : kSeedMatrix) {
    const AuditReport report = auditor.run(seed);
    EXPECT_EQ(report.verdict, AuditVerdict::kClean)
        << "false positive: " << report.summary();
    EXPECT_EQ(report.boosted.completed, report.boosted.flows);
  }
}

TEST(Auditor, ThrottleMatrixDetectedOnEverySeed) {
  telemetry::Registry registry;
  Auditor auditor(test_config(), registry);
  for (uint64_t seed : kSeedMatrix) {
    fault::Injector injector;
    injector.arm(throttle_plan(auditor.config().replay, 0.5));
    const AuditReport report = auditor.run(seed, &injector);
    EXPECT_EQ(report.verdict, AuditVerdict::kViolation)
        << "missed throttle: " << report.summary();
    EXPECT_LT(report.fct_p, 0.01) << report.summary();
    EXPECT_GT(report.median_fct_delta, 0.05) << report.summary();
    // The injector's own ledger confirms the fault actually fired —
    // detection was not luck.
    EXPECT_GT(injector.injected(fault::FaultKind::kThrottleNonCookie), 0u);
  }
}

TEST(Auditor, MildThrottleStillCaught) {
  // magnitude 0.7 = non-cookie traffic at 70% rate; subtler than the
  // matrix case but well inside the auditor's power at 120 pairs.
  telemetry::Registry registry;
  Auditor auditor(test_config(), registry);
  fault::Injector injector;
  injector.arm(throttle_plan(auditor.config().replay, 0.7));
  const AuditReport report = auditor.run(3, &injector);
  EXPECT_EQ(report.verdict, AuditVerdict::kViolation) << report.summary();
}

TEST(Auditor, InconclusiveBelowMinSamples) {
  telemetry::Registry registry;
  Auditor auditor(test_config(), registry);
  PairedSamples tiny;
  for (int i = 0; i < 5; ++i) {
    FlowSample f;
    f.bytes = 1000;
    f.fct = 0.1;
    f.throughput_bps = 8e4;
    f.completed = true;
    tiny.boosted.push_back(f);
    tiny.baseline.push_back(f);
  }
  const AuditReport report = auditor.analyze(1, tiny);
  EXPECT_EQ(report.verdict, AuditVerdict::kInconclusive);
}

TEST(Auditor, AnalyzeFlagsSyntheticShift) {
  // Pure statistics path: baseline FCTs drawn 2x slower. No sim run.
  telemetry::Registry registry;
  Auditor auditor(test_config(), registry);
  PairedSamples samples;
  for (int i = 0; i < 100; ++i) {
    FlowSample boosted;
    boosted.bytes = 10000;
    boosted.fct = 0.05 + 0.001 * i;
    boosted.throughput_bps = boosted.bytes * 8 / boosted.fct;
    boosted.completed = true;
    FlowSample baseline = boosted;
    baseline.fct *= 2.0;
    baseline.throughput_bps = baseline.bytes * 8 / baseline.fct;
    samples.boosted.push_back(boosted);
    samples.baseline.push_back(baseline);
  }
  const AuditReport report = auditor.analyze(17, samples);
  EXPECT_EQ(report.verdict, AuditVerdict::kViolation);
  EXPECT_NEAR(report.median_fct_delta, 1.0, 0.01);
  // The 2x shift leaves a [0.1, 0.149] overlap band; the exact sup
  // gap over these uniform grids is 0.75.
  EXPECT_DOUBLE_EQ(report.fct_ks, 0.75);
}

TEST(Auditor, ExportsTelemetryAndLastReport) {
  telemetry::Registry registry;
  Auditor auditor(test_config(), registry);
  EXPECT_FALSE(auditor.last_report().has_value());
  fault::Injector injector;
  injector.arm(throttle_plan(auditor.config().replay, 0.5));
  const AuditReport report = auditor.run(2, &injector);

  const auto last = auditor.last_report();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->verdict, report.verdict);
  EXPECT_DOUBLE_EQ(last->fct_p, report.fct_p);

  const telemetry::Snapshot snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counter_total("nnn_audit_runs_total"), 1u);
  EXPECT_EQ(snapshot.counter_total("nnn_audit_pairs_total"),
            auditor.config().replay.pairs);
  telemetry::LabelSet violation;
  violation.add("verdict", "violation");
  EXPECT_EQ(
      snapshot.counter_total("nnn_audit_verdicts_total", violation), 1u);
  const auto* gauge = snapshot.find("nnn_audit_last_p_micro");
  ASSERT_NE(gauge, nullptr);
  ASSERT_EQ(gauge->samples.size(), 1u);
  EXPECT_EQ(gauge->samples[0].gauge_value,
            static_cast<int64_t>(report.fct_p * 1e6));
  const auto* fct = snapshot.find("nnn_audit_fct_micros");
  ASSERT_NE(fct, nullptr);
  EXPECT_EQ(fct->samples.size(), 2u);  // lane=boosted, lane=baseline
}

TEST(AuditReport, JsonCarriesTheVerdict) {
  telemetry::Registry registry;
  Auditor auditor(test_config(), registry);
  const AuditReport report = auditor.run(4);
  const json::Value doc = report.to_json();
  EXPECT_EQ(doc.get_string("verdict"), "clean");
  EXPECT_DOUBLE_EQ(doc.find("fct")->find("p")->as_number(), report.fct_p);
  EXPECT_EQ(static_cast<size_t>(doc.find("pairs")->as_number()),
            report.pairs);
}

// ---------------------------------------------------------------------------
// The differential: tables clean, distributions guilty
// ---------------------------------------------------------------------------

TEST(Differential, TableAuditMissesWhatTheStatisticalAuditorCatches) {
  // The operator behaves impeccably at the descriptor level: every
  // enrollment request granted same-day, nothing revoked, the audit
  // log and compliance database spotless. Meanwhile a middlebox
  // throttles all non-cookie traffic to half rate.
  util::ManualClock clock(0);
  server::CookieServer operator_server(clock, 99);
  server::ServiceOffer offer;
  offer.name = "Boost";
  operator_server.add_service(offer);
  server::ComplianceMonitor fcc;
  fcc.record_request("provider.example", "Boost", clock.now());
  ASSERT_TRUE(operator_server.acquire("Boost", "provider.example").ok());
  fcc.record_grant("provider.example", "Boost", clock.now());
  clock.set(30LL * 24 * 3600 * util::kSecond);  // a month later

  // Table-level audit: no violations, no revocations, a clean log.
  EXPECT_TRUE(fcc.violations(clock.now()).empty());
  size_t revocations = 0;
  for (const auto& record : operator_server.audit_log().records()) {
    revocations += to_string(record.event) == std::string("revoke");
  }
  EXPECT_EQ(revocations, 0u);

  // Statistical audit of the same network: guilty.
  telemetry::Registry registry;
  Auditor auditor(test_config(), registry);
  fault::Injector injector;
  injector.arm(throttle_plan(auditor.config().replay, 0.5));
  const AuditReport report = auditor.run(6, &injector);
  EXPECT_EQ(report.verdict, AuditVerdict::kViolation) << report.summary();

  // And the verdict is servable to the regulator over the same JSON
  // surface the table metrics come from.
  server::JsonApi api(operator_server, registry);
  api.set_auditor(&auditor);
  const auto response = api.handle_http("GET", "/audit.json");
  EXPECT_EQ(response.status, 200);
  const auto parsed = json::parse(response.body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("report")->get_string("verdict"), "violation");
}

TEST(Differential, AuditJsonRouteWithoutAuditorIs404) {
  util::ManualClock clock(0);
  server::CookieServer operator_server(clock, 1);
  telemetry::Registry registry;
  server::JsonApi api(operator_server, registry);
  EXPECT_EQ(api.handle_http("GET", "/audit.json").status, 404);
  Auditor auditor(test_config(), registry);
  api.set_auditor(&auditor);
  // Wired but never run: still a 404 ("no-report"), not a crash.
  EXPECT_EQ(api.handle_http("GET", "/audit.json").status, 404);
}

// ---------------------------------------------------------------------------
// Dataplane backend (scaled down; the bench runs the 5000-pair gate)
// ---------------------------------------------------------------------------

TEST(DataplaneReplay, LedgerBalancesAndVerifiesEveryCookieFlow) {
  DataplaneReplayConfig config;
  config.pairs = 256;
  config.workers = 2;
  config.seed = 9;
  const DataplaneReplayResult result = replay_through_dataplane(config);
  EXPECT_EQ(result.pairs, config.pairs);
  EXPECT_EQ(result.packets_ingested,
            2ull * config.pairs * config.packets_per_flow);
  EXPECT_TRUE(result.ledger_ok);
  EXPECT_EQ(result.shed, 0u);  // ingest_blocking: closed loop, no loss
  EXPECT_EQ(result.verified_ok, config.pairs);  // one cookie per pair
  EXPECT_GT(result.pairs_per_sec, 0.0);
}

}  // namespace
}  // namespace nnn::audit
