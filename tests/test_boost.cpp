// Boost service layer: browser attribution, agent preferences and
// cookie insertion, daemon classification/throttling, AnyLink proxy.
#include <gtest/gtest.h>

#include "boost_lane/agent.h"
#include "boost_lane/anylink.h"
#include "boost_lane/browser.h"
#include "boost_lane/daemon.h"
#include "controlplane/local_subscriber.h"
#include "cookies/transport.h"
#include "net/http.h"
#include "server/cookie_server.h"
#include "server/json_api.h"
#include "util/clock.h"
#include "workload/page_load.h"
#include "workload/websites.h"

namespace nnn::boost_lane {
namespace {

using util::kSecond;

class BoostStack : public ::testing::Test {
 protected:
  BoostStack()
      : clock_(1'000'000 * kSecond),
        verifier_(clock_),
        server_(clock_, 5, &log_),
        subscriber_(log_, verifier_),
        api_(server_),
        agent_(clock_, api_, "home-1", 17),
        rng_(23),
        browser_(rng_, net::IpAddress::v4(192, 168, 1, 10)) {
    server::ServiceOffer offer;
    offer.name = "Boost";
    offer.service_data = "Boost";
    offer.descriptor_lifetime = 3600LL * kSecond;
    server_.add_service(offer);
  }

  util::ManualClock clock_;
  cookies::CookieVerifier verifier_;
  controlplane::DescriptorLog log_;
  server::CookieServer server_;
  controlplane::LocalSubscriber subscriber_;
  server::JsonApi api_;
  BoostAgent agent_;
  util::Rng rng_;
  Browser browser_;
};

TEST_F(BoostStack, BrowserAttributesFlowsToTabs) {
  const auto tab = browser_.open_tab();
  const auto load = browser_.navigate(tab, workload::cnn_profile());
  EXPECT_EQ(load.domain, "cnn.com");
  uint32_t tagged_packets = 0;
  uint32_t untagged_packets = 0;
  for (const auto& flow : load.flows) {
    if (flow.tab) {
      EXPECT_EQ(*flow.tab, tab);
      EXPECT_EQ(flow.address_bar_domain, "cnn.com");
      tagged_packets += flow.flow.packets;
    } else {
      untagged_packets += flow.flow.packets;
    }
  }
  // ~6% of packets are DNS/prefetch without tab context.
  const double untagged_share =
      static_cast<double>(untagged_packets) /
      (tagged_packets + untagged_packets);
  EXPECT_GT(untagged_share, 0.0);
  EXPECT_LT(untagged_share, 0.10);
}

TEST_F(BoostStack, AgentAcquiresDescriptorOnFirstBoost) {
  EXPECT_FALSE(agent_.has_descriptor());
  const auto tab = browser_.open_tab();
  EXPECT_TRUE(agent_.boost_tab(tab));
  EXPECT_TRUE(agent_.has_descriptor());
  EXPECT_TRUE(verifier_.knows(agent_.descriptor()->cookie_id));
}

TEST_F(BoostStack, TabBoostExpiresAfterAnHour) {
  const auto tab = browser_.open_tab();
  agent_.boost_tab(tab);
  EXPECT_TRUE(agent_.tab_boosted(tab));
  clock_.advance(BoostAgent::kBoostDuration + kSecond);
  EXPECT_FALSE(agent_.tab_boosted(tab));
}

TEST_F(BoostStack, AlwaysBoostIsRemembered) {
  agent_.always_boost("netflix.com");
  EXPECT_TRUE(agent_.site_boosted("netflix.com"));
  EXPECT_FALSE(agent_.site_boosted("cnn.com"));
  agent_.remove_always_boost("netflix.com");
  EXPECT_FALSE(agent_.site_boosted("netflix.com"));
}

TEST_F(BoostStack, ShouldBoostRespectsTabAndSitePreferences) {
  const auto tab = browser_.open_tab();
  const auto load = browser_.navigate(tab, workload::cnn_profile());
  const auto& tagged = *std::find_if(
      load.flows.begin(), load.flows.end(),
      [](const BrowserFlow& f) { return f.tab.has_value(); });

  EXPECT_FALSE(agent_.should_boost(tagged));
  agent_.boost_tab(tab);
  EXPECT_TRUE(agent_.should_boost(tagged));
  agent_.unboost_tab(tab);
  EXPECT_FALSE(agent_.should_boost(tagged));
  agent_.always_boost("cnn.com");
  EXPECT_TRUE(agent_.should_boost(tagged));

  // DNS/prefetch flows (no tab) are never boosted.
  const auto untagged = std::find_if(
      load.flows.begin(), load.flows.end(),
      [](const BrowserFlow& f) { return !f.tab.has_value(); });
  if (untagged != load.flows.end()) {
    EXPECT_FALSE(agent_.should_boost(*untagged));
  }
}

TEST_F(BoostStack, CookieInsertedOnCorrectTransport) {
  const auto tab = browser_.open_tab();
  auto load = browser_.navigate(tab, workload::cnn_profile());
  agent_.boost_tab(tab);

  int http_cookies = 0;
  int tls_cookies = 0;
  for (const auto& flow : load.flows) {
    if (!flow.tab) continue;
    net::Packet request =
        workload::PageLoadGenerator::make_request_packet(flow.flow);
    ASSERT_TRUE(agent_.process_request(flow, request));
    const auto extracted = cookies::extract(request);
    ASSERT_TRUE(extracted.has_value());
    if (flow.flow.https) {
      EXPECT_EQ(extracted->transport, cookies::Transport::kTlsExtension);
      ++tls_cookies;
    } else {
      EXPECT_EQ(extracted->transport, cookies::Transport::kHttpHeader);
      ++http_cookies;
    }
    // Every inserted cookie verifies against the issued descriptor.
    EXPECT_TRUE(verifier_.verify(extracted->stack.front()).ok());
  }
  EXPECT_GT(http_cookies, 0);
  EXPECT_GT(tls_cookies, 0);
  EXPECT_EQ(agent_.cookies_inserted(),
            static_cast<uint64_t>(http_cookies + tls_cookies));
}

TEST_F(BoostStack, DaemonClassifiesBoostedFlowToFastLane) {
  BoostDaemon daemon(clock_, verifier_, {});
  const auto tab = browser_.open_tab();
  auto load = browser_.navigate(tab, workload::cnn_profile());
  agent_.boost_tab(tab);

  const auto& flow = *std::find_if(
      load.flows.begin(), load.flows.end(),
      [](const BrowserFlow& f) { return f.tab.has_value(); });
  net::Packet request =
      workload::PageLoadGenerator::make_request_packet(flow.flow);
  agent_.process_request(flow, request);

  EXPECT_EQ(daemon.classify(request), kFastLaneBand);
  // Subsequent data of the same flow and its reverse ride the fast lane.
  net::Packet data;
  data.tuple = flow.flow.tuple;
  data.wire_size = 1200;
  EXPECT_EQ(daemon.classify(data), kFastLaneBand);
  net::Packet reverse;
  reverse.tuple = flow.flow.tuple.reversed();
  reverse.wire_size = 1200;
  EXPECT_EQ(daemon.classify(reverse), kFastLaneBand);
  // Unrelated traffic stays best-effort.
  net::Packet other;
  other.tuple.src_port = 1;
  EXPECT_EQ(daemon.classify(other), kBestEffortBand);
}

TEST_F(BoostStack, DaemonLastOneWinsConflictPolicy) {
  BoostDaemon daemon(clock_, verifier_, {});
  const auto grant_a = server_.acquire("Boost", "alice");
  daemon.boost_granted("alice", grant_a.descriptor->cookie_id);
  EXPECT_EQ(daemon.active_boost_client(), "alice");

  const auto grant_b = server_.acquire("Boost", "bob");
  daemon.boost_granted("bob", grant_b.descriptor->cookie_id);
  EXPECT_EQ(daemon.active_boost_client(), "bob");
  // Alice's descriptor was revoked at the verifier.
  EXPECT_EQ(verifier_.find(grant_a.descriptor->cookie_id), nullptr);
  EXPECT_NE(verifier_.find(grant_b.descriptor->cookie_id), nullptr);
}

TEST_F(BoostStack, InvalidCookieStaysBestEffort) {
  BoostDaemon daemon(clock_, verifier_, {});
  // A cookie from a descriptor this network never issued.
  cookies::CookieDescriptor rogue;
  rogue.cookie_id = 0xbad;
  rogue.key.assign(32, 0xbb);
  rogue.service_data = "Boost";
  cookies::CookieGenerator gen(rogue, clock_, 3);
  net::Packet request;
  net::http::Request http("GET", "/", "x.example");
  const std::string text = http.serialize();
  request.payload.assign(text.begin(), text.end());
  cookies::attach(request, gen.generate(),
                  cookies::Transport::kHttpHeader);
  EXPECT_EQ(daemon.classify(request), kBestEffortBand);
  EXPECT_FALSE(daemon.throttle_active());
}

TEST(AnyLink, CookieSelectsLinkProfile) {
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  AnyLinkProxy proxy(clock, verifier);
  proxy.add_profile("emulate-2g", {"2G", 50e3, 300 * util::kMillisecond});
  proxy.add_profile("emulate-dsl", {"DSL", 1.5e6, 30 * util::kMillisecond});

  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 9;
  descriptor.key.assign(32, 0x77);
  descriptor.service_data = "emulate-2g";
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator gen(descriptor, clock, 4);

  net::Packet request;
  request.tuple.src_port = 555;
  net::http::Request http("GET", "/app", "dev.example");
  const std::string text = http.serialize();
  request.payload.assign(text.begin(), text.end());
  cookies::attach(request, gen.generate(),
                  cookies::Transport::kHttpHeader);

  const auto profile = proxy.process(request);
  ASSERT_TRUE(profile.has_value());
  EXPECT_EQ(profile->name, "2G");
  EXPECT_DOUBLE_EQ(profile->rate_bps, 50e3);

  // Plain traffic passes unshaped.
  net::Packet plain;
  plain.tuple.src_port = 556;
  EXPECT_FALSE(proxy.process(plain).has_value());
}

}  // namespace
}  // namespace nnn::boost_lane
