// QUIC-shaped encrypted transport (PR 10): FlowKey unification,
// CID alias resolution, rotation/migration survival, DPI collapse,
// and steering stability. The survival and collapse numbers asserted
// here are the tested form of the acceptance gates that
// bench/ablation_quic measures and CI's quic-smoke job enforces.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "baselines/dpi.h"
#include "baselines/oob.h"
#include "controlplane/epoch.h"
#include "controlplane/table_mirror.h"
#include "cookies/transport.h"
#include "cookies/verifier.h"
#include "dataplane/flow_table.h"
#include "dataplane/middlebox.h"
#include "dataplane/service_registry.h"
#include "dataplane/sharding.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "net/flow_key.h"
#include "net/packet.h"
#include "quic/alias_table.h"
#include "quic/workload.h"
#include "runtime/dataplane.h"
#include "util/clock.h"
#include "util/hash.h"

namespace nnn {
namespace {

using util::kMillisecond;
using util::kSecond;

net::FiveTuple quic_tuple() {
  return net::FiveTuple{net::IpAddress::v4(10, 0, 0, 1),
                        net::IpAddress::v4(203, 0, 113, 1), 40000, 443,
                        net::L4Proto::kUdp};
}

// --- FlowKey -------------------------------------------------------

// Fixed vectors: steer_key feeds shard assignment (util::steer_shard)
// and FlatTable probing, so its value is wire-adjacent state — a
// platform or refactor that changes it reassigns every flow to a new
// worker. Pin it like the mix64 vectors in test_arena.
TEST(FlowKey, SteerKeyFixedVectors) {
  const net::FlowKey tuple_key = net::FlowKey::from_tuple(quic_tuple());
  EXPECT_EQ(tuple_key.steer_key(), 0xb4e29ab30a33c264ull);
  EXPECT_EQ(tuple_key.reversed().steer_key(), 0x249c799f26b1a23eull);
  EXPECT_EQ(util::steer_shard(tuple_key.steer_key(), 8), 5u);

  // A CID is already a uniform 64-bit name: steer_key is the identity
  // (steer_shard applies its own mix64 on top).
  const net::FlowKey cid_key = net::FlowKey::from_cid(0xdeadbeefcafef00dull);
  EXPECT_EQ(cid_key.steer_key(), 0xdeadbeefcafef00dull);
}

TEST(FlowKey, KindsEqualityAndReversal) {
  const net::FlowKey tuple_key = net::FlowKey::from_tuple(quic_tuple());
  const net::FlowKey cid_key = net::FlowKey::from_cid(7);

  EXPECT_TRUE(tuple_key.is_tuple());
  EXPECT_TRUE(cid_key.is_cid());
  EXPECT_FALSE(tuple_key == cid_key);
  EXPECT_TRUE(cid_key == net::FlowKey::from_cid(7));

  // CID keys name the connection, not a direction.
  EXPECT_TRUE(cid_key.reversed() == cid_key);
  EXPECT_FALSE(tuple_key.reversed() == tuple_key);
  EXPECT_TRUE(tuple_key.reversed().reversed() == tuple_key);

  EXPECT_EQ(std::hash<net::FlowKey>{}(cid_key),
            std::hash<net::FlowKey>{}(net::FlowKey::from_cid(7)));
}

TEST(FlowKey, PacketAccessorUnifiesKeying) {
  net::Packet classic;
  classic.tuple = quic_tuple();
  EXPECT_TRUE(classic.flow_key() == net::FlowKey::from_tuple(classic.tuple));

  net::Packet encrypted = classic;
  net::QuicHeader header;
  header.dcid = 0x1234;
  encrypted.quic = header;
  EXPECT_TRUE(encrypted.flow_key() == net::FlowKey::from_cid(0x1234));

  // OOB speaks 5-tuples only: the same rule matches the cleartext
  // packet and cannot name the encrypted one at all.
  baselines::OobSwitch sw;
  sw.install({baselines::FlowDescription::exact(classic.tuple), "fast"});
  EXPECT_TRUE(sw.match(classic).has_value());
  EXPECT_FALSE(sw.match(encrypted).has_value());
}

// --- CidAliasTable -------------------------------------------------

TEST(CidAliasTable, RotationChainResolvesToCanonical) {
  quic::CidAliasTable table;
  ASSERT_TRUE(table.bind(/*canonical=*/100, /*steer=*/77));
  EXPECT_FALSE(table.bind(100, 99)) << "bind is idempotent per canonical";

  // s0 joins at the handshake; c1 rotates in via s0, c2 via c1.
  ASSERT_TRUE(table.alias(200, 100).has_value());
  ASSERT_EQ(table.alias(300, 200).value(), 100u);
  ASSERT_EQ(table.alias(400, 300).value(), 100u);

  for (const uint64_t cid : {100u, 200u, 300u, 400u}) {
    EXPECT_EQ(table.resolve(cid), 100u);
    EXPECT_EQ(table.steer_key(cid).value(), 77u);
  }
  EXPECT_EQ(table.connections(), 1u);
  EXPECT_EQ(table.cids(), 4u);

  // Unknown CIDs are their own connection; an unlinkable rotation
  // marker reports kFlow/kUnknownId and changes nothing.
  EXPECT_EQ(table.resolve(999), 999u);
  const auto unlinked = table.alias(500, 999);
  ASSERT_FALSE(unlinked.has_value());
  EXPECT_EQ(unlinked.error().domain, ErrorDomain::kFlow);
  EXPECT_EQ(unlinked.error().code, ErrorCode::kUnknownId);
  EXPECT_EQ(table.cids(), 4u);
}

TEST(CidAliasTable, EvictionDropsWholeAliasSet) {
  quic::CidAliasTable table;
  table.bind(1, 0);
  table.alias(2, 1);
  table.alias(3, 2);
  EXPECT_EQ(table.evict(3), 3u) << "evict by any CID of the connection";
  EXPECT_EQ(table.connections(), 0u);
  EXPECT_EQ(table.cids(), 0u);
  EXPECT_EQ(table.resolve(2), 2u);
  EXPECT_EQ(table.evict(1), 0u) << "double eviction is a no-op";
}

TEST(CidAliasTable, CapacityFifoSkipsReboundSlots) {
  quic::CidAliasTable table(quic::CidAliasConfig{.max_connections = 2});
  table.bind(10, 0);  // slot 0
  table.bind(20, 0);  // slot 1
  table.evict(10);    // slot 0 freed; its FIFO entry is now stale
  table.bind(30, 0);  // reuses slot 0 under a fresh generation
  table.bind(40, 0);  // over capacity: must evict the OLDEST live (20)

  EXPECT_EQ(table.connections(), 2u);
  EXPECT_EQ(table.resolve(20), 20u) << "20 should have been evicted";
  // The generation guard is what protects 30 here: slot 0's stale
  // FIFO entry (connection 10) must not take the rebound slot down.
  EXPECT_TRUE(table.steer_key(30).has_value());
  EXPECT_TRUE(table.steer_key(40).has_value());
  EXPECT_GE(table.stats().connections_evicted, 2u);
}

// --- FlowTable -----------------------------------------------------

// Differential: the legacy 5-tuple adapters and the FlowKey/Expected
// primaries must agree move for move on the same flow sequence.
TEST(FlowTable, LegacyAdaptersMatchExpectedPrimaries) {
  dataplane::FlowTable legacy;
  dataplane::FlowTable primary;
  const net::FiveTuple t = quic_tuple();
  const net::FlowKey key = net::FlowKey::from_tuple(t);

  for (uint32_t i = 0; i < 6; ++i) {
    const util::Timestamp now = i * kMillisecond;
    const dataplane::FlowEntry& via_legacy = legacy.touch(t, 100, now);
    const auto bound = primary.bind(key, 100, now);
    ASSERT_TRUE(bound.has_value());
    const dataplane::FlowEntry& via_primary = *bound.value().entry;
    EXPECT_EQ(bound.value().created, i == 0);
    EXPECT_EQ(via_legacy.packets_seen, via_primary.packets_seen);
    EXPECT_EQ(via_legacy.state, via_primary.state);
    EXPECT_EQ(via_legacy.bytes, via_primary.bytes);
  }

  legacy.map_flow(t, "Boost", 6 * kMillisecond, /*include_reverse=*/true);
  ASSERT_TRUE(primary
                  .map_flow(key, "Boost", 6 * kMillisecond,
                            /*include_reverse=*/true)
                  .has_value());

  for (const net::FiveTuple& probe : {t, t.reversed()}) {
    const dataplane::FlowEntry* found = legacy.find(probe);
    const auto looked =
        primary.lookup(net::FlowKey::from_tuple(probe));
    ASSERT_NE(found, nullptr);
    ASSERT_TRUE(looked.has_value());
    EXPECT_EQ(found->state, looked.value()->state);
    EXPECT_EQ(found->service_data, looked.value()->service_data);
  }

  const auto missing =
      primary.lookup(net::FlowKey::from_cid(0x5555));
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().domain, ErrorDomain::kFlow);
  EXPECT_EQ(legacy.find(net::FiveTuple{}), nullptr);
}

TEST(FlowTable, BindOverloadsAtMaxFlowsAfterForcedSweep) {
  dataplane::FlowTable table(dataplane::FlowTable::kDefaultSniffWindow,
                             /*idle_timeout=*/10 * kMillisecond,
                             /*max_flows=*/2);
  ASSERT_TRUE(table.bind(net::FlowKey::from_cid(1), 100, 0).has_value());
  ASSERT_TRUE(table.bind(net::FlowKey::from_cid(2), 100, 0).has_value());

  const auto refused = table.bind(net::FlowKey::from_cid(3), 100, 0);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.error().domain, ErrorDomain::kFlow);
  EXPECT_EQ(refused.error().code, ErrorCode::kOverload);
  EXPECT_EQ(table.stats().overloads, 1u);

  // Touching a RESIDENT flow at capacity must still succeed.
  EXPECT_TRUE(table.bind(net::FlowKey::from_cid(1), 100, 0).has_value());

  // Once the residents idle out, the forced sweep inside bind() makes
  // room without an explicit expire_idle() call.
  const auto admitted =
      table.bind(net::FlowKey::from_cid(3), 100, 100 * kMillisecond);
  ASSERT_TRUE(admitted.has_value());
  EXPECT_TRUE(admitted.value().created);
}

TEST(FlowTable, CidRotationKeepsOneEntry) {
  dataplane::FlowTable table;
  const auto first = table.bind(net::FlowKey::from_cid(100), 500, 0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first.value().created);

  ASSERT_EQ(table.add_alias(200, 100).value(), 100u);
  const auto rotated =
      table.bind(net::FlowKey::from_cid(200), 500, kMillisecond);
  ASSERT_TRUE(rotated.has_value());
  EXPECT_FALSE(rotated.value().created);
  EXPECT_EQ(rotated.value().entry, first.value().entry);
  EXPECT_EQ(rotated.value().entry->packets_seen, 2u);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.resolve_cid(200), 100u);
  EXPECT_EQ(table.stats().aliases_added, 1u);

  // A marker naming a CID no flow is keyed on cannot link (fail-open:
  // the fresh CID would simply start its own flow).
  const auto unlinked = table.add_alias(300, 999);
  ASSERT_FALSE(unlinked.has_value());
  EXPECT_EQ(unlinked.error().code, ErrorCode::kUnknownId);
}

TEST(FlowTable, IdleExpiryEvictsAliasSetWithTheFlow) {
  dataplane::FlowTable table(dataplane::FlowTable::kDefaultSniffWindow,
                             /*idle_timeout=*/10 * kMillisecond);
  table.bind(net::FlowKey::from_cid(100), 100, 0);
  table.add_alias(200, 100);
  table.add_alias(300, 200);
  EXPECT_EQ(table.alias_cids(), 3u);

  EXPECT_EQ(table.expire_idle(kSecond), 1u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.alias_cids(), 0u) << "dead flow leaked alias entries";
  EXPECT_EQ(table.resolve_cid(300), 300u);

  // The CID can start a brand-new flow afterwards.
  const auto reborn = table.bind(net::FlowKey::from_cid(300), 100, kSecond);
  ASSERT_TRUE(reborn.has_value());
  EXPECT_TRUE(reborn.value().created);
}

// --- workload ------------------------------------------------------

TEST(QuicTrace, SameSeedSameStream) {
  util::ManualClock clock_a;
  util::ManualClock clock_b;
  quic::QuicTraceGenerator::Config config;
  config.connections = 8;
  config.packets_per_connection = 30;
  quic::QuicTraceGenerator a(config, clock_a, nullptr, 42);
  quic::QuicTraceGenerator b(config, clock_b, nullptr, 42);

  uint32_t rotations_seen = 0;
  for (size_t i = 0; i < a.total_packets(); ++i) {
    net::Packet pa;
    net::Packet pb;
    ASSERT_EQ(a.fill_next(pa), b.fill_next(pb)) << "pick diverged at " << i;
    ASSERT_TRUE(pa.tuple == pb.tuple);
    ASSERT_TRUE(pa.is_quic());
    ASSERT_EQ(pa.quic->dcid, pb.quic->dcid);
    ASSERT_EQ(pa.quic->prev_cid, pb.quic->prev_cid);
    ASSERT_EQ(pa.payload, pb.payload);
    if (pa.quic->prev_cid) ++rotations_seen;
    clock_a.advance(50);
    clock_b.advance(50);
  }
  EXPECT_TRUE(a.done());
  EXPECT_GT(rotations_seen, 0u) << "trace never rotated a CID";
}

// --- the tentpole claim, single middlebox --------------------------

// One encrypted trace with CID rotations AND seeded NAT rebinds
// through the cookie middlebox: every post-handshake packet of a
// cookie connection must keep its band-0 mapping (the cookie was
// presented exactly once, in the handshake). The same packets through
// the DPI baseline: accuracy collapses to ~0 — the differential the
// paper's carriers could never exhibit because their payloads were
// readable.
TEST(QuicMiddlebox, CookieOnceSurvivesRotationAndMigrationWhereDpiDies) {
  util::ManualClock clock;
  cookies::CookieVerifier verifier(clock);
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock, verifier, registry);

  quic::QuicTraceGenerator::Config config;
  config.connections = 48;
  config.packets_per_connection = 80;
  config.rotate_every = 12;  // several rotations per connection
  quic::QuicTraceGenerator gen(config, clock, &verifier, 7);

  // Two migration windows, magnitude 1.0: every connection rebinds
  // once per window.
  fault::FaultPlan plan;
  plan.add({fault::FaultKind::kNatRebind, 40 * kMillisecond,
            40 * kMillisecond, 1.0});
  plan.add({fault::FaultKind::kNatRebind, 120 * kMillisecond,
            40 * kMillisecond, 1.0});
  fault::Injector injector;
  injector.arm(plan, 7);
  gen.set_fault_injector(&injector);

  baselines::DpiEngine dpi;
  for (auto& rule : quic::QuicTraceGenerator::dpi_rules()) {
    dpi.add_rule(std::move(rule));
  }

  uint64_t survived = 0, post_handshake = 0, handshakes_mapped = 0;
  uint64_t dpi_correct = 0, dpi_total = 0;
  for (size_t i = 0; i < gen.total_packets(); ++i) {
    net::Packet packet;
    const uint32_t conn = gen.fill_next(packet);
    const auto dpi_label = dpi.classify(packet);
    ++dpi_total;
    if (dpi_label && *dpi_label == gen.connection(conn).app) ++dpi_correct;

    const dataplane::Verdict verdict = middlebox.process(packet);
    clock.advance(50);
    if (!gen.connection(conn).has_cookie) continue;
    if (verdict.mapped_now) {
      ++handshakes_mapped;
    } else {
      ++post_handshake;
      if (verdict.action.has_value()) ++survived;
    }
  }

  EXPECT_EQ(handshakes_mapped, config.connections)
      << "every cookie handshake should map exactly once";
  uint32_t migrations = 0, rotations = 0;
  for (size_t c = 0; c < config.connections; ++c) {
    migrations += gen.connection(c).migrations;
    rotations += gen.connection(c).rotations;
  }
  EXPECT_GE(migrations, config.connections)
      << "the fault plan should migrate every connection at least once";
  EXPECT_GT(rotations, config.connections);

  ASSERT_GT(post_handshake, 0u);
  const double survival =
      static_cast<double>(survived) / static_cast<double>(post_handshake);
  EXPECT_GE(survival, 0.99) << survived << "/" << post_handshake;

  const double dpi_accuracy =
      static_cast<double>(dpi_correct) / static_cast<double>(dpi_total);
  EXPECT_LE(dpi_accuracy, 0.01) << "ciphertext should be unclassifiable";
}

TEST(QuicDpi, CleartextControlStillClassifies) {
  util::ManualClock clock;
  quic::QuicTraceGenerator::Config config;
  config.connections = 32;
  config.packets_per_connection = 40;
  config.cleartext = true;
  quic::QuicTraceGenerator gen(config, clock, nullptr, 7);

  baselines::DpiEngine dpi;
  for (auto& rule : quic::QuicTraceGenerator::dpi_rules()) {
    dpi.add_rule(std::move(rule));
  }

  uint64_t correct = 0, total = 0;
  for (size_t i = 0; i < gen.total_packets(); ++i) {
    net::Packet packet;
    const uint32_t conn = gen.fill_next(packet);
    const auto label = dpi.classify(packet);
    ++total;
    if (label && *label == gen.connection(conn).app) ++correct;
  }
  // The flow cache is directional (DPI sees the SNI only client->
  // server), so the ceiling is ~half the packets — still orders of
  // magnitude above the encrypted trace's ~0.
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(total);
  EXPECT_GE(accuracy, 0.45);
}

// --- steering ------------------------------------------------------

// Descriptor affinity must keep every packet of a connection on one
// shard across CID rotations and NAT rebinds (the use-once check is
// only locally verifiable if the descriptor's cookies stay put). The
// naive flow-hash balancer is the control: rotation re-rolls its hash,
// so connections visibly smear across shards.
TEST(QuicSharding, AffinitySurvivesMigrationFlowHashDoesNot) {
  constexpr size_t kShards = 8;
  auto run = [&](dataplane::DispatchPolicy policy) {
    util::ManualClock clock;
    dataplane::ServiceRegistry registry;
    registry.bind("Boost", dataplane::PriorityAction{0});
    dataplane::ShardedDataplane plane(clock, registry, kShards, policy);

    quic::QuicTraceGenerator::Config config;
    config.connections = 32;
    config.packets_per_connection = 60;
    config.rotate_every = 10;
    cookies::CookieVerifier staging(clock);
    quic::QuicTraceGenerator gen(config, clock, &staging, 11);
    for (const auto& d : gen.descriptors()) plane.add_descriptor(d);

    fault::FaultPlan plan;
    plan.add({fault::FaultKind::kNatRebind, 20 * kMillisecond,
              100 * kMillisecond, 1.0});
    fault::Injector injector;
    injector.arm(plan, 11);
    gen.set_fault_injector(&injector);

    std::vector<std::set<size_t>> shards_touched(config.connections);
    for (size_t i = 0; i < gen.total_packets(); ++i) {
      net::Packet packet;
      const uint32_t conn = gen.fill_next(packet);
      plane.process(packet);
      // After process() the balancer has learned this packet's CIDs;
      // shard_for is then exactly where process() sent it.
      shards_touched[conn].insert(plane.shard_for(packet));
      clock.advance(50);
    }

    size_t migrated = 0, stable = 0;
    for (size_t c = 0; c < config.connections; ++c) {
      if (gen.connection(c).migrations > 0) ++migrated;
      if (shards_touched[c].size() == 1) ++stable;
    }
    EXPECT_GT(migrated, 0u);
    return stable;
  };

  EXPECT_EQ(run(dataplane::DispatchPolicy::kDescriptorAffinity), 32u)
      << "affinity lost a connection across rotation/migration";
  EXPECT_LT(run(dataplane::DispatchPolicy::kFlowHash), 32u)
      << "flow hash should smear rotating connections across shards";
}

// --- runtime: migration during epoch swap (TSan target) ------------

// The full threaded path under churn: a producer ingests the
// encrypted trace (rotations + seeded migrations) through the
// Dataplane facade while a control thread swaps descriptor tables as
// fast as it can. Asserts the shed ledger balances, the arena leaks
// nothing, and band-0 survival holds — while TSan watches the epoch
// pin/publish protocol against the new CID steering state.
TEST(QuicRuntime, MigrationDuringEpochSwapKeepsLedgerAndMapping) {
  // Workers read the clock concurrently, so the plane's ManualClock
  // stays frozen at 0; the trace runs on its own producer-side clock.
  // The whole trace spans ~100 ms of virtual time, well inside the NCT
  // window, so cookies minted on the trace clock verify at now() == 0.
  util::ManualClock plane_clock;
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});

  runtime::Dataplane::Config config;
  config.pool.workers = 3;
  config.pool.verdict_capacity = 1 << 15;
  runtime::Dataplane plane(plane_clock, registry, config);

  quic::QuicTraceGenerator::Config wl;
  wl.connections = 32;
  wl.packets_per_connection = 60;
  wl.rotate_every = 10;
  util::ManualClock trace_clock;
  cookies::CookieVerifier staging(trace_clock);
  quic::QuicTraceGenerator gen(wl, trace_clock, &staging, 23);

  fault::FaultPlan plan;
  plan.add({fault::FaultKind::kNatRebind, 10 * kMillisecond,
            100 * kMillisecond, 1.0});
  fault::Injector injector;
  injector.arm(plan, 23);
  gen.set_fault_injector(&injector);

  controlplane::TablePublisher tables;
  plane.bind_table_publisher(tables);
  auto build = [&](uint64_t version) {
    controlplane::TableMirror mirror;
    mirror.reset(version, gen.descriptors(), {});
    return mirror.build();
  };
  tables.publish(build(1));
  plane.start();

  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    uint64_t version = 2;
    while (!stop_swapping.load(std::memory_order_acquire)) {
      tables.publish(build(version++));
      tables.try_reclaim();
    }
  });

  const size_t total = gen.total_packets();
  for (size_t i = 0; i < total; ++i) {
    runtime::PacketHandle h = plane.make_packet();
    while (!h) {
      std::this_thread::yield();
      h = plane.make_packet();
    }
    const uint32_t conn = gen.fill_next(*h);
    (void)conn;
    trace_clock.advance(50);
    plane.ingest_blocking(std::move(h));
  }
  plane.drain();
  stop_swapping.store(true, std::memory_order_release);
  swapper.join();
  plane.stop();
  tables.try_reclaim();

  EXPECT_EQ(tables.retired_count(), 0u);
  EXPECT_GT(tables.epoch(), 2u) << "swapper never actually swapped";
  EXPECT_EQ(plane.arena().outstanding(), 0u) << "arena leaked slots";

  const runtime::WorkerSnapshot totals = plane.snapshot().totals();
  EXPECT_EQ(totals.processed + totals.shed, total) << "ledger imbalance";
  EXPECT_EQ(totals.shed, 0u) << "ingest_blocking should not shed";

  // Survival from the verdict stream: per connection, every packet
  // after the mapping one keeps band-0.
  std::vector<runtime::VerdictRecord> verdicts;
  plane.drain_verdicts(verdicts);
  ASSERT_EQ(verdicts.size(), total);
  uint64_t survived = 0, post_handshake = 0;
  for (const auto& v : verdicts) {
    if (v.mapped_now) continue;
    ++post_handshake;
    if (v.has_action) ++survived;
  }
  ASSERT_GT(post_handshake, 0u);
  EXPECT_GE(static_cast<double>(survived) /
                static_cast<double>(post_handshake),
            0.99);
}

}  // namespace
}  // namespace nnn
