// HTTP/1.1 codec.
#include <gtest/gtest.h>

#include "net/http.h"

namespace nnn::net::http {
namespace {

TEST(HttpRequest, SerializeBasicGet) {
  Request r("GET", "/index.html", "cnn.com");
  const std::string text = r.serialize();
  EXPECT_EQ(text,
            "GET /index.html HTTP/1.1\r\nHost: cnn.com\r\n\r\n");
}

TEST(HttpRequest, ParseRoundTrip) {
  Request r("POST", "/api", "api.example.com");
  r.add_header("X-Custom", "value with spaces");
  r.set_body("{\"k\":1}");
  const auto parsed = Request::parse(r.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method(), "POST");
  EXPECT_EQ(parsed->target(), "/api");
  EXPECT_EQ(parsed->host(), "api.example.com");
  EXPECT_EQ(parsed->header("x-custom").value(), "value with spaces");
  EXPECT_EQ(parsed->body(), "{\"k\":1}");
}

TEST(HttpRequest, HeaderLookupIsCaseInsensitive) {
  Request r("GET", "/", "example.com");
  r.add_header("X-Network-Cookie", "abc");
  EXPECT_EQ(r.header("x-network-cookie").value(), "abc");
  EXPECT_EQ(r.header("X-NETWORK-COOKIE").value(), "abc");
  EXPECT_FALSE(r.header("missing").has_value());
}

TEST(HttpRequest, RemoveHeaderRemovesAllOccurrences) {
  Request r("GET", "/", "example.com");
  r.add_header("A", "1");
  r.add_header("a", "2");
  EXPECT_EQ(r.remove_header("A"), 2u);
  EXPECT_FALSE(r.header("a").has_value());
}

TEST(HttpRequest, ParseRejectsMalformed) {
  EXPECT_FALSE(Request::parse("").has_value());
  EXPECT_FALSE(Request::parse("GET /\r\n\r\n").has_value());  // no version
  EXPECT_FALSE(Request::parse("GET / HTTP/1.1").has_value()); // no CRLF end
  EXPECT_FALSE(
      Request::parse("GET / HTTP/1.1\r\nBadHeader\r\n\r\n").has_value());
  EXPECT_FALSE(
      Request::parse("GET / HTTP/1.1\r\n: novalue\r\n\r\n").has_value());
}

TEST(HttpRequest, ContentLengthHonored) {
  const std::string text =
      "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbodyEXTRA";
  const auto parsed = Request::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body(), "body");
}

TEST(HttpRequest, IncompleteBodyRejected) {
  const std::string text =
      "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\nshort";
  EXPECT_FALSE(Request::parse(text).has_value());
}

TEST(HttpRequest, BadContentLengthRejected) {
  const std::string text =
      "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: abc\r\n\r\n";
  EXPECT_FALSE(Request::parse(text).has_value());
}

TEST(HttpRequest, HeaderValuesAreTrimmed) {
  const auto parsed =
      Request::parse("GET / HTTP/1.1\r\nHost:   spaced.example  \r\n\r\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->host(), "spaced.example");
}

TEST(HttpResponse, SerializeAndParse) {
  Response resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.add_header("Server", "nnn");
  resp.body = "gone";
  const auto parsed = Response::parse(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->reason, "Not Found");
  EXPECT_EQ(parsed->header("server").value(), "nnn");
  EXPECT_EQ(parsed->body, "gone");
}

TEST(HttpResponse, ParseRejectsNonHttp) {
  EXPECT_FALSE(Response::parse("GET / HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(Response::parse("HTTP/1.1 abc OK\r\n\r\n").has_value());
}

// --- Stream-prefix parsing for TCP connections (PR 6) ---------------

using ParseStatus = Request::ParseStatus;

TEST(HttpPrefix, CompleteRequestReportsConsumedBytes) {
  const std::string one =
      "POST /api HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
  // A second pipelined request rides behind the first: consumed must
  // point exactly at its first byte.
  const std::string two = one + "GET / HTTP/1.1\r\nHost: y\r\n\r\n";
  const auto first = Request::parse_prefix(two);
  ASSERT_EQ(first.status, ParseStatus::kComplete);
  EXPECT_EQ(first.request.method(), "POST");
  EXPECT_EQ(first.request.body(), "body");
  EXPECT_EQ(first.consumed, one.size());
  const auto second =
      Request::parse_prefix(std::string_view(two).substr(first.consumed));
  ASSERT_EQ(second.status, ParseStatus::kComplete);
  EXPECT_EQ(second.request.method(), "GET");
  EXPECT_EQ(second.request.host(), "y");
}

TEST(HttpPrefix, EveryPrefixOfAValidRequestIsIncompleteOrComplete) {
  // The split-read contract: no prefix of a valid request may be
  // rejected as kBad — a TCP read boundary can land anywhere.
  const std::string full =
      "POST /acquire HTTP/1.1\r\nHost: svc\r\nX-Network-Cookie: abc\r\n"
      "Content-Length: 7\r\n\r\npayload";
  for (size_t len = 0; len < full.size(); ++len) {
    const auto p = Request::parse_prefix(std::string_view(full).substr(0, len));
    EXPECT_EQ(p.status, ParseStatus::kIncomplete) << "prefix len " << len;
  }
  const auto whole = Request::parse_prefix(full);
  ASSERT_EQ(whole.status, ParseStatus::kComplete);
  EXPECT_EQ(whole.request.body(), "payload");
  EXPECT_EQ(whole.consumed, full.size());
}

TEST(HttpPrefix, NoContentLengthMeansEmptyBody) {
  // Unlike parse() (a complete datagram: rest of text = body), the
  // stream rule is explicit framing only — a request without
  // Content-Length ends at the blank line.
  const std::string get = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  const auto p = Request::parse_prefix(get + "GET /next");
  ASSERT_EQ(p.status, ParseStatus::kComplete);
  EXPECT_TRUE(p.request.body().empty());
  EXPECT_EQ(p.consumed, get.size());
}

TEST(HttpPrefix, HopelessPrefixesAreBadNotIncomplete) {
  // A malformed request line can never become valid with more bytes;
  // the connection should be closed, not buffered forever.
  EXPECT_EQ(Request::parse_prefix("NONSENSE\r\nHost: x\r\n\r\n").status,
            ParseStatus::kBad);
  EXPECT_EQ(Request::parse_prefix("GET /\r\n\r\n").status,  // no version
            ParseStatus::kBad);
  EXPECT_EQ(
      Request::parse_prefix(
          "POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n").status,
      ParseStatus::kBad);
  EXPECT_EQ(
      Request::parse_prefix("GET / HTTP/1.1\r\nBadHeader\r\n\r\n").status,
      ParseStatus::kBad);
}

TEST(HttpPrefix, UnterminatedHeadersAreCappedNotBufferedForever) {
  // A peer streaming headers without a blank line must be cut off at
  // kMaxHeaderBytes, not allowed to grow the connection buffer.
  std::string runaway = "GET / HTTP/1.1\r\n";
  while (runaway.size() <= Request::kMaxHeaderBytes) {
    runaway += "X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  EXPECT_EQ(Request::parse_prefix(runaway).status, ParseStatus::kBad);
  // Under the cap the same bytes are merely incomplete.
  EXPECT_EQ(Request::parse_prefix(runaway.substr(0, 1024)).status,
            ParseStatus::kIncomplete);
}

TEST(HttpResponse, SerializeAlwaysEmitsContentLength) {
  // Keep-alive framing: without Content-Length a client can only find
  // the response boundary at connection close, so every response —
  // including an empty-body one — must declare its length.
  Response empty;
  EXPECT_NE(empty.serialize().find("Content-Length: 0\r\n"),
            std::string::npos);
  Response sized;
  sized.body = "12345";
  const std::string text = sized.serialize();
  EXPECT_NE(text.find("Content-Length: 5\r\n"), std::string::npos);
  const auto parsed = Response::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body, "12345");
}

}  // namespace
}  // namespace nnn::net::http
