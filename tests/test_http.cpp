// HTTP/1.1 codec.
#include <gtest/gtest.h>

#include "net/http.h"

namespace nnn::net::http {
namespace {

TEST(HttpRequest, SerializeBasicGet) {
  Request r("GET", "/index.html", "cnn.com");
  const std::string text = r.serialize();
  EXPECT_EQ(text,
            "GET /index.html HTTP/1.1\r\nHost: cnn.com\r\n\r\n");
}

TEST(HttpRequest, ParseRoundTrip) {
  Request r("POST", "/api", "api.example.com");
  r.add_header("X-Custom", "value with spaces");
  r.set_body("{\"k\":1}");
  const auto parsed = Request::parse(r.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method(), "POST");
  EXPECT_EQ(parsed->target(), "/api");
  EXPECT_EQ(parsed->host(), "api.example.com");
  EXPECT_EQ(parsed->header("x-custom").value(), "value with spaces");
  EXPECT_EQ(parsed->body(), "{\"k\":1}");
}

TEST(HttpRequest, HeaderLookupIsCaseInsensitive) {
  Request r("GET", "/", "example.com");
  r.add_header("X-Network-Cookie", "abc");
  EXPECT_EQ(r.header("x-network-cookie").value(), "abc");
  EXPECT_EQ(r.header("X-NETWORK-COOKIE").value(), "abc");
  EXPECT_FALSE(r.header("missing").has_value());
}

TEST(HttpRequest, RemoveHeaderRemovesAllOccurrences) {
  Request r("GET", "/", "example.com");
  r.add_header("A", "1");
  r.add_header("a", "2");
  EXPECT_EQ(r.remove_header("A"), 2u);
  EXPECT_FALSE(r.header("a").has_value());
}

TEST(HttpRequest, ParseRejectsMalformed) {
  EXPECT_FALSE(Request::parse("").has_value());
  EXPECT_FALSE(Request::parse("GET /\r\n\r\n").has_value());  // no version
  EXPECT_FALSE(Request::parse("GET / HTTP/1.1").has_value()); // no CRLF end
  EXPECT_FALSE(
      Request::parse("GET / HTTP/1.1\r\nBadHeader\r\n\r\n").has_value());
  EXPECT_FALSE(
      Request::parse("GET / HTTP/1.1\r\n: novalue\r\n\r\n").has_value());
}

TEST(HttpRequest, ContentLengthHonored) {
  const std::string text =
      "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbodyEXTRA";
  const auto parsed = Request::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->body(), "body");
}

TEST(HttpRequest, IncompleteBodyRejected) {
  const std::string text =
      "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 10\r\n\r\nshort";
  EXPECT_FALSE(Request::parse(text).has_value());
}

TEST(HttpRequest, BadContentLengthRejected) {
  const std::string text =
      "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: abc\r\n\r\n";
  EXPECT_FALSE(Request::parse(text).has_value());
}

TEST(HttpRequest, HeaderValuesAreTrimmed) {
  const auto parsed =
      Request::parse("GET / HTTP/1.1\r\nHost:   spaced.example  \r\n\r\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->host(), "spaced.example");
}

TEST(HttpResponse, SerializeAndParse) {
  Response resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.add_header("Server", "nnn");
  resp.body = "gone";
  const auto parsed = Response::parse(resp.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->status, 404);
  EXPECT_EQ(parsed->reason, "Not Found");
  EXPECT_EQ(parsed->header("server").value(), "nnn");
  EXPECT_EQ(parsed->body, "gone");
}

TEST(HttpResponse, ParseRejectsNonHttp) {
  EXPECT_FALSE(Response::parse("GET / HTTP/1.1\r\n\r\n").has_value());
  EXPECT_FALSE(Response::parse("HTTP/1.1 abc OK\r\n\r\n").has_value());
}

}  // namespace
}  // namespace nnn::net::http
