// Base64 (RFC 4648 vectors) and hex codecs.
#include <gtest/gtest.h>

#include "util/base64.h"
#include "util/hex.h"
#include "util/rng.h"

namespace nnn::util {
namespace {

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(to_bytes("")), "");
  EXPECT_EQ(base64_encode(to_bytes("f")), "Zg==");
  EXPECT_EQ(base64_encode(to_bytes("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(to_bytes("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(to_bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(to_bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(to_bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  EXPECT_EQ(to_string(BytesView(base64_decode("Zm9vYmFy").value())),
            "foobar");
  EXPECT_EQ(to_string(BytesView(base64_decode("Zg==").value())), "f");
  EXPECT_EQ(base64_decode("").value(), Bytes{});
}

TEST(Base64, RejectsMalformed) {
  EXPECT_FALSE(base64_decode("Zg=").has_value());    // bad length
  EXPECT_FALSE(base64_decode("Zg!=").has_value());   // bad char
  EXPECT_FALSE(base64_decode("=Zg=").has_value());   // pad first
  EXPECT_FALSE(base64_decode("Zm=v").has_value());   // data after pad
  EXPECT_FALSE(base64_decode("Zm9v\n").has_value()); // whitespace
}

TEST(Hex, EncodesLowercase) {
  const Bytes data = {0x00, 0xff, 0x1a, 0x2b};
  EXPECT_EQ(hex_encode(BytesView(data)), "00ff1a2b");
}

TEST(Hex, DecodeIsCaseInsensitive) {
  EXPECT_EQ(hex_decode("00FF1a2B").value(), (Bytes{0x00, 0xff, 0x1a, 0x2b}));
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(hex_decode("abc").has_value());  // odd length
  EXPECT_FALSE(hex_decode("zz").has_value());   // bad digit
}

class CodecRoundtrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecRoundtrip, Base64RoundtripsRandomBuffers) {
  Rng rng(GetParam());
  for (int len = 0; len < 80; ++len) {
    Bytes data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
    const auto decoded = base64_decode(base64_encode(BytesView(data)));
    ASSERT_TRUE(decoded.has_value()) << "len " << len;
    EXPECT_EQ(*decoded, data) << "len " << len;
  }
}

TEST_P(CodecRoundtrip, HexRoundtripsRandomBuffers) {
  Rng rng(GetParam());
  for (int len = 0; len < 80; ++len) {
    Bytes data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
    const auto decoded = hex_decode(hex_encode(BytesView(data)));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundtrip,
                         ::testing::Values(11, 23, 42));

}  // namespace
}  // namespace nnn::util
