// IP addresses and five-tuples.
#include <gtest/gtest.h>

#include <unordered_set>

#include "net/five_tuple.h"
#include "net/ip.h"

namespace nnn::net {
namespace {

TEST(IpAddress, V4RoundTrip) {
  const auto a = IpAddress::parse("192.168.1.10");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_v4());
  EXPECT_EQ(a->to_string(), "192.168.1.10");
  EXPECT_EQ(a->v4_value(), 0xc0a8010au);
}

TEST(IpAddress, V4ConstructorsAgree) {
  EXPECT_EQ(IpAddress::v4(10, 0, 0, 1), IpAddress::v4(0x0a000001u));
  EXPECT_EQ(IpAddress::v4(10, 0, 0, 1).to_string(), "10.0.0.1");
}

TEST(IpAddress, V4ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(IpAddress::parse("256.1.1.1").has_value());
  EXPECT_FALSE(IpAddress::parse("1.2.3.x").has_value());
  EXPECT_FALSE(IpAddress::parse("1..2.3").has_value());
}

TEST(IpAddress, V6ParseAndFormat) {
  const auto a = IpAddress::parse("2001:db8::1");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->is_v6());
  EXPECT_EQ(a->to_string(), "2001:db8::1");

  const auto full =
      IpAddress::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(*full, *a);

  EXPECT_EQ(IpAddress::parse("::")->to_string(), "::");
  EXPECT_EQ(IpAddress::parse("::1")->to_string(), "::1");
  EXPECT_EQ(IpAddress::parse("fe80::")->to_string(), "fe80::");
}

TEST(IpAddress, V6ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddress::parse("2001:db8").has_value());
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9").has_value());
  EXPECT_FALSE(IpAddress::parse("::1::2").has_value());
  EXPECT_FALSE(IpAddress::parse("12345::").has_value());
  EXPECT_FALSE(IpAddress::parse("g::1").has_value());
}

TEST(IpAddress, PrivateRanges) {
  EXPECT_TRUE(IpAddress::parse("10.1.2.3")->is_private());
  EXPECT_TRUE(IpAddress::parse("192.168.0.1")->is_private());
  EXPECT_TRUE(IpAddress::parse("172.16.0.1")->is_private());
  EXPECT_TRUE(IpAddress::parse("172.31.255.255")->is_private());
  EXPECT_FALSE(IpAddress::parse("172.32.0.1")->is_private());
  EXPECT_FALSE(IpAddress::parse("8.8.8.8")->is_private());
  EXPECT_TRUE(IpAddress::parse("fc00::1")->is_private());
  EXPECT_TRUE(IpAddress::parse("fd12::1")->is_private());
  EXPECT_FALSE(IpAddress::parse("2001:db8::1")->is_private());
}

TEST(IpAddress, HashDistinguishesFamilies) {
  // v4 0.0.0.1 and v6 ::1 share byte patterns but differ.
  const auto v4 = IpAddress::v4(0, 0, 0, 1);
  const auto v6 = IpAddress::parse("::1").value();
  EXPECT_NE(v4, v6);
  std::unordered_set<IpAddress> set{v4, v6};
  EXPECT_EQ(set.size(), 2u);
}

FiveTuple make_tuple() {
  FiveTuple t;
  t.src_ip = IpAddress::v4(192, 168, 1, 10);
  t.dst_ip = IpAddress::v4(151, 101, 0, 10);
  t.src_port = 40000;
  t.dst_port = 443;
  t.proto = L4Proto::kTcp;
  return t;
}

TEST(FiveTuple, ReversedSwapsEndpoints) {
  const FiveTuple t = make_tuple();
  const FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.reversed(), t);
}

TEST(FiveTuple, BidiKeyIsDirectionless) {
  const FiveTuple t = make_tuple();
  EXPECT_EQ(BidiFlowKey(t), BidiFlowKey(t.reversed()));
  std::unordered_set<BidiFlowKey> set;
  set.insert(BidiFlowKey(t));
  set.insert(BidiFlowKey(t.reversed()));
  EXPECT_EQ(set.size(), 1u);
}

TEST(FiveTuple, HashAndEquality) {
  std::unordered_set<FiveTuple> set;
  FiveTuple t = make_tuple();
  set.insert(t);
  set.insert(t.reversed());
  t.src_port = 40001;
  set.insert(t);
  EXPECT_EQ(set.size(), 3u);
}

TEST(FiveTuple, ToStringIsReadable) {
  EXPECT_EQ(make_tuple().to_string(),
            "tcp 192.168.1.10:40000 -> 151.101.0.10:443");
}

}  // namespace
}  // namespace nnn::net
