// Control plane: descriptor log versioning, snapshot/delta sync,
// epoch-swapped table publication, and revocation propagation into a
// running worker pool. The VerifyDuringSwap test is a TSan CI target.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "controlplane/descriptor_log.h"
#include "controlplane/epoch.h"
#include "controlplane/local_subscriber.h"
#include "controlplane/messages.h"
#include "controlplane/sync_client.h"
#include "controlplane/sync_server.h"
#include "controlplane/table_mirror.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "cookies/verifier.h"
#include "dataplane/service_registry.h"
#include "net/packet.h"
#include "runtime/worker_pool.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "util/clock.h"

namespace nnn::controlplane {
namespace {

using util::kMillisecond;
using util::kSecond;

cookies::CookieDescriptor make_descriptor(cookies::CookieId id) {
  cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(0x40 + id));
  d.service_data = "Boost";
  return d;
}

// --- DescriptorLog -------------------------------------------------

TEST(DescriptorLog, VersionsAreMonotonicAcrossOps) {
  DescriptorLog log;
  EXPECT_EQ(log.version(), 0u);
  EXPECT_EQ(log.append_add(make_descriptor(1)), 1u);
  EXPECT_EQ(log.append_add(make_descriptor(2)), 2u);
  EXPECT_EQ(log.append_revoke(1), 3u);
  EXPECT_EQ(log.append_remove(2), 4u);
  EXPECT_EQ(log.version(), 4u);
  EXPECT_EQ(log.live_count(), 0u);  // 1 revoked, 2 removed
}

TEST(DescriptorLog, SnapshotReflectsLiveAndTombstones) {
  DescriptorLog log;
  log.append_add(make_descriptor(1));
  log.append_add(make_descriptor(2));
  log.append_revoke(1);
  const Snapshot snap = log.snapshot();
  EXPECT_EQ(snap.version, 3u);
  ASSERT_EQ(snap.live.size(), 1u);
  EXPECT_EQ(snap.live[0].cookie_id, 2u);
  ASSERT_EQ(snap.revoked.size(), 1u);
  EXPECT_EQ(snap.revoked[0], 1u);
  // Re-granting a revoked id clears the tombstone.
  log.append_add(make_descriptor(1));
  EXPECT_TRUE(log.snapshot().revoked.empty());
  EXPECT_EQ(log.live_count(), 2u);
}

TEST(DescriptorLog, DeltaSinceAndCompaction) {
  DescriptorLog log;
  for (cookies::CookieId id = 1; id <= 6; ++id) {
    log.append_add(make_descriptor(id));
  }
  const auto all = log.delta_since(0);
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->size(), 6u);
  EXPECT_EQ(all->front().version, 1u);
  EXPECT_EQ(all->back().version, 6u);
  // An in-range `from` at the head yields an empty delta.
  EXPECT_TRUE(log.delta_since(6)->empty());
  // The future is never servable.
  EXPECT_FALSE(log.delta_since(7).has_value());

  log.compact(/*keep_updates=*/2);
  EXPECT_EQ(log.retained_updates(), 2u);
  EXPECT_FALSE(log.delta_since(3).has_value());  // compacted away
  const auto tail = log.delta_since(4);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(tail->size(), 2u);
  EXPECT_EQ(tail->front().version, 5u);
}

TEST(DescriptorLog, ExpireDueAppendsRemovals) {
  DescriptorLog log;
  auto ephemeral = make_descriptor(1);
  ephemeral.attributes.expires_at = 100 * kSecond;
  log.append_add(ephemeral);
  log.append_add(make_descriptor(2));  // no expiry

  EXPECT_EQ(log.expire_due(50 * kSecond), 0u);
  EXPECT_EQ(log.expire_due(200 * kSecond), 1u);
  EXPECT_EQ(log.live_count(), 1u);
  const auto delta = log.delta_since(2);
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->size(), 1u);
  EXPECT_EQ(delta->front().op, UpdateOp::kRemove);
  EXPECT_EQ(delta->front().id, 1u);
  // Idempotent: nothing left to expire.
  EXPECT_EQ(log.expire_due(300 * kSecond), 0u);
}

TEST(DescriptorLog, ObserversSeeUpdatesUntilUnsubscribed) {
  DescriptorLog log;
  std::vector<Update> seen;
  const uint64_t token =
      log.subscribe([&seen](const Update& u) { seen.push_back(u); });
  log.append_add(make_descriptor(1));
  log.append_revoke(1);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].op, UpdateOp::kAdd);
  EXPECT_EQ(seen[1].op, UpdateOp::kRevoke);
  EXPECT_EQ(seen[1].version, 2u);
  log.unsubscribe(token);
  log.append_remove(1);
  EXPECT_EQ(seen.size(), 2u);
}

// --- TableMirror ---------------------------------------------------

TEST(TableMirror, ResetApplyAndBuild) {
  DescriptorLog log;
  log.append_add(make_descriptor(1));
  log.append_add(make_descriptor(2));
  log.append_revoke(2);

  TableMirror mirror;
  const Snapshot snap = log.snapshot();
  mirror.reset(snap.version, snap.live, snap.revoked);
  EXPECT_EQ(mirror.version(), 3u);
  EXPECT_EQ(mirror.size(), 2u);  // live + tombstone

  log.append_add(make_descriptor(3));
  log.append_revoke(1);
  const auto delta = log.delta_since(3);
  for (const Update& u : *delta) {
    EXPECT_TRUE(mirror.apply(u));
  }
  EXPECT_EQ(mirror.version(), 5u);

  const auto table = mirror.build();
  EXPECT_EQ(table->version(), 5u);
  ASSERT_NE(table->find(1), nullptr);
  EXPECT_TRUE(table->find(1)->revoked);
  ASSERT_NE(table->find(2), nullptr);
  EXPECT_TRUE(table->find(2)->revoked);
  ASSERT_NE(table->find(3), nullptr);
  EXPECT_FALSE(table->find(3)->revoked);
}

TEST(TableMirror, RejectsOutOfOrderUpdates) {
  TableMirror mirror;
  Update first;
  first.version = 1;
  first.op = UpdateOp::kAdd;
  first.id = 1;
  first.descriptor = make_descriptor(1);
  ASSERT_TRUE(mirror.apply(first));
  Update gap = first;
  gap.version = 3;  // skips 2
  gap.id = 2;
  gap.descriptor = make_descriptor(2);
  EXPECT_FALSE(mirror.apply(gap));
  EXPECT_EQ(mirror.version(), 1u);
  Update dup = first;  // duplicate of an applied version
  EXPECT_FALSE(mirror.apply(dup));
}

// --- TablePublisher ------------------------------------------------

std::unique_ptr<cookies::DescriptorTable> table_at(uint64_t version) {
  TableMirror mirror;
  std::vector<cookies::CookieDescriptor> live = {make_descriptor(1)};
  mirror.reset(version, std::move(live), {});
  return mirror.build();
}

TEST(TablePublisher, PinnedTableSurvivesSwapUntilQuiescence) {
  TablePublisher publisher;
  TablePublisher::Reader reader = publisher.register_reader();
  EXPECT_TRUE(reader.attached());
  EXPECT_EQ(reader.acquire(), nullptr);  // nothing published yet

  publisher.publish(table_at(1));
  const cookies::DescriptorTable* pinned = reader.acquire();
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->version(), 1u);
  EXPECT_EQ(pinned->epoch(), 1u);

  // Swap while the reader still announces the old table: the old table
  // must be retired, not freed (the reader keeps using it).
  publisher.publish(table_at(2));
  EXPECT_EQ(publisher.retired_count(), 1u);
  EXPECT_EQ(pinned->version(), 1u);  // still readable
  EXPECT_EQ(publisher.try_reclaim(), 0u);  // still pinned

  // Quiescent point: re-acquire announces the new table...
  const cookies::DescriptorTable* fresh = reader.acquire();
  EXPECT_EQ(fresh->version(), 2u);
  EXPECT_EQ(publisher.try_reclaim(), 1u);
  EXPECT_EQ(publisher.retired_count(), 0u);

  // ...and park() releases the pin entirely.
  publisher.publish(table_at(3));
  reader.acquire();
  publisher.publish(table_at(4));
  reader.park();
  publisher.try_reclaim();
  EXPECT_EQ(publisher.retired_count(), 0u);
  EXPECT_EQ(publisher.epoch(), 4u);
}

TEST(TablePublisher, DetachedReaderIsInert) {
  TablePublisher::Reader reader;
  EXPECT_FALSE(reader.attached());
  EXPECT_EQ(reader.acquire(), nullptr);
  reader.park();  // no-op, must not crash
}

// --- SyncServer ----------------------------------------------------

template <typename T>
const T* expect_response(const std::optional<util::Bytes>& bytes) {
  if (!bytes.has_value()) return nullptr;
  static std::optional<Message> decoded;
  decoded = decode(util::BytesView(*bytes));
  if (!decoded.has_value()) return nullptr;
  return std::get_if<T>(&*decoded);
}

TEST(SyncServer, ServesSnapshotDeltaHeartbeat) {
  DescriptorLog log;
  SyncServer server(log);
  log.append_add(make_descriptor(1));
  log.append_add(make_descriptor(2));

  // Fresh client: full snapshot.
  const auto* snap =
      expect_response<SnapshotMessage>(server.handle(
          util::BytesView(encode(SyncRequest{7, 0}))));
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 2u);
  EXPECT_EQ(snap->live.size(), 2u);

  // Small servable gap: delta.
  log.append_revoke(1);
  const auto* delta =
      expect_response<DeltaMessage>(server.handle(
          util::BytesView(encode(SyncRequest{7, 2}))));
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->from_version, 2u);
  EXPECT_EQ(delta->to_version, 3u);
  ASSERT_EQ(delta->updates.size(), 1u);
  EXPECT_EQ(delta->updates[0].op, UpdateOp::kRevoke);

  // Caught up: heartbeat.
  const auto* heartbeat =
      expect_response<HeartbeatMessage>(server.handle(
          util::BytesView(encode(SyncRequest{7, 3}))));
  ASSERT_NE(heartbeat, nullptr);
  EXPECT_EQ(heartbeat->version, 3u);

  EXPECT_EQ(server.min_client_version(), 3u);
}

TEST(SyncServer, FallsBackToSnapshotPastCompactionOrLargeGaps) {
  DescriptorLog log;
  for (cookies::CookieId id = 1; id <= 8; ++id) {
    log.append_add(make_descriptor(id));
  }
  log.compact(2);

  SyncServer server(log);
  // Gap starts before the retained tail: snapshot.
  EXPECT_NE(expect_response<SnapshotMessage>(server.handle(
                util::BytesView(encode(SyncRequest{1, 3})))),
            nullptr);
  // Servable from the tail: delta.
  EXPECT_NE(expect_response<DeltaMessage>(server.handle(
                util::BytesView(encode(SyncRequest{1, 6})))),
            nullptr);

  // A gap larger than max_delta_updates is shipped as a snapshot.
  SyncServer::Config tight;
  tight.max_delta_updates = 1;
  SyncServer small(log, tight);
  EXPECT_NE(expect_response<SnapshotMessage>(small.handle(
                util::BytesView(encode(SyncRequest{2, 6})))),
            nullptr);
}

TEST(SyncServer, DropsNonRequestDatagrams) {
  DescriptorLog log;
  SyncServer server(log);
  EXPECT_FALSE(server.handle(util::BytesView(
                                 encode(HeartbeatMessage{3})))
                   .has_value());
  const util::Bytes garbage = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_FALSE(server.handle(util::BytesView(garbage)).has_value());
}

// --- SyncClient over a loopback transport --------------------------

/// Loopback harness: the client's requests go straight to a SyncServer
/// unless the link is wedged; responses can be captured for replay.
struct Loopback {
  util::ManualClock clock{1000 * kSecond};
  DescriptorLog log;
  SyncServer server{log};
  TablePublisher tables;
  bool link_up = true;
  std::vector<util::Bytes> responses;  // every response delivered
  std::unique_ptr<SyncClient> client;

  explicit Loopback(SyncClient::Config config = {}) {
    client = std::make_unique<SyncClient>(
        clock, tables, config, [this](util::Bytes request) {
          if (!link_up) return;
          if (auto reply = server.handle(util::BytesView(request))) {
            responses.push_back(*reply);
            client->on_datagram(util::BytesView(responses.back()));
          }
        });
  }

  /// Advance in steps, ticking like a driver loop would.
  void run_for(util::Timestamp duration,
               util::Timestamp step = 50 * kMillisecond) {
    const util::Timestamp until = clock.now() + duration;
    while (clock.now() < until) {
      clock.advance(step);
      client->tick();
    }
  }
};

TEST(SyncClient, BootstrapsViaSnapshotThenDeltas) {
  Loopback lo;
  lo.log.append_add(make_descriptor(1));
  lo.client->start();
  EXPECT_EQ(lo.client->applied_version(), 1u);
  ASSERT_NE(lo.tables.peek(), nullptr);
  EXPECT_EQ(lo.tables.peek()->version(), 1u);

  // A revocation flows through as a delta on the next poll.
  lo.log.append_revoke(1);
  lo.run_for(kSecond);
  EXPECT_EQ(lo.client->applied_version(), 2u);
  ASSERT_NE(lo.tables.peek()->find(1), nullptr);
  EXPECT_TRUE(lo.tables.peek()->find(1)->revoked);

  // Steady state: heartbeats keep the version pinned and fresh.
  const uint64_t epoch_before = lo.tables.epoch();
  lo.run_for(kSecond);
  EXPECT_EQ(lo.client->applied_version(), 2u);
  EXPECT_EQ(lo.tables.epoch(), epoch_before);  // no spurious republish
  EXPECT_FALSE(lo.client->stale());
  EXPECT_EQ(lo.client->retries(), 0u);
}

TEST(SyncClient, RetriesWithBackoffAndGoesStalePastGrace) {
  SyncClient::Config config;
  config.stale_grace = 2 * kSecond;
  Loopback lo(config);
  lo.log.append_add(make_descriptor(1));
  lo.client->start();
  EXPECT_EQ(lo.client->applied_version(), 1u);

  // Wedge the link: requests vanish, timeouts accumulate as retries,
  // and the wakeup horizon stretches (exponential backoff).
  lo.link_up = false;
  lo.log.append_revoke(1);
  lo.run_for(500 * kMillisecond);
  EXPECT_GE(lo.client->retries(), 1u);
  EXPECT_FALSE(lo.client->stale());  // within grace

  const uint64_t retries_after_1s = lo.client->retries();
  lo.run_for(4 * kSecond);
  EXPECT_TRUE(lo.client->stale());
  // Backoff: nowhere near one retry per timeout interval.
  EXPECT_LT(lo.client->retries() - retries_after_1s, 10u);
  // Stale-while-revalidate: the last good table still enforces.
  ASSERT_NE(lo.tables.peek(), nullptr);
  EXPECT_EQ(lo.tables.peek()->version(), 1u);
  EXPECT_FALSE(lo.tables.peek()->find(1)->revoked);

  // Recovery: link back, next poll catches up, staleness clears. The
  // window must outlast a full capped backoff (5 s, +20% jitter).
  lo.link_up = true;
  lo.run_for(12 * kSecond);
  EXPECT_EQ(lo.client->applied_version(), 2u);
  EXPECT_FALSE(lo.client->stale());
  EXPECT_TRUE(lo.tables.peek()->find(1)->revoked);
}

TEST(SyncClient, ReplayedOldSnapshotDoesNotRollBack) {
  Loopback lo;
  lo.log.append_add(make_descriptor(1));
  lo.client->start();  // snapshot at version 1 (captured)
  ASSERT_FALSE(lo.responses.empty());
  const util::Bytes old_snapshot = lo.responses.front();

  lo.log.append_revoke(1);
  lo.run_for(kSecond);
  EXPECT_EQ(lo.client->applied_version(), 2u);

  // A duplicated/reordered datagram from before the revoke arrives
  // late: it must not resurrect the revoked descriptor.
  lo.client->on_datagram(util::BytesView(old_snapshot));
  EXPECT_EQ(lo.client->applied_version(), 2u);
  EXPECT_TRUE(lo.tables.peek()->find(1)->revoked);
}

// --- Graceful degradation (PR 5): breaker, backoff decay, restore --

TEST(SyncClient, BreakerOpensThenProbesAndClosesAfterSuccessStreak) {
  SyncClient::Config config;
  config.breaker_failure_threshold = 3;
  config.breaker_success_threshold = 2;
  Loopback lo(config);
  lo.log.append_add(make_descriptor(1));
  lo.client->start();
  EXPECT_EQ(lo.client->breaker_state(), BreakerState::kClosed);

  // Dead server: failures accumulate past the threshold and the
  // breaker trips. From then on it is either open (waiting out the
  // backoff) or half-open (one probe in flight) — never closed.
  lo.link_up = false;
  lo.log.append_revoke(1);
  lo.run_for(10 * kSecond);
  EXPECT_GE(lo.client->consecutive_failures(), 3u);
  EXPECT_NE(lo.client->breaker_state(), BreakerState::kClosed);
  // Stale-while-revalidate: the pre-outage table still enforces.
  ASSERT_NE(lo.tables.peek(), nullptr);
  EXPECT_EQ(lo.tables.peek()->version(), 1u);

  // Recovery: probes start succeeding; after the success streak the
  // breaker closes, the slate wipes clean, and the client catches up.
  // The window must outlast two capped backoffs (5 s each, +20%
  // jitter) — one per required success.
  lo.link_up = true;
  lo.run_for(30 * kSecond);
  EXPECT_EQ(lo.client->breaker_state(), BreakerState::kClosed);
  EXPECT_EQ(lo.client->consecutive_failures(), 0u);
  EXPECT_EQ(lo.client->applied_version(), 2u);
  EXPECT_FALSE(lo.client->stale());
}

TEST(SyncClient, FlappingLinkSingleSuccessDecaysBackoffNotResets) {
  // The regression (PR 5 satellite): one response slipping through a
  // flapping link used to reset backoff to the minimum, so the client
  // resumed hammering a server that was still down. Once the breaker
  // is engaged, a one-off success must only decay the failure level.
  SyncClient::Config config;
  config.breaker_failure_threshold = 2;
  Loopback lo(config);
  lo.log.append_add(make_descriptor(1));
  lo.client->start();

  lo.link_up = false;
  lo.run_for(8 * kSecond);
  ASSERT_GE(lo.client->consecutive_failures(), 2u);
  ASSERT_NE(lo.client->breaker_state(), BreakerState::kClosed);

  // Flap: the link is up exactly long enough for one exchange. A
  // request already in flight when the link recovers can still time
  // out first, so sample the failure level right before the tick that
  // finally gets a response (a success never shares a tick with a
  // failure: on_failure pushes next_poll into the future).
  const size_t responses_before = lo.responses.size();
  uint32_t failures_before_success = 0;
  lo.link_up = true;
  while (lo.responses.size() == responses_before) {
    failures_before_success = lo.client->consecutive_failures();
    lo.clock.advance(50 * kMillisecond);
    lo.client->tick();
  }
  lo.link_up = false;
  ASSERT_GE(failures_before_success, 2u);
  EXPECT_EQ(lo.client->consecutive_failures(), failures_before_success - 1);

  // Still backed off near the cap: over the next 5 s the client sends
  // a couple of probes, not one per 100 ms poll interval (a reset
  // would produce dozens).
  const uint64_t retries_before = lo.client->retries();
  lo.run_for(5 * kSecond);
  EXPECT_LT(lo.client->retries() - retries_before, 8u);
}

TEST(SyncClient, RestoresCheckpointWithinBudgetAndRejectsStale) {
  Loopback source;
  source.log.append_add(make_descriptor(1));
  source.log.append_add(make_descriptor(2));
  source.log.append_revoke(2);
  source.client->start();
  EXPECT_EQ(source.client->applied_version(), 3u);
  const SavedTable saved = source.client->export_table();
  EXPECT_EQ(saved.version, 3u);
  EXPECT_EQ(saved.live.size(), 1u);  // live() excludes the revoked one
  EXPECT_EQ(saved.revoked.size(), 1u);

  // Cold start within budget: the checkpoint publishes immediately, so
  // workers enforce last-known-good state before the first sync.
  {
    Loopback fresh;
    fresh.clock.set(saved.saved_at + 10 * kSecond);
    fresh.link_up = false;
    EXPECT_TRUE(fresh.client->restore(saved));
    ASSERT_NE(fresh.tables.peek(), nullptr);
    EXPECT_EQ(fresh.tables.peek()->version(), 3u);
    ASSERT_NE(fresh.tables.peek()->find(2), nullptr);
    EXPECT_TRUE(fresh.tables.peek()->find(2)->revoked);
    EXPECT_TRUE(fresh.client->running_on_restored_table());

    // The first live exchange clears the restored-table degradation.
    fresh.link_up = true;
    fresh.log.append_add(make_descriptor(1));
    fresh.log.append_add(make_descriptor(2));
    fresh.log.append_revoke(2);
    fresh.log.append_add(make_descriptor(3));
    fresh.client->start();
    EXPECT_FALSE(fresh.client->running_on_restored_table());
    EXPECT_EQ(fresh.client->applied_version(), 4u);
  }

  // A checkpoint past restore_budget is refused outright — enforcing
  // arbitrarily old revocation state is worse than none.
  {
    Loopback fresh;
    fresh.clock.set(saved.saved_at + 31 * kSecond);  // budget is 30 s
    EXPECT_FALSE(fresh.client->restore(saved));
    EXPECT_EQ(fresh.tables.peek(), nullptr);
    EXPECT_FALSE(fresh.client->running_on_restored_table());
  }
}

// --- Sync over lossy simulated links -------------------------------

TEST(ControlPlaneSim, ConvergesOverLossyReorderingLinks) {
  sim::EventLoop loop;
  DescriptorLog log;
  SyncServer server(log);
  TablePublisher tables;
  SyncClient* client_ptr = nullptr;

  sim::Link::Config impaired;
  impaired.rate_bps = 1e6;
  impaired.prop_delay = 10 * kMillisecond;
  impaired.loss_rate = 0.25;
  impaired.delay_jitter = 15 * kMillisecond;  // enough to reorder

  // Response direction (declared first: the request sink captures it).
  impaired.impairment_seed = 0xd0;
  sim::Link to_client(loop, impaired, [&](net::Packet p) {
    client_ptr->on_datagram(util::BytesView(p.payload));
  });
  impaired.impairment_seed = 0xd1;
  sim::Link to_server(loop, impaired, [&](net::Packet p) {
    if (auto reply = server.handle(util::BytesView(p.payload))) {
      net::Packet r;
      r.payload = std::move(*reply);
      to_client.send(std::move(r));
    }
  });

  SyncClient::Config config;
  config.poll_interval = 50 * kMillisecond;
  config.response_timeout = 100 * kMillisecond;
  config.backoff_base = 100 * kMillisecond;
  SyncClient client(loop.clock(), tables, config,
                    [&](util::Bytes request) {
                      net::Packet p;
                      p.payload = std::move(request);
                      to_server.send(std::move(p));
                    });
  client_ptr = &client;

  for (cookies::CookieId id = 1; id <= 5; ++id) {
    log.append_add(make_descriptor(id));
  }
  client.start();
  // Tick pump riding the event loop.
  std::function<void()> pump = [&] {
    client.tick();
    loop.after(25 * kMillisecond, pump);
  };
  pump();
  loop.run_until(loop.now() + 10 * kSecond);
  ASSERT_NE(tables.peek(), nullptr);
  EXPECT_EQ(tables.peek()->version(), 5u);

  // Mid-life churn: grants and revokes while the channel stays lossy.
  log.append_revoke(2);
  log.append_add(make_descriptor(6));
  log.append_remove(1);
  loop.run_until(loop.now() + 10 * kSecond);

  EXPECT_EQ(client.applied_version(), log.version());
  const auto* table = tables.peek();
  EXPECT_EQ(table->version(), 8u);
  EXPECT_EQ(table->find(1), nullptr);        // removed
  EXPECT_TRUE(table->find(2)->revoked);      // revoked
  EXPECT_FALSE(table->find(6)->revoked);     // granted late
  EXPECT_FALSE(client.stale());
  EXPECT_GT(to_server.dropped() + to_client.dropped(), 0u)
      << "loss impairment never fired; the test is vacuous";
}

// --- End-to-end: revocation reaches a running pool -----------------

net::Packet flow_packet(uint32_t flow_id) {
  net::Packet p;
  p.tuple.src_ip = net::IpAddress::v4(0x0a000000u | flow_id);
  p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 1);
  p.tuple.src_port = static_cast<uint16_t>(1024 + (flow_id & 0xfff));
  p.tuple.dst_port = 443;
  p.tuple.proto = net::L4Proto::kUdp;
  p.wire_size = 512;
  return p;
}

void submit_spin(runtime::WorkerPool& pool, size_t worker,
                 net::Packet&& packet) {
  // Closed loop over the arena path: wait for a slot, build the
  // packet in place, then block on the ring (no copy-in shim).
  runtime::PacketHandle handle;
  while (!(handle = pool.arena().try_alloc())) {
    std::this_thread::yield();
  }
  *handle = std::move(packet);
  pool.submit_handle_blocking(worker, std::move(handle));
}

TEST(ControlPlaneRuntime, RevocationReachesEveryWorkerThroughSync) {
  util::SystemClock clock;
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  runtime::WorkerPool::Config config;
  config.workers = 2;
  runtime::WorkerPool pool(clock, registry, config);

  DescriptorLog log;
  SyncServer server(log);
  TablePublisher tables;
  SyncClient* client_ptr = nullptr;
  util::ManualClock control_clock(clock.now());
  SyncClient client(control_clock, tables, {},
                    [&](util::Bytes request) {
                      if (auto r = server.handle(util::BytesView(request))) {
                        client_ptr->on_datagram(util::BytesView(*r));
                      }
                    });
  client_ptr = &client;
  pool.bind_table_publisher(tables);

  log.append_add(make_descriptor(1));
  client.start();
  pool.start();

  util::ManualClock mint_clock(clock.now());
  cookies::CookieGenerator gen(make_descriptor(1), mint_clock, 7);
  for (uint32_t i = 0; i < 8; ++i) {
    net::Packet p = flow_packet(i);
    cookies::attach(p, gen.generate(), cookies::Transport::kUdpHeader);
    submit_spin(pool, i % config.workers, std::move(p));
    mint_clock.advance(kMillisecond);
  }
  pool.drain();
  EXPECT_EQ(pool.total_verified(), 8u);

  // The revocation travels server -> log -> sync -> table swap; no
  // direct pool/verifier call anywhere.
  log.append_revoke(1);
  control_clock.advance(kSecond);
  client.tick();
  ASSERT_TRUE(tables.peek()->find(1)->revoked);

  for (uint32_t i = 100; i < 108; ++i) {
    net::Packet p = flow_packet(i);
    cookies::attach(p, gen.generate(), cookies::Transport::kUdpHeader);
    submit_spin(pool, i % config.workers, std::move(p));
    mint_clock.advance(kMillisecond);
  }
  pool.drain();
  pool.stop();
  EXPECT_EQ(pool.total_verified(), 8u);  // nothing after the revoke
  uint64_t revoked_seen = 0;
  for (size_t w = 0; w < config.workers; ++w) {
    const uint64_t revoked = pool.verifier(w).stats().revoked;
    EXPECT_GT(revoked, 0u) << "revocation missed worker " << w;
    revoked_seen += revoked;
  }
  EXPECT_EQ(revoked_seen, 8u);
  EXPECT_EQ(tables.epoch(), 2u);
}

/// Verify throughput continues while tables swap underneath the
/// workers — the TSan job runs this to prove the hazard/epoch protocol
/// race-free: workers acquire() per burst while the control thread
/// publishes and reclaims as fast as it can.
TEST(ControlPlaneRuntime, VerifyDuringSwapIsRaceFree) {
  util::SystemClock clock;
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  runtime::WorkerPool::Config config;
  config.workers = 2;
  config.ring_capacity = 256;
  runtime::WorkerPool pool(clock, registry, config);

  TablePublisher tables;
  pool.bind_table_publisher(tables);

  // Seed both alternating tables with the descriptor being verified so
  // every burst resolves it no matter which epoch it pins.
  auto build = [](uint64_t version) {
    TableMirror mirror;
    std::vector<cookies::CookieDescriptor> live = {make_descriptor(1),
                                                   make_descriptor(2)};
    mirror.reset(version, std::move(live), {});
    return mirror.build();
  };
  tables.publish(build(1));
  pool.start();

  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    uint64_t version = 2;
    while (!stop_swapping.load(std::memory_order_acquire)) {
      tables.publish(build(version++));
      tables.try_reclaim();
    }
  });

  util::ManualClock mint_clock(clock.now());
  cookies::CookieGenerator gen(make_descriptor(1), mint_clock, 7);
  constexpr uint32_t kPackets = 4000;
  for (uint32_t i = 0; i < kPackets; ++i) {
    net::Packet p = flow_packet(i);
    cookies::attach(p, gen.generate(), cookies::Transport::kUdpHeader);
    submit_spin(pool, i % config.workers, std::move(p));
    mint_clock.advance(kMillisecond);
  }
  pool.drain();
  stop_swapping.store(true, std::memory_order_release);
  swapper.join();
  pool.stop();

  // Workers parked at stop; everything retired must now be free.
  tables.try_reclaim();
  EXPECT_EQ(tables.retired_count(), 0u);
  EXPECT_EQ(pool.total_verified(), kPackets);
  EXPECT_GT(tables.epoch(), 2u) << "swapper never actually swapped";
}

TEST(ControlPlaneRuntime, VerifyDuringSwapAt100kDescriptors) {
  // ISP-scale variant of the swap race (TSan CI target): tables carry
  // 100k compact records, so a swap retires megabytes of store while
  // workers' hot tiers keep verifying against epoch-stamped midstates.
  // Exercises the DescriptorStore copy in build(), epoch revalidation
  // under churn, and reclamation of large retired tables.
  util::SystemClock clock;
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  runtime::WorkerPool::Config config;
  config.workers = 2;
  config.ring_capacity = 256;
  runtime::WorkerPool pool(clock, registry, config);

  TablePublisher tables;
  pool.bind_table_publisher(tables);

  constexpr cookies::CookieId kTableSize = 100'000;
  TableMirror mirror;
  {
    std::vector<cookies::CookieDescriptor> live;
    live.reserve(kTableSize);
    for (cookies::CookieId id = 1; id <= kTableSize; ++id) {
      live.push_back(make_descriptor(id));
    }
    mirror.reset(1, std::move(live), {});
  }
  tables.publish(mirror.build());
  pool.start();

  // Swapper: keep publishing fresh 100k-record tables (each build()
  // copies the store) while the workers verify.
  std::atomic<bool> stop_swapping{false};
  std::thread swapper([&] {
    uint64_t version = 1;
    while (!stop_swapping.load(std::memory_order_acquire)) {
      Update update;
      update.version = ++version;
      update.op = UpdateOp::kAdd;
      update.id = kTableSize + version;
      update.descriptor = make_descriptor(update.id);
      ASSERT_TRUE(mirror.apply(update));
      tables.publish(mirror.build());
      tables.try_reclaim();
      // Each build copies a 100k-record store; pace the swaps so the
      // test exercises dozens of epochs, not an allocation benchmark.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  util::ManualClock mint_clock(clock.now());
  // A handful of hot descriptors spread across the id space.
  std::vector<cookies::CookieGenerator> gens;
  for (cookies::CookieId id = 1; id <= 8; ++id) {
    gens.emplace_back(make_descriptor(id * (kTableSize / 8)), mint_clock,
                      id);
  }
  constexpr uint32_t kPackets = 2000;
  for (uint32_t i = 0; i < kPackets; ++i) {
    net::Packet p = flow_packet(i);
    cookies::attach(p, gens[i % gens.size()].generate(),
                    cookies::Transport::kUdpHeader);
    submit_spin(pool, i % config.workers, std::move(p));
    mint_clock.advance(kMillisecond);
  }
  pool.drain();
  stop_swapping.store(true, std::memory_order_release);
  swapper.join();
  pool.stop();

  tables.try_reclaim();
  EXPECT_EQ(tables.retired_count(), 0u);
  EXPECT_EQ(pool.total_verified(), kPackets);
  EXPECT_GT(tables.epoch(), 1u) << "swapper never actually swapped";
}

// --- LocalSubscriber ------------------------------------------------

TEST(LocalSubscriber, ReplaysHistoryAndFollowsUpdates) {
  util::ManualClock clock(1000 * kSecond);
  DescriptorLog log;
  log.append_add(make_descriptor(1));
  log.append_add(make_descriptor(2));
  log.append_revoke(2);

  cookies::CookieVerifier verifier(clock);
  LocalSubscriber subscriber(log, verifier);
  // Pre-subscription history replayed...
  EXPECT_TRUE(verifier.knows(1));
  EXPECT_EQ(verifier.find(2), nullptr);  // revoked
  EXPECT_TRUE(verifier.knows(2));       // ...including the tombstone
  // ...and live updates follow.
  log.append_add(make_descriptor(3));
  EXPECT_TRUE(verifier.knows(3));
  log.append_remove(3);
  EXPECT_FALSE(verifier.knows(3));
  // A revoke for an id the verifier never saw still lands (stub).
  log.append_revoke(9);
  EXPECT_TRUE(verifier.knows(9));
  EXPECT_EQ(verifier.find(9), nullptr);
}

}  // namespace
}  // namespace nnn::controlplane
