// Wire codec: real IPv4/IPv6 + TCP/UDP serialization, plus the
// control-plane sync frame envelope and message codecs.
#include <gtest/gtest.h>

#include "controlplane/messages.h"
#include "net/wire.h"
#include "util/rng.h"

namespace nnn::net {
namespace {

Packet base_packet(L4Proto proto, bool ipv6) {
  Packet p;
  if (ipv6) {
    p.ipv6 = true;
    p.tuple.src_ip = IpAddress::parse("2001:db8::10").value();
    p.tuple.dst_ip = IpAddress::parse("2001:db8::20").value();
  } else {
    p.tuple.src_ip = IpAddress::v4(192, 168, 1, 10);
    p.tuple.dst_ip = IpAddress::v4(151, 101, 0, 10);
  }
  p.tuple.src_port = 40000;
  p.tuple.dst_port = 443;
  p.tuple.proto = proto;
  p.payload = {0xde, 0xad, 0xbe, 0xef};
  return p;
}

TEST(Wire, V4TcpRoundTrip) {
  Packet p = base_packet(L4Proto::kTcp, false);
  p.dscp = 46;
  p.ttl = 33;
  p.seq = 123456;
  p.ack_seq = 654321;
  p.syn = true;
  p.ack = true;
  const auto wire = serialize(p);
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tuple, p.tuple);
  EXPECT_EQ(parsed->dscp, 46);
  EXPECT_EQ(parsed->ttl, 33);
  EXPECT_EQ(parsed->seq, 123456u);
  EXPECT_EQ(parsed->ack_seq, 654321u);
  EXPECT_TRUE(parsed->syn);
  EXPECT_TRUE(parsed->ack);
  EXPECT_FALSE(parsed->fin);
  EXPECT_EQ(parsed->payload, p.payload);
  EXPECT_EQ(parsed->wire_size, wire.size());
}

TEST(Wire, V4UdpRoundTrip) {
  const Packet p = base_packet(L4Proto::kUdp, false);
  const auto wire = serialize(p);
  EXPECT_EQ(wire.size(), 20u + 8u + p.payload.size());
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tuple, p.tuple);
  EXPECT_EQ(parsed->payload, p.payload);
}

TEST(Wire, V6TcpRoundTrip) {
  const Packet p = base_packet(L4Proto::kTcp, true);
  const auto wire = serialize(p);
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ipv6);
  EXPECT_EQ(parsed->tuple, p.tuple);
  EXPECT_EQ(parsed->payload, p.payload);
  EXPECT_FALSE(parsed->l3_cookie.has_value());
}

TEST(Wire, V6HopByHopCookieRoundTrip) {
  Packet p = base_packet(L4Proto::kUdp, true);
  p.l3_cookie = util::Bytes{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto wire = serialize(p);
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->l3_cookie.has_value());
  EXPECT_EQ(*parsed->l3_cookie, *p.l3_cookie);
  EXPECT_EQ(parsed->payload, p.payload);
  EXPECT_EQ(parsed->tuple, p.tuple);
}

TEST(Wire, TcpEdoOptionRoundTrip) {
  // A 53-byte cookie exceeds the classic 40-byte TCP option space;
  // the codec emits an EDO option and the parser honors it.
  Packet p = base_packet(L4Proto::kTcp, false);
  p.l4_cookie = util::Bytes(53);
  for (size_t i = 0; i < p.l4_cookie->size(); ++i) {
    (*p.l4_cookie)[i] = static_cast<uint8_t>(i * 7);
  }
  const auto wire = serialize(p);
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->l4_cookie.has_value());
  EXPECT_EQ(*parsed->l4_cookie, *p.l4_cookie);
  EXPECT_EQ(parsed->payload, p.payload);
  EXPECT_EQ(parsed->tuple, p.tuple);
}

TEST(Wire, TcpEdoOverV6RoundTrip) {
  Packet p = base_packet(L4Proto::kTcp, true);
  p.l4_cookie = util::Bytes{1, 2, 3, 4, 5};
  const auto parsed = parse(util::BytesView(serialize(p)));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->l4_cookie, p.l4_cookie);
}

TEST(Wire, TcpSmallOptionWithoutEdoNotEmitted) {
  // Without a cookie the header is the plain 20 bytes.
  const Packet p = base_packet(L4Proto::kTcp, false);
  const auto wire = serialize(p);
  EXPECT_EQ(wire.size(), 20u + 20u + p.payload.size());
}

TEST(Wire, V4ChecksumCorruptionDetected) {
  const Packet p = base_packet(L4Proto::kTcp, false);
  auto wire = serialize(p);
  wire[14] ^= 0xff;  // corrupt a source-address byte
  EXPECT_FALSE(parse(util::BytesView(wire)).has_value());
}

TEST(Wire, TruncationRejected) {
  const Packet p = base_packet(L4Proto::kTcp, false);
  const auto wire = serialize(p);
  for (const size_t keep : {0u, 1u, 10u, 19u, 25u, 39u}) {
    EXPECT_FALSE(
        parse(util::BytesView(wire.data(), std::min(keep, wire.size())))
            .has_value())
        << "keep=" << keep;
  }
}

TEST(Wire, GarbageRejected) {
  util::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    util::Bytes junk(rng.next_u64(80));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.next_u64());
    if (!junk.empty()) junk[0] = static_cast<uint8_t>(rng.next_u64(3) << 4);
    // Must never crash; almost always rejects (version nibble invalid).
    (void)parse(util::BytesView(junk));
  }
  SUCCEED();
}

TEST(Wire, InternetChecksumKnownValue) {
  // Classic example: checksum of this header equals 0xb861.
  const util::Bytes header = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                              0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                              0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                              0x00, 0xc7};
  EXPECT_EQ(internet_checksum(util::BytesView(header)), 0xb861);
}

class WireRoundtrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireRoundtrip, RandomPacketsRoundtrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Packet p;
    const bool v6 = rng.chance(0.5);
    p.ipv6 = v6;
    if (v6) {
      std::array<uint8_t, 16> src;
      std::array<uint8_t, 16> dst;
      for (auto& b : src) b = static_cast<uint8_t>(rng.next_u64());
      for (auto& b : dst) b = static_cast<uint8_t>(rng.next_u64());
      p.tuple.src_ip = IpAddress::v6(src);
      p.tuple.dst_ip = IpAddress::v6(dst);
    } else {
      p.tuple.src_ip = IpAddress::v4(rng.next_u32());
      p.tuple.dst_ip = IpAddress::v4(rng.next_u32());
    }
    p.tuple.src_port = static_cast<uint16_t>(rng.next_u64(65536));
    p.tuple.dst_port = static_cast<uint16_t>(rng.next_u64(65536));
    p.tuple.proto = rng.chance(0.5) ? L4Proto::kTcp : L4Proto::kUdp;
    p.dscp = static_cast<uint8_t>(rng.next_u64(64));
    p.payload.resize(rng.next_u64(600));
    for (auto& b : p.payload) b = static_cast<uint8_t>(rng.next_u64());
    if (v6 && rng.chance(0.3)) {
      p.l3_cookie = util::Bytes(1 + rng.next_u64(60));
      for (auto& b : *p.l3_cookie) b = static_cast<uint8_t>(rng.next_u64());
    }
    if (p.tuple.proto == L4Proto::kTcp && rng.chance(0.3)) {
      p.l4_cookie = util::Bytes(1 + rng.next_u64(120));
      for (auto& b : *p.l4_cookie) b = static_cast<uint8_t>(rng.next_u64());
    }
    const auto parsed = parse(util::BytesView(serialize(p)));
    ASSERT_TRUE(parsed.has_value()) << "iteration " << i;
    EXPECT_EQ(parsed->tuple, p.tuple);
    EXPECT_EQ(parsed->dscp, p.dscp);
    EXPECT_EQ(parsed->payload, p.payload);
    EXPECT_EQ(parsed->l3_cookie, p.l3_cookie);
    if (p.is_tcp()) {
      EXPECT_EQ(parsed->l4_cookie, p.l4_cookie);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundtrip, ::testing::Values(3, 5, 7));

// --- Control-plane sync frames and messages ------------------------

TEST(SyncWire, FrameRoundTrip) {
  util::Bytes buffer;
  const util::Bytes payload = {1, 2, 3, 4, 5};
  append_sync_frame(buffer, 9, util::BytesView(payload));
  append_sync_frame(buffer, 4, {});  // empty payload is legal

  util::ByteReader r{util::BytesView(buffer)};
  const auto first = parse_sync_frame(r);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, 9);
  EXPECT_EQ(util::Bytes(first->payload.begin(), first->payload.end()),
            payload);
  const auto second = parse_sync_frame(r);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, 4);
  EXPECT_TRUE(second->payload.empty());
  EXPECT_TRUE(r.done());
}

TEST(SyncWire, FrameRejectsBadEnvelope) {
  util::Bytes good;
  append_sync_frame(good, 1, {});

  util::Bytes bad_magic = good;
  bad_magic[0] ^= 0xff;
  util::ByteReader r1{util::BytesView(bad_magic)};
  EXPECT_FALSE(parse_sync_frame(r1).has_value());

  util::Bytes bad_version = good;
  bad_version[2] = kSyncVersion + 1;
  util::ByteReader r2{util::BytesView(bad_version)};
  EXPECT_FALSE(parse_sync_frame(r2).has_value());

  // Declared length beyond the buffer.
  util::Bytes overrun;
  append_sync_frame(overrun, 1, util::BytesView(good));
  overrun.resize(overrun.size() - 3);
  util::ByteReader r3{util::BytesView(overrun)};
  EXPECT_FALSE(parse_sync_frame(r3).has_value());
}

controlplane::SnapshotMessage rich_snapshot() {
  cookies::CookieDescriptor d;
  d.cookie_id = 42;
  d.key.assign(32, 0xab);
  d.service_data = "Boost";
  d.attributes.granularity = cookies::Granularity::kPacket;
  d.attributes.reverse_flow = false;
  d.attributes.shared = true;
  d.attributes.ack_cookie = true;
  d.attributes.delivery_guarantee = true;
  d.attributes.transports = {cookies::Transport::kHttpHeader,
                             cookies::Transport::kTcpOption};
  d.attributes.expires_at = 12'345'678;
  d.attributes.mapping_ttl = 3'600'000'000;
  d.attributes.extra = {{"region", "us"}, {"ssid", "HomeWifi"}};

  cookies::CookieDescriptor plain;
  plain.cookie_id = 43;
  plain.key.assign(32, 0xcd);
  plain.service_data = "zero-rate";

  controlplane::SnapshotMessage snap;
  snap.version = 17;
  snap.live = {d, plain};
  snap.revoked = {5, 6};
  return snap;
}

TEST(SyncWire, MessagesRoundTrip) {
  using controlplane::decode;
  using controlplane::encode;
  using controlplane::Message;

  const Message request = controlplane::SyncRequest{99, 1234};
  EXPECT_EQ(decode(util::BytesView(encode(request))), request);

  const Message heartbeat = controlplane::HeartbeatMessage{77};
  EXPECT_EQ(decode(util::BytesView(encode(heartbeat))), heartbeat);

  const Message snapshot = rich_snapshot();
  EXPECT_EQ(decode(util::BytesView(encode(snapshot))), snapshot);

  controlplane::DeltaMessage delta;
  delta.from_version = 17;
  delta.to_version = 19;
  controlplane::Update add;
  add.version = 18;
  add.op = controlplane::UpdateOp::kAdd;
  add.id = 42;
  add.descriptor = rich_snapshot().live[0];
  controlplane::Update revoke;
  revoke.version = 19;
  revoke.op = controlplane::UpdateOp::kRevoke;
  revoke.id = 42;
  delta.updates = {add, revoke};
  const Message delta_message = delta;
  EXPECT_EQ(decode(util::BytesView(encode(delta_message))), delta_message);
}

TEST(SyncWire, EveryTruncationPrefixRejected) {
  // Chop a maximally-featured snapshot at every length; each prefix
  // must decode to nullopt (defensive parsing), never crash or
  // misparse.
  const util::Bytes full =
      controlplane::encode(controlplane::Message(rich_snapshot()));
  for (size_t len = 0; len < full.size(); ++len) {
    const util::BytesView prefix(full.data(), len);
    EXPECT_FALSE(controlplane::decode(prefix).has_value())
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(SyncWire, UnknownFrameTypeIsSkipped) {
  // A future message type (0x7f) rides ahead of a heartbeat in the
  // same datagram: an old decoder must skip it and find the heartbeat.
  util::Bytes datagram;
  const util::Bytes future = {0xca, 0xfe};
  append_sync_frame(datagram, 0x7f, util::BytesView(future));
  const util::Bytes heartbeat =
      controlplane::encode(controlplane::Message(
          controlplane::HeartbeatMessage{5}));
  datagram.insert(datagram.end(), heartbeat.begin(), heartbeat.end());

  const auto decoded = controlplane::decode(util::BytesView(datagram));
  ASSERT_TRUE(decoded.has_value());
  const auto* hb = std::get_if<controlplane::HeartbeatMessage>(&*decoded);
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->version, 5u);

  // A datagram of only unknown frames is "no message", not an error
  // loop.
  util::Bytes only_unknown;
  append_sync_frame(only_unknown, 0x70, util::BytesView(future));
  EXPECT_FALSE(
      controlplane::decode(util::BytesView(only_unknown)).has_value());
}

TEST(SyncWire, DescriptorCodecRejectsCorruptFields) {
  const cookies::CookieDescriptor d = rich_snapshot().live[0];
  util::Bytes buffer;
  {
    util::ByteWriter w{buffer};
    controlplane::encode_descriptor(w, d);
  }
  {
    util::ByteReader r{util::BytesView(buffer)};
    const auto back = controlplane::decode_descriptor(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, d);
  }
  // Corrupt the granularity byte (offset: 8 id + 2+32 key +
  // 2+5 "Boost") to an undefined enum value.
  util::Bytes corrupt = buffer;
  corrupt[8 + 2 + 32 + 2 + 5] = 0x7f;
  util::ByteReader r{util::BytesView(corrupt)};
  EXPECT_FALSE(controlplane::decode_descriptor(r).has_value());
}

// --- Expected-returning API (PR 5): differential vs legacy ---------

/// The legacy optional views must agree with the Expected-returning
/// primaries on every input — the api_redesign satellite's "no
/// behavior change" contract, checked byte-for-byte over full wires
/// and every truncation of them.
TEST(Wire, ExpectedAndLegacyParseAgreeOnEveryPrefix) {
  for (const bool ipv6 : {false, true}) {
    for (const auto proto : {L4Proto::kTcp, L4Proto::kUdp}) {
      Packet p = base_packet(proto, ipv6);
      if (proto == L4Proto::kTcp) p.l4_cookie = util::Bytes(53, 0x5a);
      const auto wire = serialize(p);
      for (size_t len = 0; len <= wire.size(); ++len) {
        const util::BytesView view(wire.data(), len);
        const auto legacy = parse(view);
        const auto primary = parse_packet(view);
        ASSERT_EQ(legacy.has_value(), primary.has_value())
            << "ipv6=" << ipv6 << " len=" << len;
        if (legacy.has_value()) {
          EXPECT_EQ(legacy->tuple, primary.value().tuple);
          EXPECT_EQ(legacy->payload, primary.value().payload);
          EXPECT_EQ(legacy->l4_cookie, primary.value().l4_cookie);
        }
      }
    }
  }
}

TEST(Wire, ParseErrorsAreTypedAndTallied) {
  const Packet p = base_packet(L4Proto::kTcp, false);
  const auto wire = serialize(p);

  const auto truncated = parse_packet(util::BytesView(wire.data(), 10));
  ASSERT_FALSE(truncated.has_value());
  EXPECT_EQ(truncated.error().domain, ErrorDomain::kWire);
  EXPECT_EQ(truncated.error().code, ErrorCode::kTruncated);

  auto corrupt = wire;
  corrupt[14] ^= 0xff;  // source-address byte -> header checksum
  const auto checksum = parse_packet(util::BytesView(corrupt));
  ASSERT_FALSE(checksum.has_value());
  EXPECT_EQ(checksum.error().code, ErrorCode::kBadChecksum);

  const util::Bytes junk = {0x00};  // version nibble 0
  const auto malformed = parse_packet(util::BytesView(junk));
  ASSERT_FALSE(malformed.has_value());
  EXPECT_EQ(malformed.error().code, ErrorCode::kMalformed);

  // Failures land in the process-wide tally (-> nnn_errors_total).
  const uint64_t before =
      ErrorTally::instance().count(ErrorDomain::kWire, ErrorCode::kTruncated);
  (void)parse_packet(util::BytesView(wire.data(), 10));
  EXPECT_EQ(
      ErrorTally::instance().count(ErrorDomain::kWire, ErrorCode::kTruncated),
      before + 1);
}

TEST(SyncWire, DecodeExpectedAndLegacyAgreeOnEveryPrefix) {
  const util::Bytes full =
      controlplane::encode(controlplane::Message(rich_snapshot()));
  for (size_t len = 0; len <= full.size(); ++len) {
    const util::BytesView prefix(full.data(), len);
    const auto legacy = controlplane::decode(prefix);
    const auto primary = controlplane::decode_message(prefix);
    ASSERT_EQ(legacy.has_value(), primary.has_value()) << "len=" << len;
    if (legacy.has_value()) {
      EXPECT_EQ(*legacy, primary.value());
    }
  }
}

TEST(SyncWire, DecodeMessageErrorsAreTyped) {
  // Empty datagram.
  const auto empty = controlplane::decode_message(util::BytesView());
  ASSERT_FALSE(empty.has_value());
  EXPECT_EQ(empty.error().domain, ErrorDomain::kMessages);
  EXPECT_EQ(empty.error().code, ErrorCode::kTruncated);

  // Envelope failures propagate the wire-domain error untouched.
  util::Bytes bad_magic = controlplane::encode(
      controlplane::Message(controlplane::HeartbeatMessage{5}));
  bad_magic[0] ^= 0xff;
  const auto magic = controlplane::decode_message(util::BytesView(bad_magic));
  ASSERT_FALSE(magic.has_value());
  EXPECT_EQ(magic.error().domain, ErrorDomain::kWire);
  EXPECT_EQ(magic.error().code, ErrorCode::kBadMagic);

  // A datagram of only unknown frames: no message, typed as such.
  util::Bytes only_unknown;
  const util::Bytes future = {0xca, 0xfe};
  append_sync_frame(only_unknown, 0x70, util::BytesView(future));
  const auto unknown =
      controlplane::decode_message(util::BytesView(only_unknown));
  ASSERT_FALSE(unknown.has_value());
  EXPECT_EQ(unknown.error().domain, ErrorDomain::kMessages);
  EXPECT_EQ(unknown.error().code, ErrorCode::kUnknownType);
}

// --- Frame-length hardening and stream reassembly (PR 6) -----------

/// Build a bare 8-byte sync envelope with an arbitrary length field —
/// the hostile input a decoder must reject before sizing any buffer.
util::Bytes envelope_with_length(uint32_t len) {
  util::Bytes header;
  util::ByteWriter w{header};
  w.u16(kSyncMagic);
  w.u8(kSyncVersion);
  w.u8(1);
  w.u32(len);
  return header;
}

TEST(SyncWire, HostileLengthFieldRejectedBeforeAllocation) {
  // Lengths just past the cap and at the u32 maximum: both must fail
  // kMalformed from the 8-byte header alone — no payload bytes exist,
  // so any attempt to buffer/reserve the declared length would differ
  // observably (kTruncated at best, a 4 GiB allocation at worst).
  for (const uint32_t hostile :
       {static_cast<uint32_t>(max_sync_frame_payload()) + 1, 0xffffffffu}) {
    const util::Bytes header = envelope_with_length(hostile);
    util::ByteReader r{util::BytesView(header)};
    const auto frame = read_sync_frame(r);
    ASSERT_FALSE(frame.has_value()) << "len=" << hostile;
    EXPECT_EQ(frame.error().code, ErrorCode::kMalformed);

    const auto probe = peek_sync_frame(util::BytesView(header));
    ASSERT_FALSE(probe.has_value()) << "len=" << hostile;
    EXPECT_EQ(probe.error().code, ErrorCode::kMalformed);
  }
}

TEST(SyncWire, ConfigurableFramePayloadCap) {
  // A frame legal under the default cap becomes malformed when an
  // operator lowers the cap, and legal again once restored.
  util::Bytes frame;
  append_sync_frame(frame, 1, util::Bytes(2048, 0xee));
  const auto parse_it = [&] {
    util::ByteReader r{util::BytesView(frame)};
    return read_sync_frame(r).has_value();
  };
  EXPECT_TRUE(parse_it());
  set_max_sync_frame_payload(1024);
  EXPECT_FALSE(parse_it());
  EXPECT_FALSE(peek_sync_frame(util::BytesView(frame)).has_value());
  set_max_sync_frame_payload(kDefaultMaxSyncFramePayload);
  EXPECT_TRUE(parse_it());
}

/// One multi-frame stream covering the sync message family: request,
/// heartbeat, a maximally-featured snapshot, a delta, an empty
/// payload, and an unknown future type the assembler must pass
/// through opaquely.
util::Bytes family_stream() {
  util::Bytes stream;
  const util::Bytes request = controlplane::encode(
      controlplane::Message(controlplane::SyncRequest{99, 1234}));
  stream.insert(stream.end(), request.begin(), request.end());
  const util::Bytes heartbeat = controlplane::encode(
      controlplane::Message(controlplane::HeartbeatMessage{77}));
  stream.insert(stream.end(), heartbeat.begin(), heartbeat.end());
  const util::Bytes snapshot =
      controlplane::encode(controlplane::Message(rich_snapshot()));
  stream.insert(stream.end(), snapshot.begin(), snapshot.end());
  append_sync_frame(stream, 4, {});  // empty payload is legal
  const util::Bytes future = {0xca, 0xfe, 0xba, 0xbe};
  append_sync_frame(stream, 0x7f, util::BytesView(future));
  return stream;
}

/// Whole-buffer reference parse: every frame in order via the
/// datagram-path decoder the chunked paths must agree with.
std::vector<std::pair<uint8_t, util::Bytes>> reference_frames(
    const util::Bytes& stream) {
  std::vector<std::pair<uint8_t, util::Bytes>> frames;
  util::ByteReader r{util::BytesView(stream)};
  while (!r.done()) {
    const auto frame = read_sync_frame(r);
    if (!frame.has_value()) break;
    frames.emplace_back(frame->type, util::Bytes(frame->payload.begin(),
                                                 frame->payload.end()));
  }
  return frames;
}

TEST(SyncWire, ByteAtATimeDeliveryMatchesWholeBufferParse) {
  const util::Bytes stream = family_stream();
  const auto expected = reference_frames(stream);
  ASSERT_EQ(expected.size(), 5u);

  FrameAssembler assembler;
  std::vector<std::pair<uint8_t, util::Bytes>> got;
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_FALSE(assembler.feed(util::BytesView(&stream[i], 1)).has_value())
        << "byte " << i;
    while (auto frame = assembler.next()) {
      got.emplace_back(frame->type, std::move(frame->payload));
    }
  }
  EXPECT_EQ(got, expected);
  EXPECT_EQ(assembler.buffered(), 0u);
  EXPECT_FALSE(assembler.poisoned());
}

TEST(SyncWire, RandomChunkDeliveryMatchesWholeBufferParse) {
  const util::Bytes stream = family_stream();
  const auto expected = reference_frames(stream);
  for (const uint64_t seed : {11u, 23u, 47u, 101u}) {
    SCOPED_TRACE(seed);
    util::Rng rng(seed);
    FrameAssembler assembler;
    std::vector<std::pair<uint8_t, util::Bytes>> got;
    size_t offset = 0;
    while (offset < stream.size()) {
      // Chunk sizes 1..64 stress every split point across the 8-byte
      // header and payload boundaries.
      const size_t n = std::min<size_t>(1 + rng.next_u64(64),
                                        stream.size() - offset);
      ASSERT_FALSE(
          assembler.feed(util::BytesView(&stream[offset], n)).has_value());
      offset += n;
      while (auto frame = assembler.next()) {
        got.emplace_back(frame->type, std::move(frame->payload));
      }
    }
    EXPECT_EQ(got, expected);
    EXPECT_EQ(assembler.buffered(), 0u);
  }
}

TEST(SyncWire, AssemblerPoisonsOnHostileStreamAndStaysPoisoned) {
  // A garbage envelope after one good frame: the good frame pops,
  // then the stream is dead — byte streams cannot resynchronize
  // framing. (The envelope must reach its full 8 bytes before the
  // probe can condemn it; until then it is merely "incomplete".)
  util::Bytes stream;
  append_sync_frame(stream, 2, util::Bytes{9, 9});
  util::Bytes garbage = envelope_with_length(4);
  garbage[0] ^= 0xff;  // not kSyncMagic
  stream.insert(stream.end(), garbage.begin(), garbage.end());

  FrameAssembler assembler;
  ASSERT_FALSE(assembler.feed(util::BytesView(stream)).has_value());
  const auto frame = assembler.next();
  ASSERT_TRUE(frame.has_value());  // the frame ahead of the garbage
  EXPECT_EQ(frame->type, 2);
  EXPECT_FALSE(assembler.next().has_value());  // hits the bad envelope
  EXPECT_TRUE(assembler.poisoned());
  // Further feeding fails without inspecting the new bytes.
  util::Bytes good;
  append_sync_frame(good, 1, {});
  const auto err = assembler.feed(util::BytesView(good));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code, ErrorCode::kBadMagic);

  // An oversized length field poisons at feed() time — checked at the
  // envelope, before the declared payload is buffered.
  FrameAssembler oversized;
  const auto huge = envelope_with_length(0xffffffffu);
  const auto huge_err = oversized.feed(util::BytesView(huge));
  ASSERT_TRUE(huge_err.has_value());
  EXPECT_EQ(huge_err->code, ErrorCode::kMalformed);
  EXPECT_TRUE(oversized.poisoned());
}

}  // namespace
}  // namespace nnn::net
