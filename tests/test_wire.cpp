// Wire codec: real IPv4/IPv6 + TCP/UDP serialization.
#include <gtest/gtest.h>

#include "net/wire.h"
#include "util/rng.h"

namespace nnn::net {
namespace {

Packet base_packet(L4Proto proto, bool ipv6) {
  Packet p;
  if (ipv6) {
    p.ipv6 = true;
    p.tuple.src_ip = IpAddress::parse("2001:db8::10").value();
    p.tuple.dst_ip = IpAddress::parse("2001:db8::20").value();
  } else {
    p.tuple.src_ip = IpAddress::v4(192, 168, 1, 10);
    p.tuple.dst_ip = IpAddress::v4(151, 101, 0, 10);
  }
  p.tuple.src_port = 40000;
  p.tuple.dst_port = 443;
  p.tuple.proto = proto;
  p.payload = {0xde, 0xad, 0xbe, 0xef};
  return p;
}

TEST(Wire, V4TcpRoundTrip) {
  Packet p = base_packet(L4Proto::kTcp, false);
  p.dscp = 46;
  p.ttl = 33;
  p.seq = 123456;
  p.ack_seq = 654321;
  p.syn = true;
  p.ack = true;
  const auto wire = serialize(p);
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tuple, p.tuple);
  EXPECT_EQ(parsed->dscp, 46);
  EXPECT_EQ(parsed->ttl, 33);
  EXPECT_EQ(parsed->seq, 123456u);
  EXPECT_EQ(parsed->ack_seq, 654321u);
  EXPECT_TRUE(parsed->syn);
  EXPECT_TRUE(parsed->ack);
  EXPECT_FALSE(parsed->fin);
  EXPECT_EQ(parsed->payload, p.payload);
  EXPECT_EQ(parsed->wire_size, wire.size());
}

TEST(Wire, V4UdpRoundTrip) {
  const Packet p = base_packet(L4Proto::kUdp, false);
  const auto wire = serialize(p);
  EXPECT_EQ(wire.size(), 20u + 8u + p.payload.size());
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tuple, p.tuple);
  EXPECT_EQ(parsed->payload, p.payload);
}

TEST(Wire, V6TcpRoundTrip) {
  const Packet p = base_packet(L4Proto::kTcp, true);
  const auto wire = serialize(p);
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->ipv6);
  EXPECT_EQ(parsed->tuple, p.tuple);
  EXPECT_EQ(parsed->payload, p.payload);
  EXPECT_FALSE(parsed->l3_cookie.has_value());
}

TEST(Wire, V6HopByHopCookieRoundTrip) {
  Packet p = base_packet(L4Proto::kUdp, true);
  p.l3_cookie = util::Bytes{1, 2, 3, 4, 5, 6, 7, 8, 9};
  const auto wire = serialize(p);
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->l3_cookie.has_value());
  EXPECT_EQ(*parsed->l3_cookie, *p.l3_cookie);
  EXPECT_EQ(parsed->payload, p.payload);
  EXPECT_EQ(parsed->tuple, p.tuple);
}

TEST(Wire, TcpEdoOptionRoundTrip) {
  // A 53-byte cookie exceeds the classic 40-byte TCP option space;
  // the codec emits an EDO option and the parser honors it.
  Packet p = base_packet(L4Proto::kTcp, false);
  p.l4_cookie = util::Bytes(53);
  for (size_t i = 0; i < p.l4_cookie->size(); ++i) {
    (*p.l4_cookie)[i] = static_cast<uint8_t>(i * 7);
  }
  const auto wire = serialize(p);
  const auto parsed = parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->l4_cookie.has_value());
  EXPECT_EQ(*parsed->l4_cookie, *p.l4_cookie);
  EXPECT_EQ(parsed->payload, p.payload);
  EXPECT_EQ(parsed->tuple, p.tuple);
}

TEST(Wire, TcpEdoOverV6RoundTrip) {
  Packet p = base_packet(L4Proto::kTcp, true);
  p.l4_cookie = util::Bytes{1, 2, 3, 4, 5};
  const auto parsed = parse(util::BytesView(serialize(p)));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->l4_cookie, p.l4_cookie);
}

TEST(Wire, TcpSmallOptionWithoutEdoNotEmitted) {
  // Without a cookie the header is the plain 20 bytes.
  const Packet p = base_packet(L4Proto::kTcp, false);
  const auto wire = serialize(p);
  EXPECT_EQ(wire.size(), 20u + 20u + p.payload.size());
}

TEST(Wire, V4ChecksumCorruptionDetected) {
  const Packet p = base_packet(L4Proto::kTcp, false);
  auto wire = serialize(p);
  wire[14] ^= 0xff;  // corrupt a source-address byte
  EXPECT_FALSE(parse(util::BytesView(wire)).has_value());
}

TEST(Wire, TruncationRejected) {
  const Packet p = base_packet(L4Proto::kTcp, false);
  const auto wire = serialize(p);
  for (const size_t keep : {0u, 1u, 10u, 19u, 25u, 39u}) {
    EXPECT_FALSE(
        parse(util::BytesView(wire.data(), std::min(keep, wire.size())))
            .has_value())
        << "keep=" << keep;
  }
}

TEST(Wire, GarbageRejected) {
  util::Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    util::Bytes junk(rng.next_u64(80));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.next_u64());
    if (!junk.empty()) junk[0] = static_cast<uint8_t>(rng.next_u64(3) << 4);
    // Must never crash; almost always rejects (version nibble invalid).
    (void)parse(util::BytesView(junk));
  }
  SUCCEED();
}

TEST(Wire, InternetChecksumKnownValue) {
  // Classic example: checksum of this header equals 0xb861.
  const util::Bytes header = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00,
                              0x40, 0x00, 0x40, 0x11, 0x00, 0x00,
                              0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                              0x00, 0xc7};
  EXPECT_EQ(internet_checksum(util::BytesView(header)), 0xb861);
}

class WireRoundtrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireRoundtrip, RandomPacketsRoundtrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    Packet p;
    const bool v6 = rng.chance(0.5);
    p.ipv6 = v6;
    if (v6) {
      std::array<uint8_t, 16> src;
      std::array<uint8_t, 16> dst;
      for (auto& b : src) b = static_cast<uint8_t>(rng.next_u64());
      for (auto& b : dst) b = static_cast<uint8_t>(rng.next_u64());
      p.tuple.src_ip = IpAddress::v6(src);
      p.tuple.dst_ip = IpAddress::v6(dst);
    } else {
      p.tuple.src_ip = IpAddress::v4(rng.next_u32());
      p.tuple.dst_ip = IpAddress::v4(rng.next_u32());
    }
    p.tuple.src_port = static_cast<uint16_t>(rng.next_u64(65536));
    p.tuple.dst_port = static_cast<uint16_t>(rng.next_u64(65536));
    p.tuple.proto = rng.chance(0.5) ? L4Proto::kTcp : L4Proto::kUdp;
    p.dscp = static_cast<uint8_t>(rng.next_u64(64));
    p.payload.resize(rng.next_u64(600));
    for (auto& b : p.payload) b = static_cast<uint8_t>(rng.next_u64());
    if (v6 && rng.chance(0.3)) {
      p.l3_cookie = util::Bytes(1 + rng.next_u64(60));
      for (auto& b : *p.l3_cookie) b = static_cast<uint8_t>(rng.next_u64());
    }
    if (p.tuple.proto == L4Proto::kTcp && rng.chance(0.3)) {
      p.l4_cookie = util::Bytes(1 + rng.next_u64(120));
      for (auto& b : *p.l4_cookie) b = static_cast<uint8_t>(rng.next_u64());
    }
    const auto parsed = parse(util::BytesView(serialize(p)));
    ASSERT_TRUE(parsed.has_value()) << "iteration " << i;
    EXPECT_EQ(parsed->tuple, p.tuple);
    EXPECT_EQ(parsed->dscp, p.dscp);
    EXPECT_EQ(parsed->payload, p.payload);
    EXPECT_EQ(parsed->l3_cookie, p.l3_cookie);
    if (p.is_tcp()) {
      EXPECT_EQ(parsed->l4_cookie, p.l4_cookie);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundtrip, ::testing::Values(3, 5, 7));

}  // namespace
}  // namespace nnn::net
