// HomeTopology: the canonical §5 deployment wired end to end.
#include <gtest/gtest.h>

#include <optional>

#include "boost_lane/home_topology.h"
#include "cookies/transport.h"
#include "net/http.h"
#include "sim/tcp.h"

namespace nnn::boost_lane {
namespace {

using util::kSecond;

TEST(HomeTopology, AddressAllocation) {
  sim::EventLoop loop;
  HomeTopology home(loop, {});
  auto& laptop = home.add_home_host("laptop");
  auto& phone = home.add_home_host("phone");
  auto& server = home.add_server("cdn");
  EXPECT_EQ(laptop.address(), net::IpAddress::v4(192, 168, 1, 10));
  EXPECT_EQ(phone.address(), net::IpAddress::v4(192, 168, 1, 11));
  EXPECT_EQ(server.address(), net::IpAddress::v4(198, 51, 100, 1));
}

TEST(HomeTopology, PacketsCrossInBothDirections) {
  sim::EventLoop loop;
  HomeTopology home(loop, {});
  auto& laptop = home.add_home_host("laptop");
  auto& server = home.add_server("srv");

  int at_server = 0;
  int at_laptop = 0;
  server.set_default_handler([&](const net::Packet&) { ++at_server; });
  laptop.set_default_handler([&](const net::Packet&) { ++at_laptop; });

  net::Packet up;
  up.tuple.src_ip = laptop.address();
  up.tuple.dst_ip = server.address();
  up.wire_size = 400;
  laptop.send(up);
  net::Packet down;
  down.tuple.src_ip = server.address();
  down.tuple.dst_ip = laptop.address();
  down.wire_size = 400;
  server.send(down);
  loop.run();
  EXPECT_EQ(at_server, 1);
  EXPECT_EQ(at_laptop, 1);
}

TEST(HomeTopology, BoostedTransferBeatsContention) {
  // The §5 scenario on the shared topology: two equal 400 KB
  // downloads, one boosted, racing over the 6 Mb/s bottleneck.
  const auto run = [](bool boost_first) {
    sim::EventLoop loop;
    HomeTopology home(loop, {});
    auto& client = home.add_home_host("client");
    auto& server = home.add_server("srv");
    auto generator = home.install_boost_descriptor(9, 4);

    std::optional<double> fct_first;
    net::FiveTuple flow;
    flow.src_ip = server.address();
    flow.dst_ip = client.address();
    flow.src_port = 443;
    flow.dst_port = 50000;
    sim::TcpSource src(loop, server, flow, 400 * 1024, {}, nullptr);
    sim::TcpSink snk(loop, client, flow, [&](util::Timestamp t) {
      fct_first = static_cast<double>(t) / kSecond;
    });
    server.register_handler(flow.reversed(), [&](const net::Packet& p) {
      if (p.ack) src.on_ack(p);
    });
    client.register_handler(flow, [&](const net::Packet& p) {
      snk.on_data(p);
    });

    // Competing transfer, never boosted.
    net::FiveTuple rival;
    rival.src_ip = server.address();
    rival.dst_ip = client.address();
    rival.src_port = 80;
    rival.dst_port = 50001;
    sim::TcpSource rival_src(loop, server, rival, 4'000'000, {}, nullptr);
    sim::TcpSink rival_snk(loop, client, rival, nullptr);
    server.register_handler(rival.reversed(), [&](const net::Packet& p) {
      if (p.ack) rival_src.on_ack(p);
    });
    client.register_handler(rival, [&](const net::Packet& p) {
      rival_snk.on_data(p);
    });

    loop.at(0, [&] { rival_src.start(); });
    loop.at(kSecond, [&] {
      if (boost_first) {
        net::Packet request;
        request.tuple = flow.reversed();
        net::http::Request http("GET", "/", "x.example");
        const std::string text = http.serialize();
        request.payload.assign(text.begin(), text.end());
        cookies::attach(request, generator.generate(),
                        cookies::Transport::kHttpHeader);
        client.send(std::move(request));
      }
      src.start();
    });
    loop.run_until(120 * kSecond);
    return fct_first.value_or(-1.0);
  };

  const double boosted = run(true);
  const double plain = run(false);
  ASSERT_GT(boosted, 0);
  ASSERT_GT(plain, 0);
  EXPECT_LT(boosted * 1.5, plain);  // boost wins by a clear margin
}

}  // namespace
}  // namespace nnn::boost_lane
