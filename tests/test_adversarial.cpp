// Adversarial / failure-injection scenarios: floods, memory bounds,
// malformed control-plane input, and hostile clients.
#include <gtest/gtest.h>

#include "boost_lane/agent.h"
#include "controlplane/local_subscriber.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "cookies/verifier.h"
#include "dataplane/middlebox.h"
#include "net/http.h"
#include "server/cookie_server.h"
#include "server/json_api.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn {
namespace {

using util::kSecond;

cookies::CookieDescriptor make_descriptor(cookies::CookieId id) {
  cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(id * 13 + 5));
  d.service_data = "Boost";
  return d;
}

TEST(Adversarial, SameUuidFloodStaysBounded) {
  // An attacker replays one captured cookie at line rate: the replay
  // cache must hold exactly one entry for it, not grow.
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  const auto descriptor = make_descriptor(1);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 1);
  const auto cookie = generator.generate();
  EXPECT_TRUE(verifier.verify(cookie).ok());
  for (int i = 0; i < 100'000; ++i) {
    EXPECT_EQ(verifier.verify(cookie).status,
              cookies::VerifyStatus::kReplayed);
  }
  EXPECT_EQ(verifier.stats().replayed, 100'000u);
}

TEST(Adversarial, RandomIdFloodOnlyCostsLookups) {
  // A flood of cookies with random unknown ids: every one is rejected
  // at the cheapest check, no replay-cache state is created.
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  verifier.add_descriptor(make_descriptor(1));
  util::Rng rng(9);
  cookies::CookieGenerator generator(make_descriptor(1), clock, 2);
  for (int i = 0; i < 10'000; ++i) {
    auto cookie = generator.generate();
    cookie.cookie_id = rng.next_u64() | 0x100;  // never id 1
    EXPECT_EQ(verifier.verify(cookie).status,
              cookies::VerifyStatus::kUnknownId);
  }
  EXPECT_EQ(verifier.stats().unknown_id, 10'000u);
  EXPECT_EQ(verifier.stats().verified, 0u);
}

TEST(Adversarial, ForgedSignatureFloodNeverVerifies) {
  // Brute-force-ish tag guessing: random signatures on an otherwise
  // valid cookie never pass (at 2^-128 per try the test would need
  // longer than the universe; we assert zero hits in 50k tries).
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  const auto descriptor = make_descriptor(3);
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, 3);
  util::Rng rng(11);
  auto cookie = generator.generate();
  for (int i = 0; i < 50'000; ++i) {
    for (auto& b : cookie.signature) {
      b = static_cast<uint8_t>(rng.next_u64());
    }
    EXPECT_EQ(verifier.verify(cookie).status,
              cookies::VerifyStatus::kBadSignature);
  }
}

TEST(Adversarial, StolenDescriptorIsRevocable) {
  // The §4.5 leak scenario: "revocability is also helpful in case a
  // descriptor gets leaked or an application gets compromised."
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer server(clock, 13, &descriptor_log);
  controlplane::LocalSubscriber subscriber(descriptor_log, verifier);
  server::ServiceOffer offer;
  offer.name = "Boost";
  offer.service_data = "Boost";
  server.add_service(offer);

  const auto grant = server.acquire("Boost", "victim");
  // The thief holds a full copy of the descriptor...
  cookies::CookieGenerator thief(*grant.descriptor, clock, 4);
  EXPECT_TRUE(verifier.verify(thief.generate()).ok());
  // ...until the victim notices and revokes.
  server.revoke(grant.descriptor->cookie_id, "leaked");
  EXPECT_EQ(verifier.verify(thief.generate()).status,
            cookies::VerifyStatus::kDescriptorRevoked);
}

TEST(Adversarial, JsonApiSurvivesGarbageFlood) {
  util::ManualClock clock(1000 * kSecond);
  server::CookieServer server(clock, 17, nullptr);
  server::JsonApi api(server);
  util::Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    std::string junk(rng.next_u64(120), '\0');
    for (auto& c : junk) c = static_cast<char>(rng.next_u64(256));
    const std::string response = api.handle_text(junk);
    // Every response is valid JSON with ok=false or ok=true.
    const auto parsed = json::parse(response);
    ASSERT_TRUE(parsed.has_value()) << "response not JSON: " << response;
    EXPECT_TRUE(parsed->find("ok") != nullptr);
  }
}

TEST(Adversarial, MiddleboxSurvivesHostilePayloadMix) {
  // Random payloads, some resembling carriers, across many flows:
  // process() must never throw and the flow table must stay bounded
  // by the idle timeout.
  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  dataplane::ServiceRegistry registry;
  dataplane::Middlebox middlebox(clock, verifier, registry);
  util::Rng rng(23);
  for (int i = 0; i < 20'000; ++i) {
    net::Packet p;
    p.tuple.src_ip = net::IpAddress::v4(10, 0, 0, 1);
    p.tuple.src_port = static_cast<uint16_t>(rng.next_u64(65536));
    p.tuple.dst_port = static_cast<uint16_t>(rng.next_u64(65536));
    p.tuple.proto =
        rng.chance(0.5) ? net::L4Proto::kUdp : net::L4Proto::kTcp;
    p.payload.resize(rng.next_u64(100));
    for (auto& b : p.payload) b = static_cast<uint8_t>(rng.next_u64());
    if (rng.chance(0.1)) {
      // Plant the UDP shim magic with garbage behind it.
      p.payload.insert(p.payload.begin(),
                       {'N', 'C', 'K', 'U', 0x00, 0x20});
    }
    clock.advance(util::kMillisecond);
    EXPECT_NO_THROW(middlebox.process(p));
  }
  // Bounded by idle expiry (60 s window at 1000 flows/s).
  EXPECT_LT(middlebox.flows().size(), 70'000u);
}

TEST(Adversarial, AgentHandlesServerOutage) {
  // The well-known server refuses everything: the agent degrades
  // gracefully (no descriptor, no cookies, no crash) and the user's
  // traffic continues best-effort.
  util::ManualClock clock(1000 * kSecond);
  server::CookieServer empty_server(clock, 19, nullptr);  // no services
  server::JsonApi api(empty_server);
  boost_lane::BoostAgent agent(clock, api, "home", 3);
  EXPECT_FALSE(agent.boost_tab(1));
  EXPECT_FALSE(agent.always_boost("cnn.com"));
  EXPECT_FALSE(agent.has_descriptor());
  EXPECT_EQ(agent.cookies_inserted(), 0u);
}

}  // namespace
}  // namespace nnn
