// Chaos harness (PR 5 tentpole): randomized, seeded multi-fault
// schedules over the sync channel, the issuing server, and the worker
// pool, asserting the paper's failure-semantics contract under every
// schedule:
//
//   1. fail-open — no cookie-bearing packet is ever dropped by the
//      middlebox machinery: every packet offered to the dispatcher is
//      forwarded (verified, or counted as a shed/bypass and forwarded
//      unverified), and the published descriptor table never vanishes
//      mid-outage;
//   2. replay protection never weakens — a cookie is accepted (kOk) at
//      most once, no matter what faults land, including clock skew
//      beyond the network coherency time;
//   3. recovery converges — once the schedule goes quiet, the client
//      catches back up to the log head within the stale-while-
//      revalidate budget: breaker closed, stale flag clear, published
//      table at the server's version.
//
// Every schedule comes from FaultPlan::random(seed); a red seed
// reproduces from the test name alone, and SCOPED_TRACE prints the
// plan so the failure is diagnosable without re-running it.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "controlplane/descriptor_log.h"
#include "controlplane/epoch.h"
#include "controlplane/messages.h"
#include "controlplane/sync_client.h"
#include "controlplane/sync_server.h"
#include "controlplane/table_mirror.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "cookies/verifier.h"
#include "dataplane/service_registry.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "net/packet.h"
#include "net/wire.h"
#include "netio/event_loop.h"
#include "netio/sync_endpoint.h"
#include "netio/sync_transport.h"
#include "netio/transport.h"
#include "quic/workload.h"
#include "runtime/dataplane.h"
#include "runtime/dispatcher.h"
#include "runtime/worker_pool.h"
#include "server/cookie_server.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace nnn {
namespace {

using util::kMillisecond;
using util::kSecond;
using util::Timestamp;

cookies::CookieDescriptor make_descriptor(cookies::CookieId id) {
  cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(0x40 + (id & 0x3f)));
  d.service_data = "Boost";
  return d;
}

net::Packet flow_packet(uint32_t flow_id) {
  net::Packet p;
  p.tuple.src_ip = net::IpAddress::v4(0x0a000000u | flow_id);
  p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 1);
  p.tuple.src_port = static_cast<uint16_t>(1024 + (flow_id & 0xfff));
  p.tuple.dst_port = 443;
  p.tuple.proto = net::L4Proto::kUdp;
  p.wire_size = 512;
  return p;
}

std::string trace_label(uint64_t seed, const fault::FaultPlan& plan) {
  return "seed " + std::to_string(seed) + ": " + plan.summary();
}

// --- Control plane under chaos -------------------------------------
//
// SyncClient/SyncServer over impaired sim links, with the injector
// hooked into both links (partitions, loss spikes) and the server
// (sync outages). A CookieServer issues grants into the same log while
// the faults land, and a standalone verifier on a SkewedClock probes
// the use-once check throughout — including while the clock reads
// beyond the NCT.

class ChaosSync : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosSync, ConvergesFailOpenWithReplaySafety) {
  const uint64_t seed = GetParam();
  const fault::FaultPlan plan = fault::FaultPlan::random(seed);
  SCOPED_TRACE(trace_label(seed, plan));
  fault::Injector injector;
  injector.arm(plan, seed);

  sim::EventLoop loop;
  controlplane::DescriptorLog log;
  controlplane::SyncServer server(log);
  server.set_fault_injector(&injector, &loop.clock());
  controlplane::TablePublisher tables;
  controlplane::SyncClient* client_ptr = nullptr;

  sim::Link::Config wire;
  wire.rate_bps = 1e6;
  wire.prop_delay = 5 * kMillisecond;
  wire.loss_rate = 0.02;  // ambient loss; the plan layers spikes on top
  wire.delay_jitter = 2 * kMillisecond;
  wire.impairment_seed = seed * 2 + 1;
  sim::Link to_client(loop, wire, [&](net::Packet p) {
    client_ptr->on_datagram(util::BytesView(p.payload));
  });
  to_client.set_fault_injector(&injector, 1);
  wire.impairment_seed = seed * 2 + 2;
  sim::Link to_server(loop, wire, [&](net::Packet p) {
    if (auto reply = server.handle(util::BytesView(p.payload))) {
      net::Packet r;
      r.payload = std::move(*reply);
      to_client.send(std::move(r));
    }
  });
  to_server.set_fault_injector(&injector, 0);

  controlplane::SyncClient::Config cfg;
  cfg.client_id = seed;
  cfg.poll_interval = 50 * kMillisecond;
  cfg.response_timeout = 100 * kMillisecond;
  cfg.backoff_base = 100 * kMillisecond;
  cfg.backoff_max = kSecond;
  cfg.stale_grace = 2 * kSecond;
  cfg.breaker_failure_threshold = 3;
  cfg.breaker_success_threshold = 2;
  controlplane::SyncClient client(loop.clock(), tables, cfg,
                                  [&](util::Bytes request) {
                                    net::Packet p;
                                    p.payload = std::move(request);
                                    to_server.send(std::move(p));
                                  });
  client_ptr = &client;

  // The issuing side shares the log and the injector: acquires during
  // an outage must fail *unavailable* (never corrupt state), and the
  // grants that do land must reach the client like any other update.
  server::CookieServer cookie_server(loop.clock(), seed, &log);
  cookie_server.set_fault_injector(&injector);
  server::ServiceOffer offer;
  offer.name = "Boost";
  cookie_server.add_service(offer);

  // Descriptor churn timed to land inside the 10 s fault horizon.
  for (cookies::CookieId id = 1; id <= 4; ++id) {
    log.append_add(make_descriptor(id));
  }
  loop.at(1 * kSecond, [&] { log.append_add(make_descriptor(5)); });
  loop.at(2500 * kMillisecond, [&] { log.append_revoke(2); });
  loop.at(4 * kSecond, [&] { log.append_add(make_descriptor(6)); });
  loop.at(6 * kSecond, [&] { log.append_remove(1); });
  loop.at(8 * kSecond, [&] { log.append_revoke(3); });

  client.start();
  std::function<void()> pump = [&] {
    client.tick();
    loop.after(25 * kMillisecond, pump);
  };
  pump();

  // Invariant 1 watchdog: once a table has been published, it must
  // never revert to "no table" — stale-while-revalidate keeps the last
  // good table enforcing through the worst outage.
  bool published_once = false;
  bool published_gap = false;
  std::function<void()> watchdog = [&] {
    if (tables.peek() != nullptr) {
      published_once = true;
    } else if (published_once) {
      published_gap = true;
    }
    loop.after(100 * kMillisecond, watchdog);
  };
  watchdog();

  // Acquire pump: inside the fault horizon only, so the convergence
  // assertions below race nothing.
  const Timestamp horizon = 10 * kSecond;
  uint64_t acquires_ok = 0;
  uint64_t acquires_unavailable = 0;
  bool acquire_violation = false;
  std::function<void()> buyer = [&] {
    const auto result = cookie_server.acquire("Boost", "alice");
    if (result.ok()) {
      ++acquires_ok;
    } else if (result.error == server::AcquireError::kUnavailable) {
      ++acquires_unavailable;
    } else {
      acquire_violation = true;  // open service: nothing else is legal
    }
    if (loop.now() + 900 * kMillisecond < horizon) {
      loop.after(900 * kMillisecond, buyer);
    }
  };
  loop.after(300 * kMillisecond, buyer);

  // Invariant 2 prober: mint a cookie with the true clock, verify it
  // twice on a clock the plan may skew past the NCT. The second verify
  // must never be accepted; when the first is accepted the second must
  // be flagged as the replay it is.
  fault::SkewedClock skewed(loop.clock(), injector);
  cookies::CookieVerifier verifier(skewed);
  verifier.add_descriptor(make_descriptor(99));
  cookies::CookieGenerator mint(make_descriptor(99), loop.clock(), seed);
  uint64_t replay_violations = 0;
  std::function<void()> prober = [&] {
    const cookies::Cookie cookie = mint.generate();
    const auto first = verifier.verify(cookie);
    const auto second = verifier.verify(cookie);
    if (second.ok()) ++replay_violations;
    if (first.ok() && second.status != cookies::VerifyStatus::kReplayed) {
      ++replay_violations;
    }
    loop.after(250 * kMillisecond, prober);
  };
  prober();

  // Run the schedule out, then give recovery one stale-while-
  // revalidate budget's worth of quiet channel.
  const Timestamp quiet = std::max(plan.quiet_after(), horizon);
  const Timestamp deadline = quiet + 5 * kSecond;
  loop.run_until(deadline);

  EXPECT_FALSE(acquire_violation)
      << "acquire failed with something other than kUnavailable";
  EXPECT_EQ(replay_violations, 0u);
  EXPECT_GT(verifier.stats().replayed, 0u)
      << "the replay prober never exercised an accepted cookie";
  EXPECT_FALSE(published_gap)
      << "published table vanished mid-outage (fail-closed)";

  // Invariant 3: converged.
  ASSERT_NE(tables.peek(), nullptr);
  EXPECT_EQ(client.applied_version(), log.version());
  EXPECT_EQ(tables.peek()->version(), log.version());
  EXPECT_FALSE(client.stale());
  EXPECT_EQ(client.breaker_state(), controlplane::BreakerState::kClosed);
  ASSERT_NE(tables.peek()->find(2), nullptr);
  EXPECT_TRUE(tables.peek()->find(2)->revoked);
  EXPECT_EQ(tables.peek()->find(1), nullptr);  // removed at 6 s

  // The issuing path recovered too, and its new grant syncs through.
  const auto grant = cookie_server.acquire("Boost", "alice");
  EXPECT_TRUE(grant.ok()) << "acquire still unavailable after quiet";
  loop.run_until(deadline + 2 * kSecond);
  EXPECT_EQ(client.applied_version(), log.version());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSync,
                         ::testing::Range<uint64_t>(1, 22));

// --- Worker pool under chaos ---------------------------------------
//
// Real threads on the system clock: a producer pushes every cookie
// TWICE through a descriptor-affinity dispatcher while the plan
// injects queue-pressure bursts, worker pauses, and clock skew (the
// pool runs on a SkewedClock). The books must balance exactly —
// nothing silently dropped — and no cookie is ever accepted twice.

class ChaosPool : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosPool, ShedLedgerAndUseOnceHoldUnderFaults) {
  const uint64_t seed = GetParam();
  util::SystemClock wall;
  fault::Injector injector;
  fault::SkewedClock clock(wall, injector);

  // Short real-time horizon: the producer below spans tens of
  // milliseconds, so durations are scaled to overlap it.
  fault::FaultPlan::Spec spec;
  spec.horizon = 30 * kMillisecond;
  spec.min_duration = 5 * kMillisecond;
  spec.max_duration = 15 * kMillisecond;
  spec.max_magnitude = 0.5;
  const fault::FaultPlan drawn = fault::FaultPlan::random(seed, spec);
  SCOPED_TRACE(trace_label(seed, drawn));
  // random() draws starts in [0, horizon); rebase onto the wall clock.
  fault::FaultPlan plan;
  const Timestamp base = wall.now() + 2 * kMillisecond;
  for (fault::FaultEvent e : drawn.events()) {
    e.start += base;
    plan.add(e);
  }
  injector.arm(plan, seed);

  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  runtime::WorkerPool::Config config;
  config.workers = 2;
  config.ring_capacity = 128;  // small on purpose: real ring-full sheds
  runtime::WorkerPool pool(clock, registry, config);
  pool.set_fault_injector(&injector);
  pool.add_descriptor(make_descriptor(1));
  pool.add_descriptor(make_descriptor(2));
  runtime::Dispatcher dispatcher(pool, {});  // descriptor affinity
  pool.start();

  constexpr uint32_t kUnique = 1500;
  util::ManualClock mint_clock(wall.now());  // never advanced: one writer, no race
  cookies::CookieGenerator gen1(make_descriptor(1), mint_clock, seed);
  cookies::CookieGenerator gen2(make_descriptor(2), mint_clock, seed + 1);
  std::thread producer([&] {
    for (uint32_t i = 0; i < kUnique; ++i) {
      cookies::CookieGenerator& gen = (i & 1) ? gen2 : gen1;
      const cookies::Cookie cookie = gen.generate();
      net::Packet p = flow_packet(i);
      cookies::attach(p, cookie, cookies::Transport::kUdpHeader);
      net::Packet replay = p;  // same cookie: the §4.2 use-once probe
      dispatcher.dispatch(std::move(p));
      dispatcher.dispatch(std::move(replay));
      // Stretch the producer across the fault window.
      if ((i & 7) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
  });
  producer.join();
  // Let the schedule finish (a pause still active would stall drain
  // only as long as its own duration; waiting keeps the timing tight).
  while (injector.any_active(wall.now())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  pool.drain();
  pool.stop();

  // Invariant 1: exact fail-open accounting. Every offered packet was
  // forwarded — routed to a worker or counted as a bypass — and the
  // pool's shed ledger reconciles against the dispatcher's books.
  const auto disp = dispatcher.stats();
  EXPECT_EQ(disp.offered, 2ull * kUnique);
  EXPECT_EQ(disp.forwarded(), disp.offered)
      << "a cookie-bearing packet was dropped (fail-closed)";
  EXPECT_EQ(disp.ingress_full_bypass, 0u);  // direct mode: no ingress ring
  const auto totals = pool.snapshot().totals();
  EXPECT_EQ(totals.processed, disp.routed);
  EXPECT_EQ(totals.shed, disp.ring_full_bypass);
  EXPECT_EQ(totals.processed + totals.shed, disp.offered);

  // Invariant 2: at most one accept per unique cookie. Affinity pins
  // both copies of a cookie to one worker, so its replay cache is
  // authoritative; skew or shedding may cost accepts, never add them.
  uint64_t accepted = 0;
  uint64_t replayed = 0;
  for (size_t w = 0; w < config.workers; ++w) {
    accepted += pool.verifier(w).stats().verified;
    replayed += pool.verifier(w).stats().replayed;
  }
  EXPECT_EQ(accepted, pool.total_verified());
  EXPECT_LE(accepted, kUnique);
  EXPECT_LE(replayed, accepted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosPool,
                         ::testing::Range<uint64_t>(1, 11));

// --- Cold restart under chaos --------------------------------------
//
// A middlebox syncs cleanly, checkpoints, "restarts", and restores the
// checkpoint while the channel to the server is under a fresh fault
// schedule: the restored table must bridge the gap immediately (fail-
// open from the first instant), the resync must converge once the
// schedule quiets, and a checkpoint past the staleness budget must be
// refused.

class ChaosRestart : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosRestart, RestoredTableBridgesFaultyResync) {
  const uint64_t seed = GetParam();
  sim::EventLoop loop;
  controlplane::DescriptorLog log;
  controlplane::SyncServer server(log);
  fault::Injector injector;

  // Phase 1: clean synchronous loopback to version 4, then checkpoint.
  controlplane::SavedTable saved;
  {
    controlplane::TablePublisher tables1;
    controlplane::SyncClient* c1 = nullptr;
    controlplane::SyncClient client1(loop.clock(), tables1, {},
                                     [&](util::Bytes request) {
                                       if (auto reply = server.handle(
                                               util::BytesView(request))) {
                                         c1->on_datagram(util::BytesView(*reply));
                                       }
                                     });
    c1 = &client1;
    log.append_add(make_descriptor(1));
    log.append_add(make_descriptor(2));
    log.append_add(make_descriptor(3));
    log.append_revoke(2);
    client1.start();
    ASSERT_EQ(client1.applied_version(), 4u);
    loop.run_until(kSecond);
    saved = client1.export_table();
  }
  ASSERT_EQ(saved.version, 4u);

  // Phase 2: restart behind a faulted channel.
  fault::FaultPlan::Spec spec;
  spec.horizon = 5 * kSecond;
  const fault::FaultPlan drawn = fault::FaultPlan::random(seed, spec);
  SCOPED_TRACE(trace_label(seed, drawn));
  fault::FaultPlan plan;
  for (fault::FaultEvent e : drawn.events()) {
    e.start += kSecond;  // schedule starts at the restart instant
    plan.add(e);
  }
  injector.arm(plan, seed);
  server.set_fault_injector(&injector, &loop.clock());

  controlplane::TablePublisher tables2;
  controlplane::SyncClient* c2 = nullptr;
  sim::Link::Config wire;
  wire.rate_bps = 1e6;
  wire.prop_delay = 5 * kMillisecond;
  wire.loss_rate = 0.02;
  wire.delay_jitter = 2 * kMillisecond;
  wire.impairment_seed = seed * 2 + 1;
  sim::Link to_client(loop, wire, [&](net::Packet p) {
    c2->on_datagram(util::BytesView(p.payload));
  });
  to_client.set_fault_injector(&injector, 1);
  wire.impairment_seed = seed * 2 + 2;
  sim::Link to_server(loop, wire, [&](net::Packet p) {
    if (auto reply = server.handle(util::BytesView(p.payload))) {
      net::Packet r;
      r.payload = std::move(*reply);
      to_client.send(std::move(r));
    }
  });
  to_server.set_fault_injector(&injector, 0);

  controlplane::SyncClient::Config cfg;
  cfg.client_id = seed + 1000;
  cfg.poll_interval = 50 * kMillisecond;
  cfg.response_timeout = 100 * kMillisecond;
  cfg.backoff_base = 100 * kMillisecond;
  cfg.backoff_max = kSecond;
  cfg.stale_grace = 2 * kSecond;
  cfg.breaker_failure_threshold = 3;
  cfg.breaker_success_threshold = 2;
  controlplane::SyncClient client2(loop.clock(), tables2, cfg,
                                   [&](util::Bytes request) {
                                     net::Packet p;
                                     p.payload = std::move(request);
                                     to_server.send(std::move(p));
                                   });
  c2 = &client2;

  // Restore bridges the gap before the first (possibly fault-eaten)
  // exchange: last-known-good state enforces immediately.
  ASSERT_TRUE(client2.restore(saved));
  ASSERT_NE(tables2.peek(), nullptr);
  EXPECT_EQ(tables2.peek()->version(), 4u);
  ASSERT_NE(tables2.peek()->find(2), nullptr);
  EXPECT_TRUE(tables2.peek()->find(2)->revoked);
  EXPECT_TRUE(client2.running_on_restored_table());

  // The log moves on while the restarted middlebox fights through the
  // schedule.
  loop.at(2 * kSecond, [&] { log.append_add(make_descriptor(4)); });
  loop.at(3 * kSecond, [&] { log.append_revoke(1); });

  client2.start();
  std::function<void()> pump = [&] {
    client2.tick();
    loop.after(25 * kMillisecond, pump);
  };
  pump();
  bool published_gap = false;
  std::function<void()> watchdog = [&] {
    if (tables2.peek() == nullptr) published_gap = true;
    loop.after(100 * kMillisecond, watchdog);
  };
  watchdog();

  const Timestamp quiet = std::max(plan.quiet_after(), 6 * kSecond);
  loop.run_until(quiet + 5 * kSecond);

  EXPECT_FALSE(published_gap)
      << "restored table vanished before resync (fail-closed)";
  EXPECT_EQ(client2.applied_version(), log.version());
  EXPECT_EQ(tables2.peek()->version(), log.version());
  EXPECT_FALSE(client2.running_on_restored_table());
  EXPECT_FALSE(client2.stale());
  EXPECT_EQ(client2.breaker_state(), controlplane::BreakerState::kClosed);
  ASSERT_NE(tables2.peek()->find(1), nullptr);
  EXPECT_TRUE(tables2.peek()->find(1)->revoked);  // revoked mid-outage
  ASSERT_NE(tables2.peek()->find(4), nullptr);
  EXPECT_FALSE(tables2.peek()->find(4)->revoked);  // granted mid-outage

  // Past the budget, the same checkpoint must be refused: enforcing
  // arbitrarily old revocation state is worse than none.
  loop.run_until(saved.saved_at + 31 * kSecond);  // budget is 30 s
  controlplane::TablePublisher tables3;
  controlplane::SyncClient client3(loop.clock(), tables3, {},
                                   [](util::Bytes) {});
  EXPECT_FALSE(client3.restore(saved));
  EXPECT_EQ(tables3.peek(), nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosRestart,
                         ::testing::Range<uint64_t>(31, 39));

// --- Network edge under chaos (PR 6) -------------------------------
//
// Real loopback TCP through src/netio/ with seeded socket-fault
// schedules drawn from the FULL kind set (connection resets, accept
// stalls, half-open peers, layered on the core six). Two contracts:
//
//   1. exact fail-open accounting at the edge — the server's books
//      balance whatever the schedule does:  accepts = closes + live
//      (every admitted connection is eventually accounted, never
//      leaked), sheds are counted rather than silently dropped, and
//      the state gauges agree with the connection table;
//   2. the control plane rides it out — a real SyncClient behind a
//      TcpSyncTransport converges to the log head once the schedule
//      quiets, with its breaker closed (resets mid-snapshot cost a
//      retry, never a stuck-open breaker).

/// Run the netio loop on a background thread for the test body.
class NetioLoopThread {
 public:
  explicit NetioLoopThread(netio::EventLoop& loop) : loop_(loop) {
    thread_ = std::thread([this] { loop_.run(); });
  }
  ~NetioLoopThread() { stop(); }
  void stop() {
    if (thread_.joinable()) {
      loop_.stop();
      thread_.join();
    }
  }

 private:
  netio::EventLoop& loop_;
  std::thread thread_;
};

/// One short-lived storm client: blocking connect, one SyncRequest
/// frame, best-effort read, close. Any outcome is legal under chaos —
/// the server's ledger, not the client's luck, is what the test
/// asserts on.
void storm_client(uint16_t port, uint64_t client_id,
                  long timeout_ms = 200) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  timeval tv{0, timeout_ms * 1000};  // bounded: chaos may eat the reply
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    const util::Bytes request = controlplane::encode(
        controlplane::Message(controlplane::SyncRequest{client_id, 0}));
    (void)!::send(fd, request.data(), request.size(), MSG_NOSIGNAL);
    char buf[4096];
    (void)!::recv(fd, buf, sizeof(buf), 0);
  }
  ::close(fd);
}

class ChaosNetio : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosNetio, EdgeBooksBalanceAndClientConvergesOverTcp) {
  const uint64_t seed = GetParam();
  util::SystemClock clock;

  // A schedule over all nine core+socket kinds, rebased onto the wall
  // clock so it overlaps the storm below (the core kinds the netio
  // hooks ignore simply make the draw realistic — a box under chaos
  // sees both). Pinned to kSocketFaultKinds, not kFaultKindCount, so
  // these seeds keep their byte-identical schedules as later PRs
  // extend the enum (the audit throttle has its own suite).
  fault::FaultPlan::Spec spec;
  spec.horizon = 600 * kMillisecond;
  spec.events = 8;
  spec.min_duration = 40 * kMillisecond;
  spec.max_duration = 200 * kMillisecond;
  spec.max_magnitude = 0.7;  // most — not all — connections die
  spec.kinds = fault::kSocketFaultKinds;
  const fault::FaultPlan drawn = fault::FaultPlan::random(seed, spec);
  SCOPED_TRACE(trace_label(seed, drawn));
  fault::FaultPlan plan;
  const Timestamp base = clock.now() + 10 * kMillisecond;
  for (fault::FaultEvent e : drawn.events()) {
    e.start += base;
    plan.add(e);
  }
  telemetry::Registry registry;
  fault::Injector injector(registry);
  injector.arm(plan, seed);

  // A log big enough that the snapshot transfer has a mid-flight to be
  // reset in.
  controlplane::DescriptorLog log;
  for (cookies::CookieId id = 1; id <= 64; ++id) {
    log.append_add(make_descriptor(id));
  }
  controlplane::SyncServer server(log);

  netio::EventLoop loop(clock);
  netio::TcpServer::Config config;
  config.limits.idle_timeout = 2 * kSecond;
  config.limits.handshake_timeout = kSecond;
  auto tcp = netio::TcpServer::create(loop, config,
                                      netio::sync_protocol(server),
                                      &injector, registry);
  ASSERT_TRUE(tcp.has_value());
  NetioLoopThread driver(loop);

  // The persistent control-plane client the schedule must not strand.
  netio::TcpSyncTransport::Config tcfg;
  tcfg.port = (*tcp)->port();
  tcfg.reconnect_interval = 30 * kMillisecond;
  netio::TcpSyncTransport transport(loop, tcfg);
  controlplane::TablePublisher tables;
  controlplane::SyncClient::Config ccfg;
  ccfg.client_id = seed;
  ccfg.poll_interval = 20 * kMillisecond;
  ccfg.response_timeout = 60 * kMillisecond;
  ccfg.backoff_base = 40 * kMillisecond;
  ccfg.backoff_max = 200 * kMillisecond;
  ccfg.breaker_failure_threshold = 3;
  ccfg.breaker_success_threshold = 2;
  controlplane::SyncClient client(clock, tables, ccfg, transport.send_fn());
  client.start();

  // Storm + pump until the schedule is spent, then give recovery a
  // quiet grace. Live log churn lands mid-schedule like ChaosSync's.
  uint64_t storm_id = 1000;
  bool churned = false;
  const Timestamp quiet = base + drawn.quiet_after();
  while (clock.now() < quiet + 3 * kSecond) {  // grace; breaks early
    if (!churned && clock.now() > base + 200 * kMillisecond) {
      log.append_add(make_descriptor(100));
      log.append_revoke(7);
      churned = true;
    }
    if (clock.now() < quiet) storm_client((*tcp)->port(), ++storm_id);
    transport.poll([&](util::BytesView d) { client.on_datagram(d); });
    client.tick();
    if (clock.now() >= quiet &&
        client.applied_version() == log.version() &&
        client.breaker_state() == controlplane::BreakerState::kClosed) {
      break;  // converged: no need to burn the rest of the grace
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Contract 2: converged, breaker closed, table at the head.
  EXPECT_EQ(client.applied_version(), log.version());
  EXPECT_EQ(client.breaker_state(), controlplane::BreakerState::kClosed);
  ASSERT_NE(tables.peek(), nullptr);
  EXPECT_EQ(tables.peek()->version(), log.version());
  ASSERT_NE(tables.peek()->find(7), nullptr);
  EXPECT_TRUE(tables.peek()->find(7)->revoked);

  // Contract 1: exact books once the edge settles. Storm clients have
  // all closed their ends; wait for the server to finish reaping, then
  // reconcile counters against the live table on the loop thread.
  auto& metrics = (*tcp)->metrics();
  const auto settled = [&] {
    uint64_t live = 0;
    std::atomic<bool> done{false};
    loop.post([&] {
      live = (*tcp)->connection_count();
      done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return metrics.accepts.value() == metrics.closes.value() + live;
  };
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!settled() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(metrics.accepts.value(),
            metrics.closes.value() +
                static_cast<uint64_t>(
                    metrics.connections(netio::ConnState::kHandshake) +
                    metrics.connections(netio::ConnState::kOpen) +
                    metrics.connections(netio::ConnState::kDraining)))
      << "an admitted connection leaked from the ledger";
  EXPECT_GT(metrics.accepts.value(), 0u) << "the storm never landed";
  EXPECT_GT(metrics.frames.value(), 0u) << "no sync frame was ever served";

  driver.stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosNetio,
                         ::testing::Range<uint64_t>(41, 47));

// Accept stall during an acquire storm: the edge stops admitting, the
// issuing path keeps granting (fail-open — the stall is an edge fault,
// not a service outage), the books count the stall window's sheds and
// balance once it lifts.
TEST(ChaosNetioStall, AcquireStormRidesOutAcceptStall) {
  util::SystemClock clock;
  telemetry::Registry registry;
  fault::Injector injector(registry);

  fault::FaultPlan plan;
  fault::FaultEvent stall;
  stall.kind = fault::FaultKind::kAcceptStall;
  stall.start = clock.now() + 50 * kMillisecond;
  stall.duration = 250 * kMillisecond;
  plan.add(stall);
  injector.arm(plan, 7);

  controlplane::DescriptorLog log;
  controlplane::SyncServer server(log);
  server::CookieServer cookie_server(clock, 7, &log);
  server::ServiceOffer offer;
  offer.name = "Boost";
  cookie_server.add_service(offer);

  netio::EventLoop loop(clock);
  auto tcp = netio::TcpServer::create(loop, {}, netio::sync_protocol(server),
                                      &injector, registry);
  ASSERT_TRUE(tcp.has_value());
  NetioLoopThread driver(loop);

  // Storm through the stall window; every acquire must keep granting.
  const Timestamp stall_end = stall.start + stall.duration;
  uint64_t acquires = 0;
  uint64_t storm_id = 2000;
  while (clock.now() < stall_end + 100 * kMillisecond) {
    const auto grant = cookie_server.acquire("Boost", "storm");
    ASSERT_TRUE(grant.ok()) << "issuing path failed during an edge stall";
    ++acquires;
    // Short read timeout: inside the stall window nothing is accepted,
    // so every read times out — the storm must still turn over fast
    // enough to probe the whole window.
    storm_client((*tcp)->port(), ++storm_id, /*timeout_ms=*/50);
  }
  EXPECT_GT(acquires, 4u);

  // The stall window deferred admissions without losing them: clients
  // that connected into the listen backlog complete once it lifts.
  auto& metrics = (*tcp)->metrics();
  EXPECT_GT(metrics.accepts.value(), 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (metrics.accepts.value() != metrics.closes.value() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(metrics.accepts.value(), metrics.closes.value());

  driver.stop();
}

// --- Encrypted transport under chaos (PR 10) -----------------------
//
// The QUIC-shaped trace through the threaded Dataplane facade while a
// full-kind-set schedule lands — migrations (kNatRebind) composed with
// admission pressure, skew, pauses, whatever the seed draws. Three
// events are pinned on top of every random schedule so the composition
// the PR cares about (migrate + shed + skew) happens on every seed.
// Invariants, in the suite's three shapes:
//   fail-open      — the shed ledger balances exactly and the arena
//                    leaks nothing;
//   replay safety  — accepts never exceed the cookie-bearing
//                    connections (each cookie is presented once);
//   no false boost — a band-0 verdict only ever lands on a connection
//                    that actually presented a cookie, faults or not.

class ChaosQuic : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosQuic, MigrationComposesWithPressureAndSkew) {
  const uint64_t seed = GetParam();
  util::SystemClock wall;
  fault::Injector injector;
  fault::SkewedClock clock(wall, injector);

  fault::FaultPlan::Spec spec;
  spec.horizon = 30 * kMillisecond;
  spec.min_duration = 5 * kMillisecond;
  spec.max_duration = 15 * kMillisecond;
  spec.max_magnitude = 0.5;
  spec.kinds = fault::kFaultKindCount;  // full set, kNatRebind included
  const fault::FaultPlan drawn = fault::FaultPlan::random(seed, spec);
  SCOPED_TRACE(trace_label(seed, drawn));

  fault::FaultPlan plan;
  const Timestamp base = wall.now() + 2 * kMillisecond;
  for (fault::FaultEvent e : drawn.events()) {
    e.start += base;
    plan.add(e);
  }
  // The guaranteed composition: every connection migrates, a pressure
  // burst sheds, a skew window pushes the verifier past the NCT.
  plan.add({fault::FaultKind::kNatRebind, base, 30 * kMillisecond, 1.0});
  plan.add({fault::FaultKind::kQueuePressure, base + 5 * kMillisecond,
            10 * kMillisecond, 0.3});
  plan.add({fault::FaultKind::kClockSkew, base + 12 * kMillisecond,
            8 * kMillisecond, 1.0, 8 * kSecond});
  injector.arm(plan, seed);

  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  runtime::Dataplane::Config config;
  config.pool.workers = 2;
  config.pool.verdict_capacity = 1 << 12;
  runtime::Dataplane plane(clock, registry, config);
  plane.set_fault_injector(&injector);

  quic::QuicTraceGenerator::Config wl;
  wl.connections = 32;
  wl.packets_per_connection = 60;
  wl.rotate_every = 10;
  wl.cookie_fraction = 0.75;  // non-cookie conns probe the no-false-boost side
  util::ManualClock mint_clock(wall.now());  // producer thread only
  cookies::CookieVerifier staging(mint_clock);
  quic::QuicTraceGenerator gen(wl, mint_clock, &staging, seed);
  for (const auto& d : gen.descriptors()) plane.add_descriptor(d);
  gen.set_fault_injector(&injector);
  plane.start();

  const size_t total = gen.total_packets();
  for (size_t i = 0; i < total; ++i) {
    runtime::PacketHandle h = plane.make_packet();
    while (!h) {
      std::this_thread::yield();
      h = plane.make_packet();
    }
    gen.fill_next(*h);
    mint_clock.advance(50);
    plane.ingest(std::move(h));  // non-blocking: pressure really sheds
    // Stretch the producer across the real-time fault window.
    if ((i & 7) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  while (injector.any_active(wall.now())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  plane.drain();
  plane.stop();

  // Fail-open: the books balance and every arena slot came home.
  const runtime::WorkerSnapshot totals = plane.snapshot().totals();
  EXPECT_EQ(totals.processed + totals.shed, total) << "ledger imbalance";
  EXPECT_EQ(plane.arena().outstanding(), 0u) << "arena leaked slots";

  // The pinned kNatRebind event really migrated connections.
  uint32_t migrations = 0, cookie_conns = 0;
  for (size_t c = 0; c < wl.connections; ++c) {
    migrations += gen.connection(c).migrations;
    if (gen.connection(c).has_cookie) ++cookie_conns;
  }
  EXPECT_GT(migrations, 0u);
  EXPECT_GT(injector.injected(fault::FaultKind::kNatRebind), 0u);

  // Replay safety: one accept ceiling per presented cookie — sheds and
  // skew may cost accepts, never add them.
  EXPECT_LE(plane.total_verified(), cookie_conns);
  EXPECT_LE(plane.total_replays_detected(), plane.total_verified());

  // No false boost: a band-0 verdict can only belong to a connection
  // that presented a cookie, no matter how the faults fragmented flow
  // state. (Fail-open may COST cookie connections their action — a
  // shed handshake or rotation marker, a skewed verify — but must
  // never GRANT one to best-effort traffic.)
  std::vector<runtime::VerdictRecord> verdicts;
  plane.drain_verdicts(verdicts);
  EXPECT_EQ(verdicts.size(), totals.processed);
  uint64_t boosted = 0;
  for (const auto& v : verdicts) {
    if (!v.has_action) continue;
    ++boosted;
    ASSERT_LT(v.seq, wl.connections);
    EXPECT_TRUE(gen.connection(v.seq).has_cookie)
        << "best-effort connection " << v.seq << " got band 0";
  }
  // And the mechanism did work for someone: with magnitude-capped
  // faults most handshakes land, so boosts exist.
  EXPECT_GT(boosted, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosQuic,
                         ::testing::Range<uint64_t>(61, 64));

}  // namespace
}  // namespace nnn
