// Crypto substrate: SHA-256 against FIPS/NIST vectors, HMAC-SHA256
// against RFC 4231, constant-time compare, UUIDs.
#include <gtest/gtest.h>

#include "crypto/constant_time.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/uuid.h"
#include "util/hex.h"
#include "util/rng.h"

namespace nnn::crypto {
namespace {

using util::BytesView;
using util::hex_encode;

std::string sha256_hex(std::string_view msg) {
  const auto digest = Sha256::hash(msg);
  return hex_encode(BytesView(digest.data(), digest.size()));
}

TEST(Sha256, NistVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const auto digest = h.finish();
  EXPECT_EQ(hex_encode(BytesView(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    util::Bytes data(1 + rng.next_u64(300));
    for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
    Sha256 h;
    size_t pos = 0;
    while (pos < data.size()) {
      const size_t take =
          std::min<size_t>(1 + rng.next_u64(70), data.size() - pos);
      h.update(BytesView(data.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(h.finish(), Sha256::hash(BytesView(data)));
  }
}

TEST(Sha256, PaddingBoundaries) {
  // Lengths straddling the 55/56/64-byte padding edges.
  for (const size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'x');
    Sha256 incremental;
    incremental.update(msg);
    EXPECT_EQ(incremental.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

std::string hmac_hex(BytesView key, BytesView data) {
  const auto digest = hmac_sha256(key, data);
  return hex_encode(BytesView(digest.data(), digest.size()));
}

TEST(Hmac, Rfc4231Case1) {
  const util::Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_hex(BytesView(key), BytesView(util::to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      hmac_hex(BytesView(util::to_bytes("Jefe")),
               BytesView(util::to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const util::Bytes key(20, 0xaa);
  const util::Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_hex(BytesView(key), BytesView(data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231LongKey) {
  // Case 6: key longer than the block size gets hashed first.
  const util::Bytes key(131, 0xaa);
  EXPECT_EQ(
      hmac_hex(BytesView(key),
               BytesView(util::to_bytes(
                   "Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, CookieTagIsTruncatedHmac) {
  const auto key = util::to_bytes("k");
  const auto data = util::to_bytes("d");
  const auto full = hmac_sha256(BytesView(key), BytesView(data));
  const auto tag = cookie_tag(BytesView(key), BytesView(data));
  EXPECT_TRUE(std::equal(tag.begin(), tag.end(), full.begin()));
  EXPECT_EQ(tag.size(), kCookieTagSize);
}

TEST(ConstantTime, EqualAndUnequal) {
  const util::Bytes a = {1, 2, 3};
  const util::Bytes b = {1, 2, 3};
  const util::Bytes c = {1, 2, 4};
  const util::Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(BytesView(a), BytesView(b)));
  EXPECT_FALSE(constant_time_equal(BytesView(a), BytesView(c)));
  EXPECT_FALSE(constant_time_equal(BytesView(a), BytesView(d)));
  EXPECT_TRUE(constant_time_equal(BytesView(), BytesView()));
}

TEST(Uuid, GenerateSetsVersionAndVariant) {
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Uuid u = Uuid::generate(rng);
    EXPECT_EQ(u.bytes()[6] & 0xf0, 0x40);  // version 4
    EXPECT_EQ(u.bytes()[8] & 0xc0, 0x80);  // variant 10
    EXPECT_FALSE(u.is_nil());
  }
}

TEST(Uuid, TextRoundtrip) {
  util::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Uuid u = Uuid::generate(rng);
    const auto parsed = Uuid::parse(u.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, u);
  }
}

TEST(Uuid, ParseRejectsMalformed) {
  EXPECT_FALSE(Uuid::parse("").has_value());
  EXPECT_FALSE(Uuid::parse("not-a-uuid").has_value());
  EXPECT_FALSE(
      Uuid::parse("123456781234-1234-1234-123456789012").has_value());
  EXPECT_FALSE(
      Uuid::parse("zzzzzzzz-1234-1234-1234-123456789012").has_value());
}

TEST(Uuid, GenerationIsUnique) {
  util::Rng rng(3);
  std::set<std::string> seen;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(Uuid::generate(rng).to_string()).second);
  }
}

}  // namespace
}  // namespace nnn::crypto
