// Dataplane: QoS primitives, flow table, middlebox, zero-rating.
#include <gtest/gtest.h>

#include "cookies/generator.h"
#include "cookies/transport.h"
#include "dataplane/flow_table.h"
#include "dataplane/middlebox.h"
#include "dataplane/qos.h"
#include "dataplane/service_registry.h"
#include "dataplane/zero_rating.h"
#include "net/http.h"
#include "util/clock.h"

namespace nnn::dataplane {
namespace {

using util::kSecond;

TEST(TokenBucket, StartsFullAndDrains) {
  TokenBucket bucket(8000.0, 1000, 0);  // 1000 B/s refill, 1000 B burst
  EXPECT_TRUE(bucket.try_consume(600, 0));
  EXPECT_TRUE(bucket.try_consume(400, 0));
  EXPECT_FALSE(bucket.try_consume(1, 0));
}

TEST(TokenBucket, RefillsAtConfiguredRate) {
  TokenBucket bucket(8000.0, 1000, 0);
  bucket.try_consume(1000, 0);
  // After 0.5 s: 500 bytes back.
  EXPECT_FALSE(bucket.try_consume(501, kSecond / 2));
  EXPECT_TRUE(bucket.try_consume(500, kSecond / 2));
  // Tokens cap at the burst size.
  EXPECT_NEAR(bucket.tokens(100 * kSecond), 1000.0, 1e-6);
}

TEST(TokenBucket, ConformsDoesNotSpend) {
  TokenBucket bucket(8000.0, 1000, 0);
  EXPECT_TRUE(bucket.conforms(1000, 0));
  EXPECT_TRUE(bucket.try_consume(1000, 0));  // still there
}

net::Packet sized_packet(uint32_t size) {
  net::Packet p;
  p.wire_size = size;
  return p;
}

TEST(PriorityQueueSet, StrictPriorityOrder) {
  PriorityQueueSet queues(3, 1 << 20);
  queues.enqueue(sized_packet(100), 2);
  queues.enqueue(sized_packet(200), 0);
  queues.enqueue(sized_packet(300), 1);
  EXPECT_EQ(queues.dequeue()->size(), 200u);
  EXPECT_EQ(queues.dequeue()->size(), 300u);
  EXPECT_EQ(queues.dequeue()->size(), 100u);
  EXPECT_FALSE(queues.dequeue().has_value());
}

TEST(PriorityQueueSet, FifoWithinBand) {
  PriorityQueueSet queues(1, 1 << 20);
  queues.enqueue(sized_packet(1), 0);
  queues.enqueue(sized_packet(2), 0);
  queues.enqueue(sized_packet(3), 0);
  EXPECT_EQ(queues.dequeue()->size(), 1u);
  EXPECT_EQ(queues.dequeue()->size(), 2u);
  EXPECT_EQ(queues.dequeue()->size(), 3u);
}

TEST(PriorityQueueSet, TailDropOnOverflow) {
  PriorityQueueSet queues(2, 250);
  EXPECT_TRUE(queues.enqueue(sized_packet(100), 0));
  EXPECT_TRUE(queues.enqueue(sized_packet(100), 0));
  EXPECT_FALSE(queues.enqueue(sized_packet(100), 0));  // over 250 B
  EXPECT_EQ(queues.stats(0).dropped, 1u);
  EXPECT_EQ(queues.stats(0).enqueued, 2u);
  // The other band has its own budget.
  EXPECT_TRUE(queues.enqueue(sized_packet(100), 1));
}

TEST(PriorityQueueSet, BandClampAndPerBandOps) {
  PriorityQueueSet queues(2, 1 << 20);
  queues.enqueue(sized_packet(7), 99);  // clamped to last band
  EXPECT_TRUE(queues.band_empty(0));
  ASSERT_FALSE(queues.band_empty(1));
  EXPECT_EQ(queues.peek_band(1).size(), 7u);
  EXPECT_EQ(queues.dequeue_band(1)->size(), 7u);
  EXPECT_TRUE(queues.empty());
}

TEST(FlowTable, SniffWindowProgression) {
  util::ManualClock clock(0);
  FlowTable table(3);
  net::FiveTuple t;
  t.src_port = 1;
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(table.touch(t, 100, clock.now()).state, FlowState::kSniffing)
        << "packet " << i;
  }
  EXPECT_EQ(table.touch(t, 100, clock.now()).state, FlowState::kBestEffort);
}

TEST(FlowTable, MapFlowCoversReverse) {
  util::ManualClock clock(0);
  FlowTable table;
  net::FiveTuple t;
  t.src_port = 10;
  t.dst_port = 20;
  table.map_flow(t, "Boost", 0, /*include_reverse=*/true);
  ASSERT_NE(table.find(t), nullptr);
  EXPECT_EQ(table.find(t)->state, FlowState::kMapped);
  ASSERT_NE(table.find(t.reversed()), nullptr);
  EXPECT_EQ(table.find(t.reversed())->service_data, "Boost");
}

TEST(FlowTable, IdleExpiry) {
  FlowTable table(3, 10 * kSecond);
  net::FiveTuple t;
  t.src_port = 5;
  table.touch(t, 100, 0);
  EXPECT_EQ(table.expire_idle(5 * kSecond), 0u);
  EXPECT_EQ(table.expire_idle(11 * kSecond), 1u);
  EXPECT_EQ(table.find(t), nullptr);
  EXPECT_EQ(table.stats().flows_expired, 1u);
}

// --- middlebox fixture ---

class MiddleboxTest : public ::testing::Test {
 protected:
  MiddleboxTest()
      : clock_(1000 * kSecond),
        verifier_(clock_),
        middlebox_(clock_, verifier_, registry_) {
    descriptor_.cookie_id = 1;
    descriptor_.key.assign(32, 0x42);
    descriptor_.service_data = "Boost";
    verifier_.add_descriptor(descriptor_);
    registry_.bind("Boost", PriorityAction{0});
  }

  cookies::CookieGenerator generator() {
    return cookies::CookieGenerator(descriptor_, clock_, 7);
  }

  net::Packet flow_packet(uint16_t src_port, uint32_t size = 500) {
    net::Packet p;
    p.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
    p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
    p.tuple.src_port = src_port;
    p.tuple.dst_port = 80;
    p.wire_size = size;
    return p;
  }

  net::Packet cookie_packet(uint16_t src_port,
                            cookies::CookieGenerator& gen) {
    net::Packet p = flow_packet(src_port);
    net::http::Request r("GET", "/", "example.com");
    const std::string text = r.serialize();
    p.payload.assign(text.begin(), text.end());
    p.wire_size = 0;
    cookies::attach(p, gen.generate(), cookies::Transport::kHttpHeader);
    return p;
  }

  util::ManualClock clock_;
  cookies::CookieVerifier verifier_;
  ServiceRegistry registry_;
  cookies::CookieDescriptor descriptor_;
  Middlebox middlebox_;
};

TEST_F(MiddleboxTest, CookieMapsFlowAndReverse) {
  auto gen = generator();
  net::Packet request = cookie_packet(4000, gen);
  const Verdict verdict = middlebox_.process(request);
  EXPECT_TRUE(verdict.mapped_now);
  ASSERT_TRUE(verdict.action.has_value());
  EXPECT_TRUE(std::holds_alternative<PriorityAction>(*verdict.action));

  // Later packets of the flow take the fast path.
  net::Packet data = flow_packet(4000);
  const Verdict v2 = middlebox_.process(data);
  EXPECT_TRUE(v2.action.has_value());
  EXPECT_FALSE(v2.mapped_now);
  EXPECT_EQ(middlebox_.stats().task_map_only, 1u);

  // Reverse direction mapped too.
  net::Packet reverse = flow_packet(4000);
  reverse.tuple = reverse.tuple.reversed();
  EXPECT_TRUE(middlebox_.process(reverse).action.has_value());
}

TEST_F(MiddleboxTest, NoCookieMeansBestEffort) {
  net::Packet p = flow_packet(4001);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(middlebox_.process(p).action.has_value());
  }
  EXPECT_EQ(middlebox_.stats().task_search, 3u);      // sniff window
  EXPECT_EQ(middlebox_.stats().task_map_only, 2u);    // settled
}

TEST_F(MiddleboxTest, CookieAfterSniffWindowIgnored) {
  auto gen = generator();
  net::Packet p1 = flow_packet(4002);
  net::Packet p2 = flow_packet(4002);
  net::Packet p3 = flow_packet(4002);
  middlebox_.process(p1);
  middlebox_.process(p2);
  middlebox_.process(p3);
  net::Packet late = cookie_packet(4002, gen);
  const Verdict verdict = middlebox_.process(late);
  EXPECT_FALSE(verdict.action.has_value());
  EXPECT_FALSE(verdict.mapped_now);
}

TEST_F(MiddleboxTest, InvalidCookieFailsOpen) {
  auto gen = generator();
  net::Packet p = cookie_packet(4003, gen);
  // Corrupt the descriptor key so verification fails.
  verifier_.remove(1);
  cookies::CookieDescriptor wrong = descriptor_;
  wrong.key.assign(32, 0x24);
  verifier_.add_descriptor(wrong);
  const Verdict verdict = middlebox_.process(p);
  EXPECT_FALSE(verdict.action.has_value());
  ASSERT_TRUE(verdict.verify_status.has_value());
  EXPECT_EQ(*verdict.verify_status, cookies::VerifyStatus::kBadSignature);
  // Packet is not dropped — the caller just gets best-effort.
}

TEST_F(MiddleboxTest, ReplayedCookieDoesNotMapSecondFlow) {
  auto gen = generator();
  net::Packet first = cookie_packet(4004, gen);
  middlebox_.process(first);

  // An eavesdropper replays the same wire bytes on their own flow.
  net::Packet replay = first;
  replay.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 66);
  const Verdict verdict = middlebox_.process(replay);
  EXPECT_FALSE(verdict.action.has_value());
  EXPECT_EQ(*verdict.verify_status, cookies::VerifyStatus::kReplayed);
}

TEST_F(MiddleboxTest, ProcessBatchMatchesSequential) {
  // Differential: a mixed burst through process_batch must produce the
  // same verdicts, stats, and flow states as process() one packet at a
  // time. The burst deliberately contains the awkward cases: a flow's
  // data packet right behind its own cookie, an in-burst replay on a
  // different flow, a reverse-direction packet of a still-pending
  // mapping, and a forged signature.
  cookies::CookieVerifier verifier_seq(clock_);
  verifier_seq.add_descriptor(descriptor_);
  Middlebox sequential(clock_, verifier_seq, registry_);

  auto gen = generator();
  std::vector<net::Packet> burst;
  burst.push_back(cookie_packet(5000, gen));   // 0: maps flow 5000
  burst.push_back(flow_packet(5000));          // 1: same flow, same burst
  burst.push_back(cookie_packet(5001, gen));   // 2: maps flow 5001
  net::Packet replay = burst[0];               // 3: replayed wire bytes
  replay.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 66);
  burst.push_back(replay);
  burst.push_back(flow_packet(5002));          // 4: plain new flow
  net::Packet forged = cookie_packet(5003, gen);
  forged.payload[forged.payload.size() / 2] ^= 0x01;  // 5: corrupt cookie
  burst.push_back(forged);
  net::Packet reverse = flow_packet(5001);     // 6: reverse of pending map
  reverse.tuple = reverse.tuple.reversed();
  burst.push_back(reverse);
  burst.push_back(cookie_packet(5004, gen));   // 7: one more mapping
  burst.push_back(flow_packet(5001));          // 8: mapped fast path
  burst.push_back(flow_packet(5002));          // 9: sniffing, no cookie

  std::vector<net::Packet> copy = burst;
  std::vector<Verdict> expected;
  expected.reserve(copy.size());
  for (auto& packet : copy) expected.push_back(sequential.process(packet));

  std::vector<Verdict> batched(burst.size());
  middlebox_.process_batch(burst, batched);

  for (size_t i = 0; i < burst.size(); ++i) {
    EXPECT_EQ(batched[i].action.has_value(), expected[i].action.has_value())
        << "packet " << i;
    EXPECT_EQ(batched[i].service_data, expected[i].service_data)
        << "packet " << i;
    EXPECT_EQ(batched[i].mapped_now, expected[i].mapped_now)
        << "packet " << i;
    EXPECT_EQ(batched[i].verify_status, expected[i].verify_status)
        << "packet " << i;
    EXPECT_EQ(burst[i].dscp, copy[i].dscp) << "packet " << i;
  }
  EXPECT_EQ(middlebox_.stats().task_search, sequential.stats().task_search);
  EXPECT_EQ(middlebox_.stats().task_search_and_verify,
            sequential.stats().task_search_and_verify);
  EXPECT_EQ(middlebox_.stats().task_map_only,
            sequential.stats().task_map_only);
  EXPECT_EQ(middlebox_.stats().packets, sequential.stats().packets);
  EXPECT_EQ(middlebox_.stats().bytes, sequential.stats().bytes);
  EXPECT_EQ(verifier_.stats(), verifier_seq.stats());
  EXPECT_EQ(middlebox_.flows().size(), sequential.flows().size());
}

TEST_F(MiddleboxTest, ProcessBatchRemarksDscp) {
  // DSCP remark mode through the batch path: the cookie packet and the
  // mapped follow-up both get remarked, exactly as process() would.
  Middlebox::Config config;
  config.remark_dscp = 46;
  cookies::CookieVerifier verifier(clock_);
  verifier.add_descriptor(descriptor_);
  Middlebox box(clock_, verifier, registry_, config);

  auto gen = generator();
  std::vector<net::Packet> burst;
  burst.push_back(cookie_packet(5100, gen));
  burst.push_back(flow_packet(5100));
  burst.push_back(flow_packet(5101));  // unmapped: untouched dscp
  std::vector<Verdict> verdicts(burst.size());
  box.process_batch(burst, verdicts);
  EXPECT_EQ(burst[0].dscp, 46);
  EXPECT_EQ(burst[1].dscp, 46);
  EXPECT_EQ(burst[2].dscp, 0);
  EXPECT_TRUE(verdicts[0].mapped_now);
  EXPECT_TRUE(verdicts[1].action.has_value());
  EXPECT_FALSE(verdicts[2].action.has_value());
}

TEST_F(MiddleboxTest, UnboundServiceDataYieldsNoAction) {
  cookies::CookieDescriptor other = descriptor_;
  other.cookie_id = 2;
  other.service_data = "UnknownService";
  verifier_.add_descriptor(other);
  cookies::CookieGenerator gen(other, clock_, 8);
  net::Packet p = cookie_packet(4005, gen);
  const Verdict verdict = middlebox_.process(p);
  EXPECT_TRUE(verdict.mapped_now);  // cookie verified...
  EXPECT_FALSE(verdict.action.has_value());  // ...but no policy bound
  EXPECT_EQ(verdict.service_data, "UnknownService");
}

TEST_F(MiddleboxTest, DscpRemarkMode) {
  Middlebox::Config config;
  config.remark_dscp = 46;
  Middlebox remarker(clock_, verifier_, registry_, config);
  auto gen = generator();
  net::Packet p = cookie_packet(4006, gen);
  remarker.process(p);
  EXPECT_EQ(p.dscp, 46);
  net::Packet plain = flow_packet(4007);
  remarker.process(plain);
  EXPECT_EQ(plain.dscp, 0);
}

TEST_F(MiddleboxTest, TaskCountersMatchPaperTaxonomy) {
  auto gen = generator();
  net::Packet request = cookie_packet(4008, gen);
  middlebox_.process(request);                  // search+verify
  net::Packet data = flow_packet(4008);
  middlebox_.process(data);                     // map only
  net::Packet other = flow_packet(4009);
  middlebox_.process(other);                    // search, nothing
  const auto& stats = middlebox_.stats();
  EXPECT_EQ(stats.task_search_and_verify, 1u);
  EXPECT_EQ(stats.task_map_only, 1u);
  EXPECT_EQ(stats.task_search, 1u);
  EXPECT_EQ(stats.packets, 3u);
}

TEST_F(MiddleboxTest, ZeroRatingAccounting) {
  ZeroRatingLedger ledger(10'000'000);
  registry_.bind("ZeroRate", ZeroRateAction{});
  cookies::CookieDescriptor zr = descriptor_;
  zr.cookie_id = 3;
  zr.service_data = "ZeroRate";
  verifier_.add_descriptor(zr);
  cookies::CookieGenerator gen(zr, clock_, 9);

  const auto subscriber = net::IpAddress::v4(192, 168, 1, 10);
  net::Packet request = cookie_packet(5000, gen);
  const uint32_t request_size = request.size();
  middlebox_.process_and_account(request, ledger, subscriber);
  net::Packet data = flow_packet(5000, 1000);
  middlebox_.process_and_account(data, ledger, subscriber);
  net::Packet other = flow_packet(5001, 700);
  middlebox_.process_and_account(other, ledger, subscriber);

  const auto usage = ledger.usage(subscriber);
  EXPECT_EQ(usage.free_bytes, request_size + 1000u);
  EXPECT_EQ(usage.charged_bytes, 700u);
}

TEST(ZeroRatingLedger, CapSemantics) {
  ZeroRatingLedger ledger(1000);
  const auto ip = net::IpAddress::v4(10, 0, 0, 1);
  EXPECT_EQ(ledger.remaining_cap(ip).value(), 1000u);
  ledger.record(ip, 600, /*free=*/false);
  EXPECT_EQ(ledger.remaining_cap(ip).value(), 400u);
  EXPECT_FALSE(ledger.over_cap(ip));
  // Zero-rated bytes never count against the cap.
  ledger.record(ip, 100'000, /*free=*/true);
  EXPECT_EQ(ledger.remaining_cap(ip).value(), 400u);
  ledger.record(ip, 400, /*free=*/false);
  EXPECT_TRUE(ledger.over_cap(ip));
  ledger.reset();
  EXPECT_FALSE(ledger.over_cap(ip));
  EXPECT_EQ(ledger.usage(ip).total(), 0u);
}

TEST(ZeroRatingLedger, UncappedAccounts) {
  ZeroRatingLedger ledger;
  const auto ip = net::IpAddress::v4(10, 0, 0, 2);
  ledger.record(ip, 1'000'000'000, false);
  EXPECT_FALSE(ledger.remaining_cap(ip).has_value());
  EXPECT_FALSE(ledger.over_cap(ip));
}

TEST(ServiceRegistry, BindLookupUnbind) {
  ServiceRegistry registry;
  registry.bind("Boost", PriorityAction{0});
  registry.bind("Slow", RateLimitAction{1e6, 1500});
  ASSERT_TRUE(registry.lookup("Boost").has_value());
  EXPECT_TRUE(std::holds_alternative<PriorityAction>(*registry.lookup("Boost")));
  EXPECT_FALSE(registry.lookup("Missing").has_value());
  EXPECT_TRUE(registry.unbind("Boost"));
  EXPECT_FALSE(registry.lookup("Boost").has_value());
  EXPECT_FALSE(registry.unbind("Boost"));
  // Rebinding replaces.
  registry.bind("Slow", DscpRemarkAction{10});
  EXPECT_TRUE(std::holds_alternative<DscpRemarkAction>(*registry.lookup("Slow")));
}

TEST(ServiceRegistry, ActionToString) {
  EXPECT_EQ(to_string(ServiceAction{PriorityAction{2}}), "priority(band=2)");
  EXPECT_EQ(to_string(ServiceAction{ZeroRateAction{}}), "zero-rate");
  EXPECT_EQ(to_string(ServiceAction{DscpRemarkAction{46}}),
            "dscp-remark(46)");
}

}  // namespace
}  // namespace nnn::dataplane
