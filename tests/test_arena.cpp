// PacketArena + the shared steering hash (PR 8 zero-copy dataplane):
// freelist soundness, handle ownership, per-thread caches, fail-open
// exhaustion, and the fixed vectors that pin util::mix64 /
// util::steer_shard across platforms. The concurrent tests are TSan
// targets — they validate that the Treiber-stack publication edge
// (release push CAS -> acquire pop CAS) carries slot contents between
// threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "runtime/arena.h"
#include "util/hash.h"

namespace nnn::runtime {
namespace {

// --- Steering hash fixed vectors -----------------------------------

/// The splitmix64 finalizer, pinned. FlatTable seed mixing and the RX
/// demux steer through the same function, so these vectors guarantee
/// cross-platform-stable shard assignment (a cookie id lands on the
/// same worker on every build — §4.6 descriptor affinity must not
/// depend on the host).
TEST(SteeringHash, Mix64FixedVectors) {
  EXPECT_EQ(util::mix64(0u), 0u);
  EXPECT_EQ(util::mix64(1u), 0x5692161d100b05e5ull);
  EXPECT_EQ(util::mix64(2u), 0xdbd238973a2b148aull);
  EXPECT_EQ(util::mix64(0xdeadbeefull), 0x4e062702ec929eeaull);
  EXPECT_EQ(util::mix64(0x123456789abcdef0ull), 0x9629f58e8ec5b906ull);
  EXPECT_EQ(util::mix64(~0ull), 0xb4d055fcf2cbbd7bull);
}

TEST(SteeringHash, SteerShardFixedVectors) {
  // Derived from the vectors above; any change to these is a
  // rebalancing event for deployed descriptor->worker pinning.
  EXPECT_EQ(util::steer_shard(1, 2), 1u);
  EXPECT_EQ(util::steer_shard(1, 8), 5u);
  EXPECT_EQ(util::steer_shard(2, 4), 2u);
  EXPECT_EQ(util::steer_shard(3, 8), 0u);
  EXPECT_EQ(util::steer_shard(4, 8), 4u);
  // Degenerate shard counts collapse to 0 instead of dividing by zero.
  EXPECT_EQ(util::steer_shard(99, 1), 0u);
  EXPECT_EQ(util::steer_shard(99, 0), 0u);
}

/// Sequential cookie ids (the control plane hands them out that way)
/// must spread, not stripe — the reason steer_shard exists at all.
TEST(SteeringHash, SequentialIdsBalanceAcrossShards) {
  constexpr size_t kShards = 8;
  constexpr uint64_t kIds = 10'000;
  std::vector<size_t> load(kShards, 0);
  for (uint64_t id = 1; id <= kIds; ++id) {
    ++load[util::steer_shard(id, kShards)];
  }
  const size_t expect = kIds / kShards;
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(load[s], expect / 2) << "shard " << s << " starved";
    EXPECT_LT(load[s], expect * 2) << "shard " << s << " overloaded";
  }
}

// --- Arena basics ---------------------------------------------------

TEST(PacketArena, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(PacketArena(5).capacity(), 8u);
  EXPECT_EQ(PacketArena(64).capacity(), 64u);
  EXPECT_EQ(PacketArena(1).capacity(), 2u);
}

TEST(PacketArena, AllocExhaustReleaseRecycle) {
  PacketArena arena(4);
  std::vector<PacketHandle> held;
  for (int i = 0; i < 4; ++i) {
    PacketHandle h = arena.try_alloc();
    ASSERT_TRUE(h);
    h->seq = static_cast<uint32_t>(100 + i);
    held.push_back(std::move(h));
  }
  EXPECT_EQ(arena.outstanding(), 4u);
  // Exhausted: fail-open, empty handle, counted — never a block.
  PacketHandle overflow = arena.try_alloc();
  EXPECT_FALSE(overflow);
  EXPECT_EQ(arena.alloc_failures(), 1u);
  // Release one; the next alloc succeeds and sees the recycled slot.
  const uint32_t released_slot = held.back().slot();
  held.pop_back();  // ~PacketHandle releases
  PacketHandle again = arena.try_alloc();
  ASSERT_TRUE(again);
  EXPECT_EQ(again.slot(), released_slot);  // LIFO freelist: warm slot first
  held.clear();
  again.reset();
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(PacketArena, HandleMoveTransfersOwnership) {
  PacketArena arena(2);
  PacketHandle a = arena.try_alloc();
  ASSERT_TRUE(a);
  const uint32_t slot = a.slot();
  PacketHandle b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from is empty
  ASSERT_TRUE(b);
  EXPECT_EQ(b.slot(), slot);
  PacketHandle c;
  c = std::move(b);
  ASSERT_TRUE(c);
  EXPECT_EQ(arena.outstanding(), 1u);
  c.reset();
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_FALSE(c);
  c.reset();  // double reset is a no-op
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(PacketArena, DetachAdoptRoundTripThroughRawIndex) {
  PacketArena arena(2);
  PacketHandle h = arena.try_alloc();
  ASSERT_TRUE(h);
  h->seq = 77;
  const uint32_t raw = h.detach();  // e.g. pushed through a ring
  EXPECT_FALSE(h);
  EXPECT_EQ(arena.outstanding(), 1u);  // detach is not a release
  PacketHandle adopted = arena.adopt(raw);
  EXPECT_EQ(adopted->seq, 77u);
  adopted.reset();
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(PacketArena, ResetForReuseKeepsPayloadCapacity) {
  PacketArena arena(2);
  PacketHandle h = arena.try_alloc();
  ASSERT_TRUE(h);
  h->payload.assign(1024, 0xab);
  h->l4_cookie = util::Bytes{1, 2, 3};
  h->dscp = 46;
  h->syn = true;
  const size_t cap = h->payload.capacity();
  reset_for_reuse(*h);
  EXPECT_TRUE(h->payload.empty());
  EXPECT_GE(h->payload.capacity(), cap);  // heap buffer survives
  EXPECT_FALSE(h->l4_cookie.has_value());
  EXPECT_EQ(h->dscp, 0);
  EXPECT_FALSE(h->syn);
}

// --- Per-thread cache ----------------------------------------------

TEST(PacketArena, CacheAllocAndFlushBalanceTheBooks) {
  PacketArena arena(128);
  {
    PacketArena::Cache cache(arena);
    std::vector<PacketHandle> held;
    for (int i = 0; i < 100; ++i) {
      PacketHandle h = cache.alloc();
      ASSERT_TRUE(h);
      held.push_back(std::move(h));
    }
    // Cache refills pop in kChunk batches, so outstanding counts the
    // stash too — between 100 held and 100 + kChunk popped.
    EXPECT_GE(arena.outstanding(), 100u);
    for (auto& h : held) cache.release(std::move(h));
    held.clear();
    cache.flush();
    EXPECT_EQ(arena.outstanding(), 0u);
  }  // destructor flush on an empty stash: no-op
  EXPECT_EQ(arena.outstanding(), 0u);
}

TEST(PacketArena, CacheExhaustionFailsOpenLikeDirectAlloc) {
  PacketArena arena(4);
  PacketArena::Cache cache(arena);
  std::vector<PacketHandle> held;
  for (int i = 0; i < 4; ++i) {
    PacketHandle h = cache.alloc();
    ASSERT_TRUE(h);
    held.push_back(std::move(h));
  }
  EXPECT_FALSE(cache.alloc());
  EXPECT_GE(arena.alloc_failures(), 1u);
  held.clear();
  cache.flush();
  EXPECT_EQ(arena.outstanding(), 0u);
}

// --- Concurrency (TSan targets) ------------------------------------

/// Many threads alloc, stamp, verify, release through the shared
/// freelist. The stamp check proves exclusive ownership (no slot is
/// ever handed to two threads at once), and the final outstanding()
/// proves nothing leaked. TSan checks the CAS publication protocol.
TEST(PacketArena, ConcurrentAllocReleaseExclusiveOwnership) {
  PacketArena arena(64);
  constexpr int kThreads = 4;
  constexpr int kRounds = 20'000;
  std::atomic<uint64_t> collisions{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<PacketHandle> held;
      uint64_t salt = static_cast<uint64_t>(t) * 1000003;
      for (int i = 0; i < kRounds; ++i) {
        PacketHandle h = arena.try_alloc();
        if (h) {
          // Stamp with a thread-unique value; if another thread owned
          // this slot concurrently, the read-back would tear.
          const uint32_t stamp =
              static_cast<uint32_t>(salt + static_cast<uint64_t>(i));
          h->seq = stamp;
          h->wire_size = stamp ^ 0xffffffffu;
          if (h->seq != stamp || h->wire_size != (stamp ^ 0xffffffffu)) {
            collisions.fetch_add(1, std::memory_order_relaxed);
          }
          held.push_back(std::move(h));
        }
        if (held.size() > 8 || (!h && !held.empty())) {
          held.erase(held.begin());  // release oldest
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(collisions.load(), 0u);
  EXPECT_EQ(arena.outstanding(), 0u);
  EXPECT_GT(arena.total_allocs(), 0u);
}

/// Same, through per-thread caches — the worker emit path. Slot
/// contents must transfer correctly across splice/refill chains.
TEST(PacketArena, ConcurrentCachesRecycleWithoutLeaks) {
  PacketArena arena(64);
  constexpr int kThreads = 4;
  constexpr int kRounds = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      PacketArena::Cache cache(arena);
      for (int i = 0; i < kRounds; ++i) {
        PacketHandle h = cache.alloc();
        if (!h) continue;  // transient exhaustion: fail-open, move on
        h->seq = static_cast<uint32_t>(i);
        cache.release(std::move(h));
      }
    });  // Cache destructor flushes the stash
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arena.outstanding(), 0u);
}

}  // namespace
}  // namespace nnn::runtime
