// Simplified TCP over simulated links: delivery, congestion response,
// and throughput sanity.
#include <gtest/gtest.h>

#include <memory>

#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/link.h"
#include "sim/tcp.h"

namespace nnn::sim {
namespace {

using util::kMillisecond;
using util::kSecond;

/// Two hosts joined by a pair of links; returns the sender-side FCT in
/// seconds, or -1 on non-completion.
struct Transfer {
  double fct_sec = -1;
  uint64_t delivered = 0;
  uint64_t retransmits = 0;
};

Transfer run_transfer(uint64_t bytes, double rate_bps,
                      uint32_t queue_bytes,
                      util::Timestamp prop = 10 * kMillisecond) {
  EventLoop loop;
  Host server(net::IpAddress::v4(198, 51, 100, 1), "server");
  Host client(net::IpAddress::v4(192, 168, 1, 10), "client");

  Link down(loop, {.rate_bps = rate_bps, .prop_delay = prop, .bands = 1,
                   .band_capacity_bytes = queue_bytes},
            [&](net::Packet p) { client.receive(p); });
  Link up(loop, {.rate_bps = rate_bps, .prop_delay = prop, .bands = 1,
                 .band_capacity_bytes = queue_bytes},
          [&](net::Packet p) { server.receive(p); });
  server.set_uplink([&](net::Packet p) { down.send(std::move(p), 0); });
  client.set_uplink([&](net::Packet p) { up.send(std::move(p), 0); });

  net::FiveTuple flow;
  flow.src_ip = server.address();
  flow.dst_ip = client.address();
  flow.src_port = 80;
  flow.dst_port = 50000;

  Transfer result;
  TcpSource source(loop, server, flow, bytes, {},
                   [&](util::Timestamp fct) {
                     result.fct_sec = static_cast<double>(fct) / kSecond;
                   });
  TcpSink sink(loop, client, flow, nullptr);
  server.register_handler(flow.reversed(),
                          [&](const net::Packet& p) { source.on_ack(p); });
  client.register_handler(flow,
                          [&](const net::Packet& p) { sink.on_data(p); });
  loop.at(0, [&] { source.start(); });
  loop.run();
  result.delivered = sink.received_bytes();
  result.retransmits = source.retransmits();
  return result;
}

TEST(Tcp, DeliversAllBytes) {
  const auto result = run_transfer(300 * 1024, 6e6, 96 * 1024);
  EXPECT_EQ(result.delivered, 300u * 1024);
  EXPECT_GT(result.fct_sec, 0);
}

TEST(Tcp, ThroughputApproachesLinkRate) {
  // 3 MB over a 6 Mb/s link ≈ 4.2 s minimum; slow start and header
  // overhead push it a bit higher, but it must be in that ballpark.
  const auto result = run_transfer(3'000'000, 6e6, 96 * 1024);
  EXPECT_GT(result.fct_sec, 3.9);
  EXPECT_LT(result.fct_sec, 8.0);
}

TEST(Tcp, SmallFlowDominatedByRtt) {
  // 3 KB over a fat link: a couple of RTTs (20 ms each), not seconds.
  const auto result = run_transfer(3000, 100e6, 1 << 20);
  EXPECT_GT(result.fct_sec, 0.015);
  EXPECT_LT(result.fct_sec, 0.5);
}

TEST(Tcp, RecoversFromTinyQueueLosses) {
  // A queue of ~4 packets forces drops; the transfer must still finish
  // (via fast retransmit / RTO) with retransmissions observed.
  const auto result = run_transfer(500'000, 6e6, 6 * 1500);
  EXPECT_EQ(result.delivered, 500'000u);
  EXPECT_GT(result.retransmits, 0u);
}

TEST(Tcp, CompletionMatchesSinkCompletion) {
  EventLoop loop;
  Host server(net::IpAddress::v4(198, 51, 100, 1), "server");
  Host client(net::IpAddress::v4(192, 168, 1, 10), "client");
  Link down(loop, {.rate_bps = 10e6, .prop_delay = kMillisecond,
                   .bands = 1, .band_capacity_bytes = 1 << 20},
            [&](net::Packet p) { client.receive(p); });
  Link up(loop, {.rate_bps = 10e6, .prop_delay = kMillisecond, .bands = 1,
                 .band_capacity_bytes = 1 << 20},
          [&](net::Packet p) { server.receive(p); });
  server.set_uplink([&](net::Packet p) { down.send(std::move(p), 0); });
  client.set_uplink([&](net::Packet p) { up.send(std::move(p), 0); });

  net::FiveTuple flow;
  flow.src_ip = server.address();
  flow.dst_ip = client.address();
  flow.src_port = 80;
  flow.dst_port = 50001;

  bool source_done = false;
  bool sink_done = false;
  TcpSource source(loop, server, flow, 50'000, {},
                   [&](util::Timestamp) { source_done = true; });
  TcpSink sink(loop, client, flow,
               [&](util::Timestamp) { sink_done = true; });
  server.register_handler(flow.reversed(),
                          [&](const net::Packet& p) { source.on_ack(p); });
  client.register_handler(flow,
                          [&](const net::Packet& p) { sink.on_data(p); });
  loop.at(0, [&] { source.start(); });
  loop.run();
  EXPECT_TRUE(source_done);
  EXPECT_TRUE(sink_done);
  EXPECT_TRUE(source.complete());
  EXPECT_TRUE(sink.complete());
}

TEST(Tcp, TwoFlowsShareALink) {
  EventLoop loop;
  Host server(net::IpAddress::v4(198, 51, 100, 1), "server");
  Host client(net::IpAddress::v4(192, 168, 1, 10), "client");
  Link down(loop, {.rate_bps = 6e6, .prop_delay = 10 * kMillisecond,
                   .bands = 1, .band_capacity_bytes = 96 * 1024},
            [&](net::Packet p) { client.receive(p); });
  Link up(loop, {.rate_bps = 6e6, .prop_delay = 10 * kMillisecond,
                 .bands = 1, .band_capacity_bytes = 96 * 1024},
          [&](net::Packet p) { server.receive(p); });
  server.set_uplink([&](net::Packet p) { down.send(std::move(p), 0); });
  client.set_uplink([&](net::Packet p) { up.send(std::move(p), 0); });

  std::vector<std::unique_ptr<TcpSource>> sources;
  std::vector<std::unique_ptr<TcpSink>> sinks;
  int completions = 0;
  for (int i = 0; i < 2; ++i) {
    net::FiveTuple flow;
    flow.src_ip = server.address();
    flow.dst_ip = client.address();
    flow.src_port = static_cast<uint16_t>(80 + i);
    flow.dst_port = static_cast<uint16_t>(50000 + i);
    auto source = std::make_unique<TcpSource>(
        loop, server, flow, 400'000, TcpSource::Config{},
        [&](util::Timestamp) { ++completions; });
    auto sink = std::make_unique<TcpSink>(loop, client, flow, nullptr);
    server.register_handler(
        flow.reversed(),
        [src = source.get()](const net::Packet& p) { src->on_ack(p); });
    client.register_handler(flow, [snk = sink.get()](const net::Packet& p) {
      snk->on_data(p);
    });
    loop.at(0, [src = source.get()] { src->start(); });
    sources.push_back(std::move(source));
    sinks.push_back(std::move(sink));
  }
  loop.run();
  EXPECT_EQ(completions, 2);
  for (const auto& sink : sinks) {
    EXPECT_EQ(sink->received_bytes(), 400'000u);
  }
}

}  // namespace
}  // namespace nnn::sim
