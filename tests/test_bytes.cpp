// ByteReader / ByteWriter: big-endian integer codecs, underrun
// behavior, and roundtrip properties.
#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/rng.h"

namespace nnn::util {
namespace {

TEST(ByteWriter, WritesBigEndian) {
  Bytes out;
  ByteWriter w(out);
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090a0b0c0d0e0fULL);
  const Bytes expected = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08,
                          0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  EXPECT_EQ(out, expected);
}

TEST(ByteReader, ReadsWhatWriterWrote) {
  Bytes out;
  ByteWriter w(out);
  w.u64(0xdeadbeefcafebabeULL);
  w.u32(42);
  w.u16(7);
  w.u8(255);
  ByteReader r{BytesView(out)};
  EXPECT_EQ(r.u64().value(), 0xdeadbeefcafebabeULL);
  EXPECT_EQ(r.u32().value(), 42u);
  EXPECT_EQ(r.u16().value(), 7u);
  EXPECT_EQ(r.u8().value(), 255u);
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, UnderrunReturnsNullopt) {
  const Bytes data = {0x01, 0x02, 0x03};
  ByteReader r{BytesView(data)};
  EXPECT_FALSE(r.u32().has_value());
  // A failed read consumes nothing.
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_TRUE(r.u16().has_value());
  EXPECT_FALSE(r.u16().has_value());
  EXPECT_TRUE(r.u8().has_value());
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, RawAndViewRespectBounds) {
  const Bytes data = {1, 2, 3, 4, 5};
  ByteReader r{BytesView(data)};
  const auto head = r.raw(2);
  ASSERT_TRUE(head.has_value());
  EXPECT_EQ(*head, (Bytes{1, 2}));
  EXPECT_FALSE(r.view(10).has_value());
  const auto rest = r.view(3);
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(rest->size(), 3u);
  EXPECT_FALSE(r.skip(1));
}

TEST(ByteReader, SkipAdvances) {
  const Bytes data = {1, 2, 3, 4};
  ByteReader r{BytesView(data)};
  EXPECT_TRUE(r.skip(3));
  EXPECT_EQ(r.u8().value(), 4u);
}

TEST(Bytes, StringConversionRoundtrip) {
  const std::string text = "hello \0 world";
  const Bytes bytes = to_bytes(text);
  EXPECT_EQ(to_string(BytesView(bytes)), text);
}

TEST(Bytes, EqualHandlesEmpty) {
  EXPECT_TRUE(equal(BytesView(), BytesView()));
  const Bytes a = {1};
  EXPECT_FALSE(equal(BytesView(a), BytesView()));
}

class RoundtripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundtripProperty, RandomSequencesRoundtrip) {
  util::Rng rng(GetParam());
  Bytes out;
  ByteWriter w(out);
  std::vector<uint64_t> values;
  std::vector<int> widths;
  for (int i = 0; i < 64; ++i) {
    const int width = rng.uniform_int(0, 3);
    const uint64_t value = rng.next_u64();
    widths.push_back(width);
    switch (width) {
      case 0:
        w.u8(static_cast<uint8_t>(value));
        values.push_back(static_cast<uint8_t>(value));
        break;
      case 1:
        w.u16(static_cast<uint16_t>(value));
        values.push_back(static_cast<uint16_t>(value));
        break;
      case 2:
        w.u32(static_cast<uint32_t>(value));
        values.push_back(static_cast<uint32_t>(value));
        break;
      default:
        w.u64(value);
        values.push_back(value);
    }
  }
  ByteReader r{BytesView(out)};
  for (size_t i = 0; i < values.size(); ++i) {
    uint64_t read = 0;
    switch (widths[i]) {
      case 0:
        read = r.u8().value();
        break;
      case 1:
        read = r.u16().value();
        break;
      case 2:
        read = r.u32().value();
        break;
      default:
        read = r.u64().value();
    }
    EXPECT_EQ(read, values[i]) << "element " << i;
  }
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundtripProperty,
                         ::testing::Values(1, 2, 3, 17, 99, 12345));

}  // namespace
}  // namespace nnn::util
