// Extension features from §4.3 / §4.6 / §6: scale-out sharding and
// the double-spend problem, delivery guarantees (ack cookies), and
// regulator compliance monitoring.
#include <gtest/gtest.h>

#include "cookies/ack_monitor.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "dataplane/hw_filter.h"
#include "dataplane/middlebox.h"
#include "dataplane/sharding.h"
#include "net/http.h"
#include "server/compliance.h"
#include "util/clock.h"

namespace nnn {
namespace {

using util::kSecond;

cookies::CookieDescriptor make_descriptor(cookies::CookieId id) {
  cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(id * 3 + 1));
  d.service_data = "Boost";
  return d;
}

net::Packet cookie_udp_packet(uint16_t src_port,
                              const cookies::Cookie& cookie) {
  net::Packet p;
  p.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
  p.tuple.src_port = src_port;
  p.tuple.dst_port = 443;
  p.tuple.proto = net::L4Proto::kUdp;
  cookies::attach(p, cookie, cookies::Transport::kUdpHeader);
  return p;
}

// --- sharding (§4.6) ---

class ShardingTest : public ::testing::Test {
 protected:
  ShardingTest() : clock_(1000 * kSecond) {
    registry_.bind("Boost", dataplane::PriorityAction{0});
  }

  util::ManualClock clock_;
  dataplane::ServiceRegistry registry_;
};

TEST_F(ShardingTest, FlowHashAllowsDoubleSpend) {
  dataplane::ShardedDataplane plane(clock_, registry_, 4,
                                    dataplane::DispatchPolicy::kFlowHash);
  const auto descriptor = make_descriptor(1);
  plane.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock_, 1);
  const cookies::Cookie cookie = generator.generate();

  // An attacker copies one cookie onto many flows; flow hashing
  // spreads them over shards whose replay caches are independent.
  uint64_t accepted = 0;
  for (uint16_t port = 40000; port < 40032; ++port) {
    net::Packet p = cookie_udp_packet(port, cookie);
    if (plane.process(p).action) ++accepted;
  }
  // The same cookie was honored more than once: double-spent.
  EXPECT_GT(accepted, 1u);
  EXPECT_LE(accepted, plane.shard_count());
}

TEST_F(ShardingTest, DescriptorAffinityPreventsDoubleSpend) {
  dataplane::ShardedDataplane plane(
      clock_, registry_, 4,
      dataplane::DispatchPolicy::kDescriptorAffinity);
  const auto descriptor = make_descriptor(2);
  plane.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock_, 2);
  const cookies::Cookie cookie = generator.generate();

  uint64_t accepted = 0;
  for (uint16_t port = 41000; port < 41032; ++port) {
    net::Packet p = cookie_udp_packet(port, cookie);
    if (plane.process(p).action) ++accepted;
  }
  EXPECT_EQ(accepted, 1u);  // use-once holds across the whole plane
  EXPECT_EQ(plane.total_replays_detected(), 31u);
}

TEST_F(ShardingTest, AffinityStillBalancesCookielessTraffic) {
  dataplane::ShardedDataplane plane(
      clock_, registry_, 4,
      dataplane::DispatchPolicy::kDescriptorAffinity);
  for (uint16_t port = 0; port < 256; ++port) {
    net::Packet p;
    p.tuple.src_port = port;
    p.tuple.dst_port = 80;
    p.wire_size = 500;
    plane.process(p);
  }
  // Every shard saw a meaningful share (flow hashing for plain
  // packets).
  for (size_t i = 0; i < plane.shard_count(); ++i) {
    EXPECT_GT(plane.stats(i).packets, 256u / 10) << "shard " << i;
  }
}

TEST_F(ShardingTest, DistinctDescriptorsSpreadOverShards) {
  dataplane::ShardedDataplane plane(
      clock_, registry_, 4,
      dataplane::DispatchPolicy::kDescriptorAffinity);
  std::set<size_t> used;
  for (cookies::CookieId id = 1; id <= 16; ++id) {
    const auto descriptor = make_descriptor(id);
    plane.add_descriptor(descriptor);
    cookies::CookieGenerator generator(descriptor, clock_, id);
    net::Packet p = cookie_udp_packet(
        static_cast<uint16_t>(42000 + id), generator.generate());
    used.insert(plane.shard_for(p));
    EXPECT_TRUE(plane.process(p).action.has_value());
  }
  EXPECT_EQ(used.size(), 4u);  // ids 1..16 mod 4 cover all shards
}

TEST_F(ShardingTest, RevocationReachesAllShards) {
  dataplane::ShardedDataplane plane(clock_, registry_, 3,
                                    dataplane::DispatchPolicy::kFlowHash);
  const auto descriptor = make_descriptor(5);
  plane.add_descriptor(descriptor);
  plane.revoke(descriptor.cookie_id);
  cookies::CookieGenerator generator(descriptor, clock_, 5);
  for (uint16_t port = 43000; port < 43008; ++port) {
    net::Packet p = cookie_udp_packet(port, generator.generate());
    EXPECT_FALSE(plane.process(p).action.has_value());
  }
}

// --- delivery guarantees (§4.3) ---

class DeliveryGuaranteeTest : public ::testing::Test {
 protected:
  DeliveryGuaranteeTest()
      : clock_(1000 * kSecond), verifier_(clock_) {
    registry_.bind("Boost", dataplane::PriorityAction{0});
    descriptor_ = make_descriptor(7);
    descriptor_.attributes.delivery_guarantee = true;
    verifier_.add_descriptor(descriptor_);
    dataplane::Middlebox::Config config;
    config.delivery_guarantees = true;
    middlebox_.emplace(clock_, verifier_, registry_, config);
  }

  util::ManualClock clock_;
  cookies::CookieVerifier verifier_;
  dataplane::ServiceRegistry registry_;
  cookies::CookieDescriptor descriptor_;
  std::optional<dataplane::Middlebox> middlebox_;
};

TEST_F(DeliveryGuaranteeTest, AckCookieAttachedToReverseTraffic) {
  cookies::CookieGenerator generator(descriptor_, clock_, 7);
  cookies::AckMonitor monitor(clock_, 2 * kSecond);

  net::Packet request = cookie_udp_packet(45000, generator.generate());
  monitor.expect(request.tuple, descriptor_.cookie_id);
  ASSERT_TRUE(middlebox_->process(request).action.has_value());
  EXPECT_EQ(middlebox_->pending_acks(), 1u);

  // The server's response crosses the same box on the reverse path.
  net::Packet response;
  response.tuple = request.tuple.reversed();
  response.payload = {0x01};
  middlebox_->process(response);
  EXPECT_EQ(middlebox_->pending_acks(), 0u);

  // The client's monitor recognizes the ack.
  EXPECT_TRUE(monitor.on_packet(response));
  EXPECT_TRUE(monitor.acked(request.tuple));
  EXPECT_TRUE(monitor.overdue().empty());

  // The attached ack is a valid, fresh cookie from the descriptor.
  const auto extracted = cookies::extract(response);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_TRUE(verifier_.verify(extracted->stack.front()).ok());
}

TEST_F(DeliveryGuaranteeTest, NoAckWithoutAttribute) {
  auto plain = make_descriptor(8);  // delivery_guarantee = false
  verifier_.add_descriptor(plain);
  cookies::CookieGenerator generator(plain, clock_, 8);
  net::Packet request = cookie_udp_packet(45001, generator.generate());
  middlebox_->process(request);
  EXPECT_EQ(middlebox_->pending_acks(), 0u);
  net::Packet response;
  response.tuple = request.tuple.reversed();
  middlebox_->process(response);
  EXPECT_FALSE(cookies::extract(response).has_value());
}

TEST_F(DeliveryGuaranteeTest, MissingAckBecomesOverdueAlert) {
  // The network loses state (the §4.3 motivation: "a temporary loss of
  // state in the network"): no ack ever arrives, the monitor alerts.
  cookies::CookieGenerator generator(descriptor_, clock_, 9);
  cookies::AckMonitor monitor(clock_, 2 * kSecond);
  net::Packet request = cookie_udp_packet(45002, generator.generate());
  monitor.expect(request.tuple, descriptor_.cookie_id);
  // (the request never reaches a cookie-enabled box)
  clock_.advance(3 * kSecond);
  const auto overdue = monitor.overdue();
  ASSERT_EQ(overdue.size(), 1u);
  EXPECT_EQ(overdue[0].cookie_id, descriptor_.cookie_id);
  EXPECT_FALSE(monitor.acked(request.tuple));
}

TEST_F(DeliveryGuaranteeTest, AckDebtSurvivesUncarryablePackets) {
  cookies::CookieGenerator generator(descriptor_, clock_, 10);
  net::Packet request = cookie_udp_packet(45003, generator.generate());
  middlebox_->process(request);

  // A TCP reverse packet with opaque payload can't carry the ack on
  // any transport; the debt persists to the next packet.
  net::Packet tcp_response;
  tcp_response.tuple = request.tuple.reversed();
  tcp_response.tuple.proto = net::L4Proto::kTcp;
  tcp_response.payload = {0x16, 0x03};
  middlebox_->process(tcp_response);
  EXPECT_FALSE(cookies::extract(tcp_response).has_value());
  EXPECT_EQ(middlebox_->pending_acks(), 1u);

  // The next UDP response carries it.
  net::Packet udp_response;
  udp_response.tuple = request.tuple.reversed();
  middlebox_->process(udp_response);
  EXPECT_TRUE(cookies::extract(udp_response).has_value());
  EXPECT_EQ(middlebox_->pending_acks(), 0u);
}

TEST(AckMonitor, IgnoresWrongDescriptorAndWrongFlow) {
  util::ManualClock clock(1000 * kSecond);
  cookies::AckMonitor monitor(clock, kSecond);
  net::FiveTuple flow;
  flow.src_port = 1;
  flow.dst_port = 2;
  flow.proto = net::L4Proto::kUdp;
  monitor.expect(flow, 42);

  auto other_descriptor = make_descriptor(99);
  cookies::CookieGenerator generator(other_descriptor, clock, 99);
  net::Packet wrong_id;
  wrong_id.tuple = flow.reversed();
  cookies::attach(wrong_id, generator.generate(),
                  cookies::Transport::kUdpHeader);
  EXPECT_FALSE(monitor.on_packet(wrong_id));

  net::Packet wrong_flow;
  wrong_flow.tuple = flow;  // not reversed
  cookies::attach(wrong_flow, generator.generate(),
                  cookies::Transport::kUdpHeader);
  EXPECT_FALSE(monitor.on_packet(wrong_flow));
  EXPECT_EQ(monitor.pending(), 1u);
}

// --- hardware pre-filter (§4.6) ---

class HwFilterTest : public ::testing::Test {
 protected:
  HwFilterTest()
      : clock_(1000 * kSecond),
        filter_(clock_, cookies::kNetworkCoherencyTime, {}) {
    descriptor_ = make_descriptor(11);
    filter_.learn_id(descriptor_.cookie_id);
  }

  util::ManualClock clock_;
  dataplane::HardwareFilter filter_;
  cookies::CookieDescriptor descriptor_;
};

TEST_F(HwFilterTest, PlainPacketsTakeTheFastPath) {
  net::Packet p;
  p.tuple.src_port = 1;
  p.wire_size = 700;
  EXPECT_EQ(filter_.classify(p), dataplane::HwDecision::kFastPath);
  net::Packet opaque;
  opaque.payload = {0x17, 0x03, 0x03};
  EXPECT_EQ(filter_.classify(opaque), dataplane::HwDecision::kFastPath);
  EXPECT_EQ(filter_.stats().fast_path, 2u);
}

TEST_F(HwFilterTest, KnownFreshCookieGoesToSoftware) {
  cookies::CookieGenerator generator(descriptor_, clock_, 11);
  net::Packet p = cookie_udp_packet(47000, generator.generate());
  EXPECT_EQ(filter_.classify(p), dataplane::HwDecision::kToSoftware);
}

TEST_F(HwFilterTest, UnknownIdRejectedWithoutSoftware) {
  auto rogue = make_descriptor(999);
  cookies::CookieGenerator generator(rogue, clock_, 12);
  net::Packet p = cookie_udp_packet(47001, generator.generate());
  EXPECT_EQ(filter_.classify(p),
            dataplane::HwDecision::kRejectUnknownId);
}

TEST_F(HwFilterTest, StaleTimestampRejected) {
  cookies::CookieGenerator generator(descriptor_, clock_, 13);
  const auto cookie = generator.generate();
  clock_.advance(10 * kSecond);  // well past the 5 s NCT
  net::Packet p = cookie_udp_packet(47002, cookie);
  EXPECT_EQ(filter_.classify(p), dataplane::HwDecision::kRejectStale);
}

TEST_F(HwFilterTest, TcpOptionCarrierDetected) {
  cookies::CookieGenerator generator(descriptor_, clock_, 14);
  net::Packet p;
  p.tuple.src_port = 47003;
  p.tuple.proto = net::L4Proto::kTcp;
  cookies::attach(p, generator.generate(),
                  cookies::Transport::kTcpOption);
  EXPECT_EQ(filter_.classify(p), dataplane::HwDecision::kToSoftware);
}

TEST_F(HwFilterTest, HttpCarrierRespectsTextParsingConfig) {
  cookies::CookieGenerator generator(descriptor_, clock_, 15);
  net::Packet p;
  p.tuple.proto = net::L4Proto::kTcp;
  net::http::Request r("GET", "/", "x.example");
  const std::string text = r.serialize();
  p.payload.assign(text.begin(), text.end());
  cookies::attach(p, generator.generate(),
                  cookies::Transport::kHttpHeader);

  EXPECT_EQ(filter_.classify(p), dataplane::HwDecision::kToSoftware);

  dataplane::HardwareFilter conservative(
      clock_, cookies::kNetworkCoherencyTime,
      {.check_id = true, .check_timestamp = true,
       .parse_text_carriers = false});
  conservative.learn_id(descriptor_.cookie_id);
  // Without text parsing the hardware can't see this cookie: the
  // packet takes the fast path and software sniffing must catch it.
  EXPECT_EQ(conservative.classify(p), dataplane::HwDecision::kFastPath);
}

TEST_F(HwFilterTest, FilterAgreesWithSoftwareVerifier) {
  // Property: hardware never rejects a cookie software would accept.
  cookies::CookieVerifier verifier(clock_);
  verifier.add_descriptor(descriptor_);
  cookies::CookieGenerator generator(descriptor_, clock_, 16);
  for (int i = 0; i < 200; ++i) {
    net::Packet p = cookie_udp_packet(
        static_cast<uint16_t>(48000 + i), generator.generate());
    const auto decision = filter_.classify(p);
    const auto extracted = cookies::extract(p);
    const bool software_ok =
        verifier.verify(extracted->stack.front()).ok();
    if (software_ok) {
      EXPECT_EQ(decision, dataplane::HwDecision::kToSoftware);
    }
  }
}

// --- compliance (§6) ---

constexpr util::Timestamp kDay = 24LL * 3600 * kSecond;

TEST(Compliance, GrantWithinDeadlineIsClean) {
  server::ComplianceMonitor monitor;  // 3-day rule
  monitor.record_request("somafm.example", "MusicFreedom", 0);
  EXPECT_TRUE(monitor.record_grant("somafm.example", "MusicFreedom",
                                   2 * kDay));
  EXPECT_TRUE(monitor.violations(100 * kDay).empty());
}

TEST(Compliance, LateGrantIsAViolation) {
  // The SomaFM story: 18 months from request to grant.
  server::ComplianceMonitor monitor;
  monitor.record_request("somafm.example", "MusicFreedom", 0);
  monitor.record_grant("somafm.example", "MusicFreedom", 540 * kDay);
  const auto violations = monitor.violations(600 * kDay);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].request.provider, "somafm.example");
  EXPECT_EQ(violations[0].overdue_by, 537 * kDay);
}

TEST(Compliance, PendingPastDeadlineIsAViolation) {
  // The RockRadio.gr story: "after three e-mails ... and several
  // months we heard no reply".
  server::ComplianceMonitor monitor;
  monitor.record_request("rockradio.example", "MusicFreedom", 0);
  EXPECT_TRUE(monitor.violations(90 * kDay).size() == 1);
  EXPECT_EQ(monitor.pending(90 * kDay).size(), 1u);
  // Not yet due: no violation on day 2.
  server::ComplianceMonitor fresh;
  fresh.record_request("x", "P", 0);
  EXPECT_TRUE(fresh.violations(2 * kDay).empty());
}

TEST(Compliance, GrantWithoutRequestRefused) {
  server::ComplianceMonitor monitor;
  EXPECT_FALSE(monitor.record_grant("ghost.example", "P", kDay));
}

TEST(Compliance, PublicDatabaseExports) {
  server::ComplianceMonitor monitor;
  monitor.record_request("a.example", "P", 1 * kDay);
  monitor.record_request("b.example", "P", 2 * kDay);
  monitor.record_grant("a.example", "P", 3 * kDay);
  const auto exported = monitor.to_json();
  ASSERT_TRUE(exported.is_array());
  ASSERT_EQ(exported.as_array().size(), 2u);
  EXPECT_EQ(exported.as_array()[0].get_string("provider"), "a.example");
  EXPECT_TRUE(exported.as_array()[1].find("granted_at")->is_null());
}

}  // namespace
}  // namespace nnn
