// mcTLS-style records: endpoint confidentiality/integrity with a
// middlebox-writable, separately-authenticated slot (§4.3 / §7).
#include <gtest/gtest.h>

#include "cookies/generator.h"
#include "net/mctls.h"
#include "util/rng.h"

namespace nnn::net::mctls {
namespace {

Keys make_keys() {
  Keys keys;
  keys.endpoint_key.assign(32, 0xE1);
  keys.middlebox_key.assign(32, 0x3B);
  return keys;
}

TEST(McTls, SealOpenRoundTrip) {
  const Keys keys = make_keys();
  const auto payload = util::to_bytes("confidential video bytes");
  const Record record = seal(keys, util::BytesView(payload), 1);
  // Ciphertext differs from plaintext (it is actually encrypted).
  EXPECT_NE(record.ciphertext, payload);
  const auto opened = open(keys, record, 1);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(McTls, WireEncodingRoundTrips) {
  const Keys keys = make_keys();
  Record record = seal(keys, util::BytesView(util::to_bytes("abc")), 9);
  write_slot(record, util::BytesView(keys.middlebox_key),
             util::BytesView(util::to_bytes("slot-data")), 9);
  const auto decoded = Record::decode(util::BytesView(record.encode()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ciphertext, record.ciphertext);
  EXPECT_EQ(decoded->slot, record.slot);
  EXPECT_EQ(decoded->payload_tag, record.payload_tag);
  EXPECT_EQ(decoded->slot_tag, record.slot_tag);
}

TEST(McTls, MiddleboxWritesSlotWithoutBreakingPayload) {
  // The §4.3 use case: the network deposits an ack cookie into the
  // slot of an encrypted session; the endpoints still verify the
  // payload untouched.
  const Keys keys = make_keys();
  util::ManualClock clock(100 * util::kSecond);
  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 5;
  descriptor.key.assign(32, 0x44);
  cookies::CookieGenerator generator(descriptor, clock, 5);

  const auto payload = util::to_bytes("segment-0001");
  Record record = seal(keys, util::BytesView(payload), 7);

  // In transit: the middlebox (holding only the middlebox key) writes
  // the ack cookie into the slot.
  const auto ack = generator.generate().encode();
  write_slot(record, util::BytesView(keys.middlebox_key),
             util::BytesView(ack), 7);

  // Receiver: payload verifies and decrypts...
  const auto opened = open(keys, record, 7);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
  // ...and the slot yields the ack cookie.
  const auto slot = read_slot(record, util::BytesView(keys.middlebox_key), 7);
  ASSERT_TRUE(slot.has_value());
  const auto cookie = cookies::Cookie::decode(util::BytesView(*slot));
  ASSERT_TRUE(cookie.has_value());
  EXPECT_EQ(cookie->cookie_id, 5u);
}

TEST(McTls, PayloadTamperingDetected) {
  const Keys keys = make_keys();
  Record record = seal(keys, util::BytesView(util::to_bytes("data")), 3);
  record.ciphertext[0] ^= 0x01;
  EXPECT_FALSE(open(keys, record, 3).has_value());
}

TEST(McTls, MiddleboxCannotReadOrForgePayload) {
  const Keys keys = make_keys();
  const auto payload = util::to_bytes("secret");
  Record record = seal(keys, util::BytesView(payload), 4);
  // A middlebox holding only the middlebox key cannot decrypt: opening
  // with wrong endpoint key material fails the MAC.
  Keys wrong = keys;
  wrong.endpoint_key = keys.middlebox_key;
  EXPECT_FALSE(open(wrong, record, 4).has_value());
}

TEST(McTls, UnauthorizedSlotWriteDetected) {
  const Keys keys = make_keys();
  Record record = seal(keys, util::BytesView(util::to_bytes("x")), 5);
  // An off-path attacker without the middlebox key scribbles into the
  // slot (and forges a tag under a guessed key).
  util::Bytes attacker_key(32, 0x00);
  write_slot(record, util::BytesView(attacker_key),
             util::BytesView(util::to_bytes("fake-ack")), 5);
  EXPECT_FALSE(
      read_slot(record, util::BytesView(keys.middlebox_key), 5)
          .has_value());
  // The payload is still fine — the attack only loses the slot.
  EXPECT_TRUE(open(keys, record, 5).has_value());
}

TEST(McTls, SequenceBindingPreventsRecordReplayAcrossSlots) {
  const Keys keys = make_keys();
  const Record record = seal(keys, util::BytesView(util::to_bytes("a")), 10);
  // Replaying record 10 as record 11 fails both MACs.
  EXPECT_FALSE(open(keys, record, 11).has_value());
  EXPECT_FALSE(
      read_slot(record, util::BytesView(keys.middlebox_key), 11)
          .has_value());
}

TEST(McTls, DecodeRejectsTruncation) {
  const Keys keys = make_keys();
  const auto wire = seal(keys, util::BytesView(util::to_bytes("abcd")), 1)
                        .encode();
  for (size_t keep = 0; keep < wire.size(); keep += 3) {
    EXPECT_FALSE(
        Record::decode(util::BytesView(wire.data(), keep)).has_value());
  }
}

}  // namespace
}  // namespace nnn::net::mctls
