// The SHA-256 backend matrix: every known-answer vector must hold
// bit-identically under the scalar reference and the SHA-NI backend
// (when the CPU has it), and the midstate save/resume path used by
// HmacKeySchedule must agree with one-shot hashing under both.
#include <gtest/gtest.h>

#include <string>

#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/hex.h"
#include "util/rng.h"

namespace nnn::crypto {
namespace {

using util::Bytes;
using util::BytesView;
using util::hex_encode;

class Sha256BackendTest : public ::testing::TestWithParam<Sha256Backend> {
 protected:
  void SetUp() override {
    if (GetParam() == Sha256Backend::kShaNi && !sha256_shani_supported()) {
      GTEST_SKIP() << "SHA-NI not available on this CPU/build";
    }
    prev_ = sha256_backend();
    sha256_set_backend(GetParam());
  }
  void TearDown() override { sha256_set_backend(prev_); }

 private:
  Sha256Backend prev_ = Sha256Backend::kScalar;
};

INSTANTIATE_TEST_SUITE_P(
    Backends, Sha256BackendTest,
    ::testing::Values(Sha256Backend::kScalar, Sha256Backend::kShaNi),
    [](const ::testing::TestParamInfo<Sha256Backend>& info) {
      return info.param == Sha256Backend::kScalar ? "Scalar" : "ShaNi";
    });

std::string sha256_hex(std::string_view msg) {
  const auto digest = Sha256::hash(msg);
  return hex_encode(BytesView(digest.data(), digest.size()));
}

std::string hmac_hex(BytesView key, BytesView data) {
  const auto digest = hmac_sha256(key, data);
  return hex_encode(BytesView(digest.data(), digest.size()));
}

TEST_P(Sha256BackendTest, NistVectors) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(sha256_hex(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST_P(Sha256BackendTest, MultiBlockBulkUpdate) {
  // 4 blocks in one update() exercises the multi-block compress loop
  // (the SHA-NI kernel keeps state in registers across blocks).
  const std::string msg(256, 'a');
  Sha256 whole;
  whole.update(msg);
  Sha256 split;
  for (size_t i = 0; i < msg.size(); i += 64) split.update(msg.substr(i, 64));
  const auto digest = whole.finish();
  EXPECT_EQ(digest, split.finish());
  EXPECT_EQ(digest, Sha256::hash(msg));
}

TEST_P(Sha256BackendTest, PaddingBoundaries) {
  for (const size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 incremental;
    incremental.update(msg);
    EXPECT_EQ(incremental.finish(), Sha256::hash(msg)) << "len=" << len;
  }
}

TEST_P(Sha256BackendTest, MidstateResumeMatchesOneShot) {
  // Save after the first block, resume into a fresh hasher: the digest
  // must match hashing the concatenation directly. This is exactly the
  // HmacKeySchedule trick.
  util::Rng rng(7);
  Bytes prefix(64);
  for (auto& b : prefix) b = static_cast<uint8_t>(rng.next_u64());
  for (const size_t tail_len : {0u, 1u, 32u, 63u, 64u, 200u}) {
    Bytes tail(tail_len);
    for (auto& b : tail) b = static_cast<uint8_t>(rng.next_u64());

    Sha256 precompute;
    precompute.update(BytesView(prefix));
    const Sha256State mid = precompute.save_state();

    Sha256 resumed;
    resumed.restore(mid);
    resumed.update(BytesView(tail));

    Bytes whole(prefix);
    whole.insert(whole.end(), tail.begin(), tail.end());
    EXPECT_EQ(resumed.finish(), Sha256::hash(BytesView(whole)))
        << "tail=" << tail_len;
  }
}

TEST_P(Sha256BackendTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_hex(BytesView(key), BytesView(util::to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST_P(Sha256BackendTest, Rfc4231Case2) {
  EXPECT_EQ(
      hmac_hex(BytesView(util::to_bytes("Jefe")),
               BytesView(util::to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST_P(Sha256BackendTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hmac_hex(BytesView(key), BytesView(data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST_P(Sha256BackendTest, Rfc4231Case4) {
  Bytes key(25);
  for (size_t i = 0; i < key.size(); ++i) key[i] = static_cast<uint8_t>(i + 1);
  const Bytes data(50, 0xcd);
  EXPECT_EQ(hmac_hex(BytesView(key), BytesView(data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST_P(Sha256BackendTest, Rfc4231Case5Truncated) {
  // Case 5 truncates to 128 bits — the exact cookie_tag size.
  const Bytes key(20, 0x0c);
  const auto data = util::to_bytes("Test With Truncation");
  const CookieTag tag = cookie_tag(BytesView(key), BytesView(data));
  EXPECT_EQ(hex_encode(BytesView(tag.data(), tag.size())),
            "a3b6167473100ee06e0c796c2955552b");
}

TEST_P(Sha256BackendTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hmac_hex(BytesView(key),
               BytesView(util::to_bytes(
                   "Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST_P(Sha256BackendTest, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      hmac_hex(BytesView(key),
               BytesView(util::to_bytes(
                   "This is a test using a larger than block-size key and a "
                   "larger than block-size data. The key needs to be hashed "
                   "before being used by the HMAC algorithm."))),
      "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST_P(Sha256BackendTest, KeyScheduleMatchesOneShotHmac) {
  // The precomputed-midstate path must agree with the reference HMAC
  // for every key-length class (short, exactly block, hashed-down).
  util::Rng rng(11);
  for (const size_t key_len : {1u, 20u, 32u, 63u, 64u, 65u, 131u}) {
    Bytes key(key_len);
    for (auto& b : key) b = static_cast<uint8_t>(rng.next_u64());
    const HmacKeySchedule schedule{BytesView(key)};
    for (const size_t msg_len : {0u, 8u, 32u, 64u, 200u}) {
      Bytes msg(msg_len);
      for (auto& b : msg) b = static_cast<uint8_t>(rng.next_u64());
      EXPECT_EQ(schedule.digest(BytesView(msg)),
                hmac_sha256(BytesView(key), BytesView(msg)))
          << "key=" << key_len << " msg=" << msg_len;
      EXPECT_EQ(schedule.tag(BytesView(msg)),
                cookie_tag(BytesView(key), BytesView(msg)))
          << "key=" << key_len << " msg=" << msg_len;
    }
  }
}

TEST(Sha256Dispatch, DefaultBackendMatchesCpu) {
  // The dispatcher must pick hardware exactly when it exists (and the
  // build did not disable it); sha256_set_backend is a test-only
  // override on top of that.
  if (sha256_shani_supported()) {
    EXPECT_EQ(sha256_backend(), Sha256Backend::kShaNi);
  } else {
    EXPECT_EQ(sha256_backend(), Sha256Backend::kScalar);
  }
  EXPECT_EQ(to_string(Sha256Backend::kScalar), "scalar");
  EXPECT_EQ(to_string(Sha256Backend::kShaNi), "sha-ni");
}

TEST(Sha256Dispatch, BackendsProduceIdenticalDigests) {
  if (!sha256_shani_supported()) {
    GTEST_SKIP() << "SHA-NI not available on this CPU/build";
  }
  const auto prev = sha256_backend();
  util::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data(rng.next_u64(512));
    for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
    sha256_set_backend(Sha256Backend::kScalar);
    const auto scalar = Sha256::hash(BytesView(data));
    sha256_set_backend(Sha256Backend::kShaNi);
    const auto hw = Sha256::hash(BytesView(data));
    EXPECT_EQ(scalar, hw) << "len=" << data.size();
  }
  sha256_set_backend(prev);
}

}  // namespace
}  // namespace nnn::crypto
