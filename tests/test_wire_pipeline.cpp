// Wire-level end-to-end: the packet the middlebox judges is the packet
// that came off real bytes, and tampering with those bytes can only
// ever downgrade service, never forge it.
#include <gtest/gtest.h>

#include "cookies/generator.h"
#include "cookies/transport.h"
#include "cookies/verifier.h"
#include "dataplane/middlebox.h"
#include "net/http.h"
#include "net/wire.h"
#include "util/clock.h"
#include "util/rng.h"

namespace nnn {
namespace {

using util::kSecond;

class WirePipelineTest : public ::testing::Test {
 protected:
  WirePipelineTest() : clock_(1000 * kSecond), verifier_(clock_) {
    registry_.bind("Boost", dataplane::PriorityAction{0});
    descriptor_.cookie_id = 0xf00d;
    descriptor_.key.assign(32, 0x66);
    descriptor_.service_data = "Boost";
    verifier_.add_descriptor(descriptor_);
  }

  /// A cookie-bearing packet, chosen carrier, as real wire bytes.
  util::Bytes make_wire_packet(cookies::Transport transport,
                               uint16_t src_port) {
    cookies::CookieGenerator generator(descriptor_, clock_,
                                       src_port);  // distinct streams
    net::Packet p;
    p.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
    p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
    p.tuple.src_port = src_port;
    p.tuple.dst_port = 443;
    switch (transport) {
      case cookies::Transport::kHttpHeader: {
        p.tuple.proto = net::L4Proto::kTcp;
        net::http::Request r("GET", "/", "example.com");
        const std::string text = r.serialize();
        p.payload.assign(text.begin(), text.end());
        break;
      }
      case cookies::Transport::kUdpHeader:
        p.tuple.proto = net::L4Proto::kUdp;
        p.payload = {1, 2, 3};
        break;
      case cookies::Transport::kIpv6Extension:
        p.ipv6 = true;
        p.tuple.src_ip = net::IpAddress::parse("2001:db8::10").value();
        p.tuple.dst_ip = net::IpAddress::parse("2001:db8::20").value();
        p.tuple.proto = net::L4Proto::kUdp;
        break;
      default:
        ADD_FAILURE() << "unsupported carrier in this fixture";
    }
    EXPECT_TRUE(
        cookies::attach(p, generator.generate(), transport));
    return net::serialize(p);
  }

  util::ManualClock clock_;
  cookies::CookieVerifier verifier_;
  dataplane::ServiceRegistry registry_;
  cookies::CookieDescriptor descriptor_;
};

TEST_F(WirePipelineTest, HttpCookieSurvivesSerialization) {
  const auto wire = make_wire_packet(cookies::Transport::kHttpHeader,
                                     40001);
  auto parsed = net::parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  dataplane::Middlebox middlebox(clock_, verifier_, registry_);
  EXPECT_TRUE(middlebox.process(*parsed).action.has_value());
}

TEST_F(WirePipelineTest, UdpShimCookieSurvivesSerialization) {
  const auto wire = make_wire_packet(cookies::Transport::kUdpHeader,
                                     40002);
  auto parsed = net::parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  dataplane::Middlebox middlebox(clock_, verifier_, registry_);
  EXPECT_TRUE(middlebox.process(*parsed).action.has_value());
}

TEST_F(WirePipelineTest, Ipv6OptionCookieSurvivesSerialization) {
  const auto wire = make_wire_packet(cookies::Transport::kIpv6Extension,
                                     40003);
  auto parsed = net::parse(util::BytesView(wire));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->l3_cookie.has_value());
  dataplane::Middlebox middlebox(clock_, verifier_, registry_);
  EXPECT_TRUE(middlebox.process(*parsed).action.has_value());
}

using MutationCase = std::tuple<int, uint64_t>;  // transport, seed

class WireMutationProperty
    : public ::testing::TestWithParam<MutationCase> {};

TEST_P(WireMutationProperty, TamperedBytesNeverForgeService) {
  // Property: flip any bits anywhere in the wire image — the result
  // either fails to parse, loses its cookie, or fails verification.
  // It must never yield a *different valid* cookie (HMAC integrity),
  // and nothing may crash.
  const auto [transport_int, seed] = GetParam();
  const auto transport = static_cast<cookies::Transport>(transport_int);

  util::ManualClock clock(1000 * kSecond);
  cookies::CookieVerifier verifier(clock);
  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 0xf00d;
  descriptor.key.assign(32, 0x66);
  descriptor.service_data = "Boost";
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, clock, seed);

  net::Packet p;
  p.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
  p.tuple.src_port = 40010;
  p.tuple.dst_port = 443;
  if (transport == cookies::Transport::kIpv6Extension) {
    p.ipv6 = true;
    p.tuple.src_ip = net::IpAddress::parse("2001:db8::10").value();
    p.tuple.dst_ip = net::IpAddress::parse("2001:db8::20").value();
  }
  if (transport == cookies::Transport::kHttpHeader) {
    p.tuple.proto = net::L4Proto::kTcp;
    net::http::Request r("GET", "/", "example.com");
    const std::string text = r.serialize();
    p.payload.assign(text.begin(), text.end());
  } else {
    p.tuple.proto = net::L4Proto::kUdp;
    p.payload = {9, 9, 9};
  }
  const cookies::Cookie original = generator.generate();
  ASSERT_TRUE(cookies::attach(p, original, transport));
  const auto wire = net::serialize(p);

  util::Rng rng(seed * 7919 + 13);
  for (int trial = 0; trial < 400; ++trial) {
    util::Bytes mutated = wire;
    const int flips = 1 + static_cast<int>(rng.next_u64(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.next_u64(mutated.size());
      mutated[pos] ^= static_cast<uint8_t>(1 + rng.next_u64(255));
    }
    const auto parsed = net::parse(util::BytesView(mutated));
    if (!parsed) continue;  // checksum/structure caught it
    const auto extracted = cookies::extract(*parsed);
    if (!extracted) continue;  // cookie destroyed
    for (const auto& cookie : extracted->stack) {
      if (cookie == original) continue;  // bits flipped elsewhere
      // A *modified* cookie must never verify.
      EXPECT_FALSE(verifier.verify(cookie).ok())
          << "forged cookie accepted at trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Carriers, WireMutationProperty,
    ::testing::Values(
        MutationCase{static_cast<int>(cookies::Transport::kHttpHeader), 1},
        MutationCase{static_cast<int>(cookies::Transport::kHttpHeader), 2},
        MutationCase{static_cast<int>(cookies::Transport::kUdpHeader), 3},
        MutationCase{static_cast<int>(cookies::Transport::kUdpHeader), 4},
        MutationCase{static_cast<int>(cookies::Transport::kIpv6Extension),
                     5},
        MutationCase{static_cast<int>(cookies::Transport::kIpv6Extension),
                     6}));

TEST(WireFuzz, ParserNeverCrashesOnMutatedCorpus) {
  // Mutate structurally valid packets heavily and run the full parse +
  // extract path; nothing may crash or hang.
  util::ManualClock clock(1000 * kSecond);
  util::Rng rng(4242);
  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 77;
  descriptor.key.assign(32, 0x12);
  cookies::CookieGenerator generator(descriptor, clock, 1);
  for (int trial = 0; trial < 1500; ++trial) {
    net::Packet p;
    const bool v6 = rng.chance(0.4);
    p.ipv6 = v6;
    if (v6) {
      p.tuple.src_ip = net::IpAddress::parse("2001:db8::1").value();
      p.tuple.dst_ip = net::IpAddress::parse("2001:db8::2").value();
    }
    p.tuple.proto = rng.chance(0.5) ? net::L4Proto::kUdp
                                    : net::L4Proto::kTcp;
    p.payload.resize(rng.next_u64(200));
    for (auto& b : p.payload) b = static_cast<uint8_t>(rng.next_u64());
    if (p.is_udp() && rng.chance(0.5)) {
      cookies::attach(p, generator.generate(),
                      cookies::Transport::kUdpHeader);
    }
    if (v6 && rng.chance(0.5)) {
      cookies::attach(p, generator.generate(),
                      cookies::Transport::kIpv6Extension);
    }
    auto wire = net::serialize(p);
    const int flips = static_cast<int>(rng.next_u64(12));
    for (int f = 0; f < flips && !wire.empty(); ++f) {
      wire[rng.next_u64(wire.size())] ^=
          static_cast<uint8_t>(rng.next_u64(256));
    }
    if (const auto parsed = net::parse(util::BytesView(wire))) {
      (void)cookies::extract(*parsed);
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace nnn
