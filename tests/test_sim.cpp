// Simulator: event loop, links (rate/priority/shaping), NAT.
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "fault/plan.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/nat.h"

namespace nnn::sim {
namespace {

using util::kMillisecond;
using util::kSecond;

TEST(EventLoop, ExecutesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.at(30, [&] { order.push_back(3); });
  loop.at(10, [&] { order.push_back(1); });
  loop.at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimeIsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.at(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, EventsCanScheduleEvents) {
  EventLoop loop;
  int fired = 0;
  loop.at(0, [&] {
    loop.after(5, [&] { ++fired; });
  });
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 5);
}

TEST(EventLoop, PastSchedulingThrows) {
  EventLoop loop;
  loop.at(100, [] {});
  loop.step();
  EXPECT_THROW(loop.at(50, [] {}), std::logic_error);
}

TEST(EventLoop, RunUntilAdvancesClockExactly) {
  EventLoop loop;
  int fired = 0;
  loop.at(10, [&] { ++fired; });
  loop.at(100, [&] { ++fired; });
  loop.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 50);
  loop.run_until(100);
  EXPECT_EQ(fired, 2);
}

TEST(EventLoop, RunawayGuardThrows) {
  EventLoop loop;
  std::function<void()> respawn = [&] { loop.after(1, respawn); };
  loop.after(1, respawn);
  EXPECT_THROW(loop.run(1000), std::runtime_error);
}

net::Packet sized(uint32_t bytes) {
  net::Packet p;
  p.wire_size = bytes;
  return p;
}

TEST(Link, SerializationDelayMatchesRate) {
  EventLoop loop;
  std::vector<util::Timestamp> arrivals;
  Link link(loop, {.rate_bps = 8e6, .prop_delay = 0, .bands = 1,
                   .band_capacity_bytes = 1 << 20},
            [&](net::Packet) { arrivals.push_back(loop.now()); });
  // 1000 bytes at 8 Mb/s = 1 ms each.
  link.send(sized(1000), 0);
  link.send(sized(1000), 0);
  loop.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 1 * kMillisecond);
  EXPECT_EQ(arrivals[1], 2 * kMillisecond);
}

TEST(Link, PropagationDelayAdds) {
  EventLoop loop;
  std::vector<util::Timestamp> arrivals;
  Link link(loop, {.rate_bps = 8e6, .prop_delay = 10 * kMillisecond,
                   .bands = 1, .band_capacity_bytes = 1 << 20},
            [&](net::Packet) { arrivals.push_back(loop.now()); });
  link.send(sized(1000), 0);
  loop.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 11 * kMillisecond);
}

TEST(Link, HighBandPreempts) {
  EventLoop loop;
  std::vector<uint32_t> order;
  Link link(loop, {.rate_bps = 8e6, .prop_delay = 0, .bands = 2,
                   .band_capacity_bytes = 1 << 20},
            [&](net::Packet p) { order.push_back(p.size()); });
  // Fill the best-effort band, then a fast-lane packet arrives while
  // the first is in flight: it must jump the queue.
  link.send(sized(1000), 1);
  link.send(sized(2000), 1);
  link.send(sized(3000), 1);
  loop.after(100, [&] { link.send(sized(500), 0); });
  loop.run();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1000u);  // already serializing
  EXPECT_EQ(order[1], 500u);   // fast lane preempts the rest
}

TEST(Link, ShapedBandIsRateLimited) {
  EventLoop loop;
  uint64_t delivered_bytes = 0;
  util::Timestamp last_arrival = 0;
  Link link(loop, {.rate_bps = 10e6, .prop_delay = 0, .bands = 2,
                   .band_capacity_bytes = 1 << 22},
            [&](net::Packet p) {
              delivered_bytes += p.size();
              last_arrival = loop.now();
            });
  // Shape band 1 to 1 Mb/s with a tiny burst; send 125 KB = 1 second
  // worth at the shaped rate.
  link.set_band_shaper(1, 1e6, 1500);
  for (int i = 0; i < 100; ++i) link.send(sized(1250), 1);
  loop.run();
  EXPECT_EQ(delivered_bytes, 125'000u);
  // 125 KB at 1 Mb/s ≈ 1 s (burst lets the first ~1.5 KB through
  // early, the long-run rate dominates).
  EXPECT_GT(last_arrival, 900 * kMillisecond);
  EXPECT_LT(last_arrival, 1100 * kMillisecond);
}

TEST(Link, UnshapedBandUnaffectedByOtherBandsShaper) {
  EventLoop loop;
  util::Timestamp fast_done = 0;
  Link link(loop, {.rate_bps = 10e6, .prop_delay = 0, .bands = 2,
                   .band_capacity_bytes = 1 << 22},
            [&](net::Packet p) {
              if (p.size() == 999) fast_done = loop.now();
            });
  link.set_band_shaper(1, 1e5, 2000);
  link.send(sized(999), 0);     // fast band claims the link...
  link.send(sized(40000), 1);   // ...slow band queues behind its shaper
  link.send(sized(999), 0);
  loop.run_until(10 * kMillisecond);
  // Both fast packets clear in well under 2 ms: the shaped band's
  // backlog exceeds its burst, so it cannot hold the link.
  EXPECT_GT(fast_done, 0);
  EXPECT_LT(fast_done, 2 * kMillisecond);
}

TEST(Link, ShapedBandIsGuaranteedItsRateUnderLoad) {
  // The tc-style guarantee: a saturated high-priority band cannot
  // starve a shaped band below its configured rate (the Fig. 5b
  // throttled class keeps its 1 Mb/s).
  EventLoop loop;
  uint64_t shaped_bytes = 0;
  Link link(loop, {.rate_bps = 6e6, .prop_delay = 0, .bands = 2,
                   .band_capacity_bytes = 1 << 22},
            [&](net::Packet p) {
              if (p.tuple.src_port == 7) shaped_bytes += p.size();
            });
  link.set_band_shaper(1, 1e6);
  // Saturate band 0 for a full second; offer plenty on band 1.
  for (int i = 0; i < 1000; ++i) link.send(sized(1500), 0);  // 2 s worth
  for (int i = 0; i < 200; ++i) {
    net::Packet p = sized(1500);
    p.tuple.src_port = 7;
    link.send(std::move(p), 1);
  }
  loop.run_until(1 * kSecond);
  // ~1 Mb/s of shaped traffic should have been delivered (+- burst).
  EXPECT_GT(shaped_bytes, 100'000u);
  EXPECT_LT(shaped_bytes, 160'000u);
}

TEST(Link, OverBurstPacketEventuallyServed) {
  // A head packet larger than the shaper's burst must not livelock
  // the link; it is served once the bucket is full and the link idle.
  EventLoop loop;
  int delivered = 0;
  Link link(loop, {.rate_bps = 10e6, .prop_delay = 0, .bands = 2,
                   .band_capacity_bytes = 1 << 22},
            [&](net::Packet) { ++delivered; });
  link.set_band_shaper(1, 1e6, 500);
  link.send(sized(10000), 1);  // 20x the burst
  loop.run_until(1 * kSecond);
  EXPECT_EQ(delivered, 1);
}

TEST(Link, OverflowDrops) {
  EventLoop loop;
  int delivered = 0;
  Link link(loop, {.rate_bps = 1e3, .prop_delay = 0, .bands = 1,
                   .band_capacity_bytes = 3000},
            [&](net::Packet) { ++delivered; });
  for (int i = 0; i < 10; ++i) link.send(sized(1000), 0);
  loop.run();
  EXPECT_LT(delivered, 10);
  EXPECT_GT(link.queues().stats(0).dropped, 0u);
}

TEST(Nat, OutboundAllocatesStableMapping) {
  Nat nat(net::IpAddress::v4(203, 0, 113, 1));
  net::Packet a;
  a.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  a.tuple.src_port = 40000;
  a.tuple.dst_ip = net::IpAddress::v4(8, 8, 8, 8);
  a.tuple.dst_port = 443;
  net::Packet b = a;
  nat.translate_outbound(a);
  nat.translate_outbound(b);
  EXPECT_EQ(a.tuple.src_ip, nat.public_ip());
  EXPECT_EQ(a.tuple.src_port, b.tuple.src_port);  // same mapping reused
  EXPECT_EQ(nat.mapping_count(), 1u);
}

TEST(Nat, DistinctClientsGetDistinctPorts) {
  Nat nat(net::IpAddress::v4(203, 0, 113, 1));
  net::Packet a;
  a.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  a.tuple.src_port = 40000;
  net::Packet b;
  b.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 11);
  b.tuple.src_port = 40000;
  nat.translate_outbound(a);
  nat.translate_outbound(b);
  EXPECT_NE(a.tuple.src_port, b.tuple.src_port);
  EXPECT_EQ(nat.mapping_count(), 2u);
}

TEST(Nat, InboundReversesMapping) {
  Nat nat(net::IpAddress::v4(203, 0, 113, 1));
  net::Packet out;
  out.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  out.tuple.src_port = 40000;
  out.tuple.dst_ip = net::IpAddress::v4(8, 8, 8, 8);
  out.tuple.dst_port = 443;
  nat.translate_outbound(out);

  net::Packet reply;
  reply.tuple = out.tuple.reversed();
  ASSERT_TRUE(nat.translate_inbound(reply));
  EXPECT_EQ(reply.tuple.dst_ip, net::IpAddress::v4(192, 168, 1, 10));
  EXPECT_EQ(reply.tuple.dst_port, 40000);
}

TEST(Nat, InboundWithoutMappingRefused) {
  Nat nat(net::IpAddress::v4(203, 0, 113, 1));
  net::Packet stray;
  stray.tuple.dst_ip = nat.public_ip();
  stray.tuple.dst_port = 12345;
  EXPECT_FALSE(nat.translate_inbound(stray));
  net::Packet not_mine;
  not_mine.tuple.dst_ip = net::IpAddress::v4(9, 9, 9, 9);
  EXPECT_FALSE(nat.translate_inbound(not_mine));
}

// ---------------------------------------------------------------------------
// Impairment determinism contract (see Link::Config). The audit
// subsystem's matched-pair replay assumes that a lane's impairment
// stream is a pure function of (impairment_seed, send schedule); these
// tests pin that down.

/// Run a fixed 200-packet schedule through a lossy, jittery link and
/// return the (arrival time, size) trace.
std::vector<std::pair<util::Timestamp, uint32_t>> impaired_trace(
    uint64_t impairment_seed) {
  EventLoop loop;
  std::vector<std::pair<util::Timestamp, uint32_t>> trace;
  Link link(loop,
            {.rate_bps = 8e6, .prop_delay = kMillisecond, .bands = 2,
             .band_capacity_bytes = 1 << 22, .loss_rate = 0.25,
             .delay_jitter = 3 * kMillisecond,
             .impairment_seed = impairment_seed},
            [&](net::Packet p) { trace.emplace_back(loop.now(), p.size()); });
  for (int i = 0; i < 200; ++i) {
    link.send(sized(500 + 7 * (i % 50)), i % 2);
  }
  loop.run();
  return trace;
}

TEST(Link, ImpairmentsAreDeterministicPerSeed) {
  const auto first = impaired_trace(0xfeed);
  const auto second = impaired_trace(0xfeed);
  // Same seed + same schedule: byte-identical drops, jitter draws,
  // and therefore delivery order and timing.
  ASSERT_EQ(first.size(), second.size());
  EXPECT_TRUE(first == second);
  // Sanity: the impairments actually fired (some of 200 were lost).
  EXPECT_LT(first.size(), 200u);
  EXPECT_GT(first.size(), 100u);
}

TEST(Link, ImpairmentsDivergeAcrossSeeds) {
  const auto first = impaired_trace(0xfeed);
  const auto second = impaired_trace(0xbeef);
  EXPECT_FALSE(first == second);
}

// ---------------------------------------------------------------------------
// kThrottleNonCookie: a misconfigured/discriminating middlebox that
// slows everything outside the fast lane. Band 0 must be untouched —
// that asymmetry is exactly what the auditor detects.

TEST(Link, ThrottleNonCookieSlowsOnlySlowBands) {
  fault::Injector injector;
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kThrottleNonCookie,
                         .start = 0,
                         .duration = 10 * kSecond,
                         .magnitude = 0.5,
                         .target = 7});
  injector.arm(plan, /*seed=*/1);

  EventLoop loop;
  std::vector<std::pair<util::Timestamp, uint32_t>> arrivals;
  Link link(loop, {.rate_bps = 8e6, .prop_delay = 0, .bands = 2,
                   .band_capacity_bytes = 1 << 20},
            [&](net::Packet p) { arrivals.emplace_back(loop.now(), p.size()); });
  link.set_fault_injector(&injector, /*link_id=*/7);

  // 1000 bytes at 8 Mb/s = 1 ms nominal serialization.
  link.send(sized(1000), 0);  // fast lane: full rate
  link.send(sized(999), 1);   // best effort: rate * 0.5 => 2 ms
  loop.run();

  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], (std::pair{1 * kMillisecond, 1000u}));
  // The throttled packet serializes at half rate after the first
  // finishes: 1 ms + ~2 ms.
  EXPECT_GE(arrivals[1].first, 2900u);
  EXPECT_EQ(arrivals[1].second, 999u);
  EXPECT_EQ(link.fault_throttled(), 1u);
  EXPECT_GT(injector.injected(fault::FaultKind::kThrottleNonCookie), 0u);
}

TEST(Link, ThrottleNonCookieIgnoresOtherLinks) {
  fault::Injector injector;
  fault::FaultPlan plan;
  plan.add({.kind = fault::FaultKind::kThrottleNonCookie,
                         .start = 0,
                         .duration = 10 * kSecond,
                         .magnitude = 0.5,
                         .target = 7});
  injector.arm(plan, /*seed=*/1);

  EventLoop loop;
  std::vector<util::Timestamp> arrivals;
  Link link(loop, {.rate_bps = 8e6, .prop_delay = 0, .bands = 2,
                   .band_capacity_bytes = 1 << 20},
            [&](net::Packet) { arrivals.push_back(loop.now()); });
  link.set_fault_injector(&injector, /*link_id=*/3);  // not the target

  link.send(sized(1000), 1);
  loop.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_EQ(arrivals[0], 1 * kMillisecond);
  EXPECT_EQ(link.fault_throttled(), 0u);
}

}  // namespace
}  // namespace nnn::sim
