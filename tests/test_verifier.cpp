// CookieVerifier: the four checks of §4.2 plus revocation/expiry.
#include <gtest/gtest.h>

#include "cookies/generator.h"
#include "cookies/verifier.h"
#include "util/clock.h"

namespace nnn::cookies {
namespace {

CookieDescriptor make_descriptor(CookieId id) {
  CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(id * 11 + 1));
  d.service_data = "Boost";
  return d;
}

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() : clock_(1'000'000 * util::kSecond), verifier_(clock_) {}

  CookieGenerator install(CookieId id) {
    auto descriptor = make_descriptor(id);
    verifier_.add_descriptor(descriptor);
    return CookieGenerator(descriptor, clock_, id);
  }

  util::ManualClock clock_;
  CookieVerifier verifier_;
};

TEST_F(VerifierTest, ValidCookieVerifies) {
  auto gen = install(1);
  const auto result = verifier_.verify(gen.generate());
  EXPECT_TRUE(result.ok());
  ASSERT_NE(result.descriptor, nullptr);
  EXPECT_EQ(result.descriptor->service_data, "Boost");
  EXPECT_EQ(verifier_.stats().verified, 1u);
}

TEST_F(VerifierTest, UnknownIdRejected) {
  auto gen = install(2);
  Cookie c = gen.generate();
  c.cookie_id = 999;
  EXPECT_EQ(verifier_.verify(c).status, VerifyStatus::kUnknownId);
  EXPECT_EQ(verifier_.stats().unknown_id, 1u);
}

TEST_F(VerifierTest, ForgedSignatureRejected) {
  auto gen = install(3);
  Cookie c = gen.generate();
  c.signature[5] ^= 0x01;
  EXPECT_EQ(verifier_.verify(c).status, VerifyStatus::kBadSignature);
}

TEST_F(VerifierTest, WrongKeyRejected) {
  auto descriptor = make_descriptor(4);
  verifier_.add_descriptor(descriptor);
  auto other = descriptor;
  other.key.assign(32, 0xEE);
  CookieGenerator rogue(other, clock_, 4);
  EXPECT_EQ(verifier_.verify(rogue.generate()).status,
            VerifyStatus::kBadSignature);
}

TEST_F(VerifierTest, ReplayRejected) {
  auto gen = install(5);
  const Cookie c = gen.generate();
  EXPECT_TRUE(verifier_.verify(c).ok());
  EXPECT_EQ(verifier_.verify(c).status, VerifyStatus::kReplayed);
  EXPECT_EQ(verifier_.stats().replayed, 1u);
}

TEST_F(VerifierTest, NctWindowBoundaries) {
  auto gen = install(6);
  // Exactly NCT old: still accepted (Listing 3 rejects only > NCT).
  Cookie c = gen.generate();
  clock_.advance(kNetworkCoherencyTime);
  EXPECT_TRUE(verifier_.verify(c).ok());
  // One second past NCT: stale.
  Cookie late = gen.generate();
  clock_.advance(kNetworkCoherencyTime + util::kSecond);
  EXPECT_EQ(verifier_.verify(late).status, VerifyStatus::kStaleTimestamp);
}

TEST_F(VerifierTest, FutureTimestampRejected) {
  auto gen = install(7);
  Cookie c = gen.generate();
  c.timestamp += 100;  // forged future time
  c.signature = c.compute_tag(util::BytesView(make_descriptor(7).key));
  EXPECT_EQ(verifier_.verify(c).status, VerifyStatus::kStaleTimestamp);
}

TEST_F(VerifierTest, RevocationTombstones) {
  auto gen = install(8);
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  EXPECT_TRUE(verifier_.revoke(8));
  EXPECT_EQ(verifier_.verify(gen.generate()).status,
            VerifyStatus::kDescriptorRevoked);
  // Unknown ids cannot be revoked.
  EXPECT_FALSE(verifier_.revoke(999));
  // find() hides revoked descriptors.
  EXPECT_EQ(verifier_.find(8), nullptr);
  // Re-adding reinstates service.
  verifier_.add_descriptor(make_descriptor(8));
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
}

TEST_F(VerifierTest, ExpiredDescriptorRejected) {
  auto descriptor = make_descriptor(9);
  descriptor.attributes.expires_at = clock_.now() + 10 * util::kSecond;
  verifier_.add_descriptor(descriptor);
  CookieGenerator gen(descriptor, clock_, 9);
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  clock_.advance(11 * util::kSecond);
  EXPECT_EQ(verifier_.verify(gen.generate()).status,
            VerifyStatus::kDescriptorExpired);
}

TEST_F(VerifierTest, RemoveForgetsEntirely) {
  auto gen = install(10);
  EXPECT_TRUE(verifier_.remove(10));
  EXPECT_EQ(verifier_.verify(gen.generate()).status,
            VerifyStatus::kUnknownId);
  EXPECT_FALSE(verifier_.remove(10));
}

TEST_F(VerifierTest, WireAndTextVerification) {
  auto gen = install(11);
  EXPECT_TRUE(
      verifier_.verify_wire(util::BytesView(gen.generate().encode())).ok());
  EXPECT_TRUE(verifier_.verify_text(gen.generate().encode_text()).ok());
  EXPECT_EQ(verifier_.verify_text("garbage").status,
            VerifyStatus::kUnknownId);
}

TEST_F(VerifierTest, IndependentReplayCachesPerDescriptor) {
  auto gen_a = install(12);
  auto gen_b = install(13);
  // Same uuid under two descriptors: each descriptor tracks its own.
  Cookie a = gen_a.generate();
  Cookie b = a;
  b.cookie_id = 13;
  b.signature = b.compute_tag(util::BytesView(make_descriptor(13).key));
  EXPECT_TRUE(verifier_.verify(a).ok());
  EXPECT_TRUE(verifier_.verify(b).ok());
}

TEST_F(VerifierTest, StatsTotalsAdd) {
  auto gen = install(14);
  const Cookie c = gen.generate();
  verifier_.verify(c);
  verifier_.verify(c);
  Cookie bad = gen.generate();
  bad.signature[0] ^= 1;
  verifier_.verify(bad);
  EXPECT_EQ(verifier_.stats().total(), 3u);
  verifier_.reset_stats();
  EXPECT_EQ(verifier_.stats().total(), 0u);
}

TEST(VerifierStandalone, FailOpenSemantics) {
  // A failed verification must never be an error path: it returns a
  // result the caller maps to best-effort, it does not throw.
  util::ManualClock clock(0);
  CookieVerifier verifier(clock);
  Cookie junk;
  junk.cookie_id = 1234;
  EXPECT_NO_THROW({
    const auto result = verifier.verify(junk);
    EXPECT_FALSE(result.ok());
  });
}

}  // namespace
}  // namespace nnn::cookies
