// CookieVerifier: the four checks of §4.2 plus revocation/expiry.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "controlplane/table_mirror.h"
#include "cookies/generator.h"
#include "cookies/verifier.h"
#include "util/clock.h"

namespace nnn::cookies {
namespace {

CookieDescriptor make_descriptor(CookieId id) {
  CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(id * 11 + 1));
  d.service_data = "Boost";
  return d;
}

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() : clock_(1'000'000 * util::kSecond), verifier_(clock_) {}

  CookieGenerator install(CookieId id) {
    auto descriptor = make_descriptor(id);
    verifier_.add_descriptor(descriptor);
    return CookieGenerator(descriptor, clock_, id);
  }

  util::ManualClock clock_;
  CookieVerifier verifier_;
};

TEST_F(VerifierTest, ValidCookieVerifies) {
  auto gen = install(1);
  const auto result = verifier_.verify(gen.generate());
  EXPECT_TRUE(result.ok());
  ASSERT_NE(result.descriptor, nullptr);
  EXPECT_EQ(result.descriptor->service_data, "Boost");
  EXPECT_EQ(verifier_.stats().verified, 1u);
}

TEST_F(VerifierTest, UnknownIdRejected) {
  auto gen = install(2);
  Cookie c = gen.generate();
  c.cookie_id = 999;
  EXPECT_EQ(verifier_.verify(c).status, VerifyStatus::kUnknownId);
  EXPECT_EQ(verifier_.stats().unknown_id, 1u);
}

TEST_F(VerifierTest, ForgedSignatureRejected) {
  auto gen = install(3);
  Cookie c = gen.generate();
  c.signature[5] ^= 0x01;
  EXPECT_EQ(verifier_.verify(c).status, VerifyStatus::kBadSignature);
}

TEST_F(VerifierTest, WrongKeyRejected) {
  auto descriptor = make_descriptor(4);
  verifier_.add_descriptor(descriptor);
  auto other = descriptor;
  other.key.assign(32, 0xEE);
  CookieGenerator rogue(other, clock_, 4);
  EXPECT_EQ(verifier_.verify(rogue.generate()).status,
            VerifyStatus::kBadSignature);
}

TEST_F(VerifierTest, ReplayRejected) {
  auto gen = install(5);
  const Cookie c = gen.generate();
  EXPECT_TRUE(verifier_.verify(c).ok());
  EXPECT_EQ(verifier_.verify(c).status, VerifyStatus::kReplayed);
  EXPECT_EQ(verifier_.stats().replayed, 1u);
}

TEST_F(VerifierTest, NctWindowBoundaries) {
  auto gen = install(6);
  // Exactly NCT old: still accepted (Listing 3 rejects only > NCT).
  Cookie c = gen.generate();
  clock_.advance(kNetworkCoherencyTime);
  EXPECT_TRUE(verifier_.verify(c).ok());
  // One second past NCT: stale.
  Cookie late = gen.generate();
  clock_.advance(kNetworkCoherencyTime + util::kSecond);
  EXPECT_EQ(verifier_.verify(late).status, VerifyStatus::kStaleTimestamp);
}

TEST_F(VerifierTest, FutureTimestampRejected) {
  auto gen = install(7);
  Cookie c = gen.generate();
  c.timestamp += 100;  // forged future time
  c.signature = c.compute_tag(util::BytesView(make_descriptor(7).key));
  EXPECT_EQ(verifier_.verify(c).status, VerifyStatus::kStaleTimestamp);
}

TEST_F(VerifierTest, RevocationTombstones) {
  auto gen = install(8);
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  EXPECT_TRUE(verifier_.revoke(8));
  EXPECT_EQ(verifier_.verify(gen.generate()).status,
            VerifyStatus::kDescriptorRevoked);
  // Unknown ids cannot be revoked.
  EXPECT_FALSE(verifier_.revoke(999));
  // find() hides revoked descriptors.
  EXPECT_EQ(verifier_.find(8), nullptr);
  // Re-adding reinstates service.
  verifier_.add_descriptor(make_descriptor(8));
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
}

TEST_F(VerifierTest, ExpiredDescriptorRejected) {
  auto descriptor = make_descriptor(9);
  descriptor.attributes.expires_at = clock_.now() + 10 * util::kSecond;
  verifier_.add_descriptor(descriptor);
  CookieGenerator gen(descriptor, clock_, 9);
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  clock_.advance(11 * util::kSecond);
  EXPECT_EQ(verifier_.verify(gen.generate()).status,
            VerifyStatus::kDescriptorExpired);
}

TEST_F(VerifierTest, RemoveForgetsEntirely) {
  auto gen = install(10);
  EXPECT_TRUE(verifier_.remove(10));
  EXPECT_EQ(verifier_.verify(gen.generate()).status,
            VerifyStatus::kUnknownId);
  EXPECT_FALSE(verifier_.remove(10));
}

TEST_F(VerifierTest, WireAndTextVerification) {
  auto gen = install(11);
  EXPECT_TRUE(
      verifier_.verify_wire(util::BytesView(gen.generate().encode())).ok());
  EXPECT_TRUE(verifier_.verify_text(gen.generate().encode_text()).ok());
  // A blob that does not decode is malformed, not an unknown
  // descriptor — fuzz noise and never-issued ids stay distinguishable.
  EXPECT_EQ(verifier_.verify_text("garbage").status,
            VerifyStatus::kMalformed);
  EXPECT_EQ(verifier_.stats().malformed, 1u);
  EXPECT_EQ(verifier_.stats().unknown_id, 0u);
}

TEST_F(VerifierTest, IndependentReplayCachesPerDescriptor) {
  auto gen_a = install(12);
  auto gen_b = install(13);
  // Same uuid under two descriptors: each descriptor tracks its own.
  Cookie a = gen_a.generate();
  Cookie b = a;
  b.cookie_id = 13;
  b.signature = b.compute_tag(util::BytesView(make_descriptor(13).key));
  EXPECT_TRUE(verifier_.verify(a).ok());
  EXPECT_TRUE(verifier_.verify(b).ok());
}

TEST_F(VerifierTest, StatsTotalsAdd) {
  auto gen = install(14);
  const Cookie c = gen.generate();
  verifier_.verify(c);
  verifier_.verify(c);
  Cookie bad = gen.generate();
  bad.signature[0] ^= 1;
  verifier_.verify(bad);
  EXPECT_EQ(verifier_.stats().total(), 3u);
  verifier_.reset_stats();
  EXPECT_EQ(verifier_.stats().total(), 0u);
}

TEST_F(VerifierTest, BatchMatchesSequentialOnMixedBurst) {
  // Differential: verify_batch against a reference verifier fed the
  // same burst one cookie at a time. Same descriptors, same clock —
  // results and stats must be bit-identical, including the
  // order-sensitive outcomes (replay, stale).
  CookieVerifier reference(clock_);
  std::vector<CookieGenerator> gens;
  for (const CookieId id : {20u, 21u, 22u}) {
    const auto descriptor = make_descriptor(id);
    verifier_.add_descriptor(descriptor);
    reference.add_descriptor(descriptor);
    gens.emplace_back(descriptor, clock_, id);
  }

  // An old cookie that will be stale once the burst runs...
  const Cookie stale = gens[0].generate();
  clock_.advance(kNetworkCoherencyTime + 2 * util::kSecond);

  std::vector<Cookie> burst;
  for (int round = 0; round < 3; ++round) {
    for (auto& gen : gens) burst.push_back(gen.generate());
  }
  burst.push_back(burst[1]);  // replay of an earlier in-burst cookie
  burst.push_back(stale);
  Cookie forged = gens[1].generate();
  forged.signature[3] ^= 0x40;
  burst.push_back(forged);
  Cookie unknown = gens[2].generate();
  unknown.cookie_id = 404;
  burst.push_back(unknown);
  burst.push_back(burst[4]);  // second replay, different descriptor

  std::vector<VerifyResult> batched(burst.size());
  verifier_.verify_batch(burst, batched);
  for (size_t i = 0; i < burst.size(); ++i) {
    const VerifyResult expected = reference.verify(burst[i]);
    EXPECT_EQ(batched[i].status, expected.status) << "cookie " << i;
    // Descriptor pointers come from different verifiers; compare what
    // they point at.
    ASSERT_EQ(batched[i].descriptor != nullptr,
              expected.descriptor != nullptr)
        << "cookie " << i;
    if (expected.descriptor != nullptr) {
      EXPECT_EQ(batched[i].descriptor->cookie_id,
                expected.descriptor->cookie_id);
    }
  }
  EXPECT_EQ(verifier_.stats(), reference.stats());
  EXPECT_EQ(verifier_.stats().replayed, 2u);
  EXPECT_EQ(verifier_.stats().stale_timestamp, 1u);
  EXPECT_EQ(verifier_.stats().bad_signature, 1u);
  EXPECT_EQ(verifier_.stats().unknown_id, 1u);
}

TEST_F(VerifierTest, BatchSeesEarlierCookiesInSameBurst) {
  // A uuid used twice within one burst: the first is fresh, the second
  // must already be a replay — the batch path may not defer replay
  // bookkeeping past the burst.
  auto gen = install(30);
  const Cookie c = gen.generate();
  std::vector<Cookie> burst = {c, c, c};
  std::vector<VerifyResult> results(burst.size());
  verifier_.verify_batch(burst, results);
  EXPECT_EQ(results[0].status, VerifyStatus::kOk);
  EXPECT_EQ(results[1].status, VerifyStatus::kReplayed);
  EXPECT_EQ(results[2].status, VerifyStatus::kReplayed);
}

TEST_F(VerifierTest, BatchScratchReuseAcrossCalls) {
  // Back-to-back bursts reuse the verifier's sort scratch; results
  // must not leak between calls (and the empty burst is a no-op).
  auto gen = install(31);
  std::vector<VerifyResult> empty_results;
  verifier_.verify_batch({}, empty_results);
  EXPECT_EQ(verifier_.stats().total(), 0u);
  for (int round = 0; round < 3; ++round) {
    std::vector<Cookie> burst = {gen.generate(), gen.generate()};
    std::vector<VerifyResult> results(burst.size());
    verifier_.verify_batch(burst, results);
    EXPECT_EQ(results[0].status, VerifyStatus::kOk) << "round " << round;
    EXPECT_EQ(results[1].status, VerifyStatus::kOk) << "round " << round;
  }
  EXPECT_EQ(verifier_.stats().verified, 6u);
}

TEST(VerifierStandalone, FailOpenSemantics) {
  // A failed verification must never be an error path: it returns a
  // result the caller maps to best-effort, it does not throw.
  util::ManualClock clock(0);
  CookieVerifier verifier(clock);
  Cookie junk;
  junk.cookie_id = 1234;
  EXPECT_NO_THROW({
    const auto result = verifier.verify(junk);
    EXPECT_FALSE(result.ok());
  });
}

// --- External-table mode: hot/cold tiering --------------------------

class ExternalVerifierTest : public ::testing::Test {
 protected:
  ExternalVerifierTest()
      : clock_(1'000'000 * util::kSecond), verifier_(clock_) {}

  /// Build an immutable table from the mirror, stamped like the
  /// publisher would.
  void publish(uint64_t epoch) {
    table_ = mirror_.build();
    table_->set_epoch(epoch);
    verifier_.set_external_table(table_.get());
  }

  /// `salt` picks a distinct uuid stream: the replay cache is
  /// verifier-wide in external mode, so two generators for the same
  /// descriptor must not replay each other's uuids.
  CookieGenerator generator(const CookieDescriptor& descriptor,
                            uint64_t salt = 0) {
    return CookieGenerator(descriptor, clock_,
                           descriptor.cookie_id + (salt << 32));
  }

  util::ManualClock clock_;
  CookieVerifier verifier_;
  controlplane::TableMirror mirror_;
  std::unique_ptr<DescriptorTable> table_;
};

TEST_F(ExternalVerifierTest, ColdHitRehydratesThenStaysHot) {
  mirror_.reset(1, {make_descriptor(1)}, {});
  publish(1);
  auto gen = generator(make_descriptor(1));

  EXPECT_EQ(verifier_.hot_tier().resident(), 0u);
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  // First sight built the key schedule from the 64-byte cold record.
  EXPECT_EQ(verifier_.hot_tier().resident(), 1u);
  EXPECT_EQ(verifier_.hot_tier().rehydrations(), 1u);
  // Subsequent cookies ride the midstate cache: no further rebuilds.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  }
  EXPECT_EQ(verifier_.hot_tier().rehydrations(), 1u);
  EXPECT_GE(verifier_.hot_tier().hits(), 10u);
}

TEST_F(ExternalVerifierTest, TableSwapRevalidatesWithoutRekeying) {
  mirror_.reset(1, {make_descriptor(1)}, {});
  publish(1);
  auto gen = generator(make_descriptor(1));
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  ASSERT_EQ(verifier_.hot_tier().rehydrations(), 1u);

  // Swap to a new epoch with the same key: the entry revalidates, the
  // schedule survives.
  publish(2);
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  EXPECT_EQ(verifier_.hot_tier().rehydrations(), 1u);

  // Rotate the key and swap again: old-key cookies die, new-key
  // cookies verify, and the schedule was rebuilt exactly once.
  auto rotated = make_descriptor(1);
  rotated.key.assign(32, 0xCD);
  ASSERT_TRUE(mirror_.apply(controlplane::Update{2, controlplane::UpdateOp::kAdd, 1, rotated}));
  publish(3);
  EXPECT_EQ(verifier_.verify(gen.generate()).status,
            VerifyStatus::kBadSignature);
  auto rotated_gen = generator(rotated, /*salt=*/1);
  EXPECT_EQ(verifier_.verify(rotated_gen.generate()).status, VerifyStatus::kOk);
  EXPECT_EQ(verifier_.hot_tier().rehydrations(), 2u);
}

TEST_F(ExternalVerifierTest, RevokedRecordShortCircuitsWithoutAdmission) {
  mirror_.reset(1, {make_descriptor(1)}, {});
  publish(1);
  auto gen = generator(make_descriptor(1));
  EXPECT_TRUE(verifier_.verify(gen.generate()).ok());

  ASSERT_TRUE(mirror_.apply(controlplane::Update{2, controlplane::UpdateOp::kRevoke, 1, {}}));
  publish(2);
  EXPECT_EQ(verifier_.verify(gen.generate()).status,
            VerifyStatus::kDescriptorRevoked);
  EXPECT_TRUE(verifier_.knows(1));
  EXPECT_EQ(verifier_.find(1), nullptr);
  // The stale epoch-1 entry never re-admitted; nothing holds midstates
  // for a revoked descriptor at the current epoch.
  EXPECT_EQ(verifier_.hot_tier().peek(1, 2), nullptr);
}

TEST_F(ExternalVerifierTest, ReplayScopeIsVerifierWideAcrossDescriptors) {
  // External mode shares ONE uuid-keyed replay cache across
  // descriptors (uuids are 128-bit randoms, so a cross-descriptor
  // collision is adversarial reuse). Re-signing a seen uuid under a
  // different descriptor's key must still be caught.
  const auto d1 = make_descriptor(1);
  const auto d2 = make_descriptor(2);
  mirror_.reset(1, {d1, d2}, {});
  publish(1);
  auto gen = generator(d1);
  const Cookie first = gen.generate();
  EXPECT_TRUE(verifier_.verify(first).ok());

  Cookie cross = first;
  cross.cookie_id = 2;
  cross.signature = cross.compute_tag(util::BytesView(d2.key));
  EXPECT_EQ(verifier_.verify(cross).status, VerifyStatus::kReplayed);
  EXPECT_EQ(verifier_.external_replay().size(), 1u);
}

TEST_F(ExternalVerifierTest, HotBudgetEvictsColdDescriptors) {
  std::vector<CookieDescriptor> live;
  for (CookieId id = 1; id <= 8; ++id) live.push_back(make_descriptor(id));
  mirror_.reset(1, live, {});
  publish(1);
  verifier_.set_hot_budget(2);
  for (CookieId id = 1; id <= 8; ++id) {
    auto gen = generator(make_descriptor(id));
    EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  }
  EXPECT_LE(verifier_.hot_tier().resident(), 2u);
  EXPECT_GE(verifier_.hot_tier().evictions(), 6u);
  // Evicted descriptors still verify — they just pay rehydration.
  auto gen = generator(make_descriptor(1), /*salt=*/1);
  EXPECT_EQ(verifier_.verify(gen.generate()).status, VerifyStatus::kOk);
}

TEST_F(ExternalVerifierTest, ConfiguredReplayCapacityClampsFlood) {
  mirror_.reset(1, {make_descriptor(1)}, {});
  publish(1);
  verifier_.configure_external_replay(4);
  auto gen = generator(make_descriptor(1));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(verifier_.verify(gen.generate()).ok());
  }
  EXPECT_EQ(verifier_.external_replay().size(), 4u);
  EXPECT_EQ(verifier_.external_replay().capacity_evictions(), 6u);
}

TEST_F(ExternalVerifierTest, BatchMatchesSequentialInExternalMode) {
  const auto d1 = make_descriptor(1);
  const auto d2 = make_descriptor(2);
  mirror_.reset(1, {d1, d2}, {});
  publish(1);

  auto gen1 = generator(d1);
  auto gen2 = generator(d2);
  std::vector<Cookie> burst;
  for (int i = 0; i < 8; ++i) {
    burst.push_back(i % 2 == 0 ? gen1.generate() : gen2.generate());
  }
  burst.push_back(burst[0]);  // replay within the burst
  Cookie forged = gen1.generate();
  forged.signature[0] ^= 1;
  burst.push_back(forged);

  // Sequential twin run on a fresh verifier over the same table.
  CookieVerifier sequential(clock_);
  sequential.set_external_table(table_.get());
  std::vector<VerifyResult> expected;
  for (const Cookie& c : burst) expected.push_back(sequential.verify(c));

  std::vector<VerifyResult> results(burst.size());
  verifier_.verify_batch(burst, results);
  for (size_t i = 0; i < burst.size(); ++i) {
    EXPECT_EQ(results[i].status, expected[i].status) << "cookie " << i;
  }
  EXPECT_EQ(verifier_.stats(), sequential.stats());
}

}  // namespace
}  // namespace nnn::cookies
