// The threaded dataplane runtime (§4.6 executed, not modeled): ring
// semantics, per-flow ordering, concurrent double-spend under both
// dispatch policies, backpressure accounting, graceful lifecycle.
// This suite is the primary target of the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <tuple>
#include <vector>

#include "cookies/generator.h"
#include "cookies/transport.h"
#include "dataplane/service_registry.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "runtime/dataplane.h"
#include "runtime/dispatcher.h"
#include "runtime/mpsc_ring.h"
#include "runtime/spsc_ring.h"
#include "runtime/worker_pool.h"
#include "workload/packet_gen.h"
#include "telemetry/exposition.h"
#include "telemetry/metrics.h"
#include "util/clock.h"
#include "util/logging.h"

namespace nnn::runtime {
namespace {

using dataplane::DispatchPolicy;

// --- Ring semantics ------------------------------------------------

TEST(SpscRing, FifoAndCapacity) {
  SpscRing<int> ring(4);  // rounds to 4
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(99));  // full
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);  // strict FIFO
  }
  EXPECT_FALSE(ring.try_pop(out));  // empty
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
}

TEST(SpscRing, BatchPopRespectsMaxAndOrder) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) ring.try_push(int(i));
  int buf[4];
  EXPECT_EQ(ring.pop_batch(buf, 4), 4u);
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(buf[3], 3);
  EXPECT_EQ(ring.pop_batch(buf, 4), 4u);
  EXPECT_EQ(ring.pop_batch(buf, 4), 2u);  // partial final burst
  EXPECT_EQ(buf[1], 9);
  EXPECT_EQ(ring.pop_batch(buf, 4), 0u);
}

TEST(SpscRing, MovesValuesThrough) {
  SpscRing<std::unique_ptr<int>> ring(4);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_TRUE(out);
  EXPECT_EQ(*out, 7);
}

/// Two real threads across the ring; every value arrives exactly once
/// and in order. TSan validates the memory-order protocol.
TEST(SpscRing, CrossThreadFifo) {
  SpscRing<uint64_t> ring(256);
  constexpr uint64_t kCount = 200'000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount;) {
      if (ring.try_push(uint64_t(i))) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expected = 0;
  uint64_t buf[32];
  while (expected < kCount) {
    const size_t n = ring.pop_batch(buf, 32);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(buf[i], expected) << "out of order";
      ++expected;
    }
  }
  producer.join();
}

TEST(MpscRing, SingleThreadRoundTrip) {
  MpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int(i)));
  EXPECT_FALSE(ring.try_push(99));  // full
  int out;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

/// Four producers, one consumer: every value exactly once.
TEST(MpscRing, ConcurrentProducersDeliverEverything) {
  MpscRing<uint64_t> ring(512);
  constexpr uint64_t kPerProducer = 20'000;
  constexpr int kProducers = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer;) {
        // Encode producer in the high bits for per-producer FIFO check.
        if (ring.try_push((uint64_t(p) << 32) | i)) {
          ++i;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  std::vector<uint64_t> next(kProducers, 0);
  uint64_t received = 0;
  uint64_t buf[64];
  while (received < kPerProducer * kProducers) {
    const size_t n = ring.pop_batch(buf, 64);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      const int p = static_cast<int>(buf[i] >> 32);
      const uint64_t seq = buf[i] & 0xffffffff;
      ASSERT_EQ(seq, next[p]) << "per-producer order violated";
      ++next[p];
    }
    received += n;
  }
  for (auto& t : producers) t.join();
}

// --- Pool fixtures -------------------------------------------------

cookies::CookieDescriptor make_descriptor(cookies::CookieId id) {
  cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(0x40 + id));
  d.service_data = "Boost";
  return d;
}

net::Packet flow_packet(uint32_t flow_id, uint32_t seq) {
  net::Packet p;
  p.tuple.src_ip = net::IpAddress::v4(0x0a000000u | flow_id);
  p.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 1);
  p.tuple.src_port = static_cast<uint16_t>(1024 + flow_id);
  p.tuple.dst_port = 443;
  p.tuple.proto = net::L4Proto::kUdp;
  p.wire_size = 512;
  p.seq = seq;
  return p;
}

struct PoolFixture {
  util::SystemClock clock;  // safe for concurrent reads
  dataplane::ServiceRegistry registry;
  WorkerPool pool;

  explicit PoolFixture(WorkerPool::Config config)
      : pool(clock, registry, config) {
    registry.bind("Boost", dataplane::PriorityAction{0});
  }
};

// --- Per-flow ordering ---------------------------------------------

/// All packets of one flow route to one worker (flow hash) and cross
/// one SPSC ring, so the runtime preserves per-flow order even with
/// many workers and interleaved flows.
TEST(Runtime, PerFlowOrderingPreserved) {
  WorkerPool::Config config;
  config.workers = 4;
  config.ring_capacity = 256;
  config.verdict_capacity = 1 << 15;
  PoolFixture fx(config);
  Dispatcher dispatcher(fx.pool,
                        {.policy = DispatchPolicy::kFlowHash});
  fx.pool.start();

  constexpr uint32_t kFlows = 16;
  constexpr uint32_t kPacketsPerFlow = 500;
  for (uint32_t seq = 0; seq < kPacketsPerFlow; ++seq) {
    for (uint32_t flow = 0; flow < kFlows; ++flow) {
      dispatcher.dispatch_blocking(flow_packet(flow, seq));
    }
  }
  dispatcher.drain();
  fx.pool.stop();

  std::vector<VerdictRecord> verdicts;
  fx.pool.drain_verdicts(verdicts);
  ASSERT_EQ(verdicts.size(), size_t{kFlows} * kPacketsPerFlow);

  std::map<net::FiveTuple, uint32_t> next_seq;
  std::map<net::FiveTuple, uint32_t> flow_worker;
  for (const auto& v : verdicts) {
    // Records from different workers interleave arbitrarily in the
    // MPSC ring; within one flow, sequence must be monotonic.
    auto [it, fresh] = next_seq.try_emplace(v.tuple, 0);
    EXPECT_EQ(v.seq, it->second) << "flow reordered";
    ++it->second;
    auto [wit, first] = flow_worker.try_emplace(v.tuple, v.worker);
    EXPECT_EQ(v.worker, wit->second) << "flow migrated between workers";
  }
  EXPECT_EQ(next_seq.size(), kFlows);
}

// --- Concurrent double-spend (§4.6) --------------------------------

/// Mint ONE cookie, replay it from concurrent producers with tuples
/// spread across flows. Under descriptor affinity every copy routes to
/// the same worker whose replay cache accepts exactly one.
TEST(Runtime, ConcurrentDoubleSpendRejectedUnderAffinity) {
  WorkerPool::Config config;
  config.workers = 4;
  PoolFixture fx(config);
  fx.pool.add_descriptor(make_descriptor(1));
  Dispatcher dispatcher(
      fx.pool, {.policy = DispatchPolicy::kDescriptorAffinity});

  util::ManualClock mint_clock(fx.clock.now());  // same epoch as pool
  cookies::CookieGenerator gen(make_descriptor(1), mint_clock, 7);
  const cookies::Cookie cookie = gen.generate();

  fx.pool.start();
  dispatcher.start();
  constexpr int kProducers = 4;
  constexpr int kCopiesPerProducer = 8;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kCopiesPerProducer; ++i) {
        // Distinct flows so kFlowHash would spread them; the SAME
        // cookie (same uuid) on all of them.
        net::Packet packet =
            flow_packet(static_cast<uint32_t>(p * 100 + i), 0);
        cookies::attach(packet, cookie, cookies::Transport::kUdpHeader);
        while (!dispatcher.offer(std::move(packet))) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  dispatcher.drain();
  dispatcher.stop();
  fx.pool.stop();

  constexpr uint64_t kTotal = kProducers * kCopiesPerProducer;
  EXPECT_EQ(dispatcher.stats().routed, kTotal);
  // The paper's fix: exactly one acceptance, everything else replayed.
  EXPECT_EQ(fx.pool.total_verified(), 1u);
  EXPECT_EQ(fx.pool.total_replays_detected(), kTotal - 1);

  // All copies landed on the worker the cookie id pins to.
  uint64_t workers_touched = 0;
  for (const auto& w : fx.pool.snapshot().workers) {
    if (w.cookie_packets > 0) ++workers_touched;
  }
  EXPECT_EQ(workers_touched, 1u);
}

/// Same scenario under kFlowHash: the replay caches are independent,
/// so the copied cookie is accepted once per worker it reaches — the
/// documented weakness that motivates descriptor affinity.
TEST(Runtime, FlowHashAcceptsOncePerWorker) {
  WorkerPool::Config config;
  config.workers = 4;
  PoolFixture fx(config);
  fx.pool.add_descriptor(make_descriptor(1));
  Dispatcher dispatcher(fx.pool, {.policy = DispatchPolicy::kFlowHash});

  util::ManualClock mint_clock(fx.clock.now());
  cookies::CookieGenerator gen(make_descriptor(1), mint_clock, 7);
  const cookies::Cookie cookie = gen.generate();

  // Pick one flow tuple per worker (route() is deterministic).
  std::vector<net::Packet> copies;
  std::vector<bool> covered(config.workers, false);
  for (uint32_t flow = 0; copies.size() < config.workers; ++flow) {
    ASSERT_LT(flow, 10'000u) << "flow hash never covered all workers";
    net::Packet packet = flow_packet(flow, 0);
    cookies::attach(packet, cookie, cookies::Transport::kUdpHeader);
    const size_t worker = dispatcher.route(packet);
    if (!covered[worker]) {
      covered[worker] = true;
      copies.push_back(std::move(packet));
    }
  }

  fx.pool.start();
  dispatcher.start();
  std::vector<std::thread> producers;
  for (auto& copy : copies) {
    producers.emplace_back([&dispatcher, packet = std::move(copy)]() mutable {
      while (!dispatcher.offer(std::move(packet))) {
        std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  dispatcher.drain();
  dispatcher.stop();
  fx.pool.stop();

  // One acceptance PER SHARD: the double-spend the paper warns about.
  EXPECT_EQ(fx.pool.total_verified(), uint64_t{config.workers});
  EXPECT_EQ(fx.pool.total_replays_detected(), 0u);
}

// --- Backpressure accounting ---------------------------------------

/// Fill a deliberately tiny ring with the pool not yet started: the
/// overflow is counted as fail-open bypass, nothing is lost, and the
/// accounting identity offered == routed + bypassed holds.
TEST(Runtime, BackpressureCountsAndForwardsBestEffort) {
  WorkerPool::Config config;
  config.workers = 1;
  config.ring_capacity = 16;
  PoolFixture fx(config);
  Dispatcher dispatcher(fx.pool, {.policy = DispatchPolicy::kFlowHash});

  constexpr uint64_t kOffered = 100;
  for (uint32_t i = 0; i < kOffered; ++i) {
    dispatcher.dispatch(flow_packet(i, i));
  }
  const auto before = dispatcher.stats();
  EXPECT_EQ(before.offered, kOffered);
  EXPECT_EQ(before.routed, fx.pool.ring_capacity(0));
  EXPECT_EQ(before.ring_full_bypass, kOffered - before.routed);
  EXPECT_EQ(before.forwarded(), kOffered);  // never dropped

  // Late start still processes exactly what was queued.
  fx.pool.start();
  dispatcher.drain();
  fx.pool.stop();
  EXPECT_EQ(fx.pool.snapshot().totals().packets, before.routed);
}

/// offer() on a full ingress ring is also fail-open, not a wait.
TEST(Runtime, IngressOverflowIsCountedBypass) {
  WorkerPool::Config config;
  config.workers = 1;
  PoolFixture fx(config);
  Dispatcher dispatcher(fx.pool, {.policy = DispatchPolicy::kFlowHash,
                                  .ingress_capacity = 8});
  // Pump not started: ingress fills at its capacity.
  uint64_t accepted = 0, bypassed = 0;
  for (uint32_t i = 0; i < 20; ++i) {
    if (dispatcher.offer(flow_packet(i, i))) {
      ++accepted;
    } else {
      ++bypassed;
    }
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(bypassed, 12u);
  const auto s = dispatcher.stats();
  EXPECT_EQ(s.ingress_full_bypass, 12u);
  // The gap between offered and forwarded is exactly what still sits
  // in the ingress ring.
  EXPECT_EQ(s.offered - s.forwarded(), 8u);
  // Start everything; the 8 queued packets drain.
  fx.pool.start();
  dispatcher.start();
  dispatcher.drain();
  dispatcher.stop();
  fx.pool.stop();
  EXPECT_EQ(fx.pool.snapshot().totals().packets, 8u);
}

// --- Lifecycle -----------------------------------------------------

TEST(Runtime, DrainGivesDeterministicCountsAndQuiescentReads) {
  WorkerPool::Config config;
  config.workers = 2;
  config.ring_capacity = 4096;
  PoolFixture fx(config);
  fx.pool.add_descriptor(make_descriptor(3));
  Dispatcher dispatcher(
      fx.pool, {.policy = DispatchPolicy::kDescriptorAffinity});

  util::ManualClock mint_clock(fx.clock.now());
  cookies::CookieGenerator gen(make_descriptor(3), mint_clock, 11);

  fx.pool.start();
  constexpr uint32_t kFlows = 200;
  for (uint32_t flow = 0; flow < kFlows; ++flow) {
    // Keep mint time current so cookies stay inside the NCT window
    // even when the suite runs slowly (TSan, loaded CI machine).
    mint_clock.set(fx.clock.now());
    net::Packet first = flow_packet(flow, 0);
    cookies::attach(first, gen.generate(), cookies::Transport::kUdpHeader);
    dispatcher.dispatch_blocking(std::move(first));
    for (uint32_t seq = 1; seq < 5; ++seq) {
      dispatcher.dispatch_blocking(flow_packet(flow, seq));
    }
  }
  dispatcher.drain();

  // Quiescent: totals are exact and non-atomic state is readable.
  const auto totals = fx.pool.snapshot().totals();
  EXPECT_EQ(totals.packets, uint64_t{kFlows} * 5);
  EXPECT_EQ(totals.processed, totals.packets);
  EXPECT_EQ(fx.pool.total_verified(), kFlows);
  uint64_t middlebox_packets = 0;
  for (size_t w = 0; w < fx.pool.worker_count(); ++w) {
    middlebox_packets += fx.pool.middlebox(w).stats().packets;
  }
  EXPECT_EQ(middlebox_packets, totals.packets);

  fx.pool.stop();
  EXPECT_FALSE(fx.pool.running());
  // Counts unchanged by shutdown.
  EXPECT_EQ(fx.pool.snapshot().totals().packets, uint64_t{kFlows} * 5);
}

TEST(Runtime, StopWithoutDrainProcessesQueuedPackets) {
  WorkerPool::Config config;
  config.workers = 2;
  config.ring_capacity = 1024;
  PoolFixture fx(config);
  Dispatcher dispatcher(fx.pool, {.policy = DispatchPolicy::kFlowHash});
  fx.pool.start();
  constexpr uint32_t kPackets = 400;
  for (uint32_t i = 0; i < kPackets; ++i) {
    dispatcher.dispatch_blocking(flow_packet(i % 32, i));
  }
  // stop() without drain(): workers finish their rings before exiting.
  fx.pool.stop();
  EXPECT_EQ(fx.pool.snapshot().totals().packets, kPackets);
}

/// PR 5 satellite: the shed ledger must reconcile exactly with the
/// producer's enqueue totals even when stop() races an injected
/// queue-pressure burst and a worker pause — every submit attempt ends
/// up as processed or shed, never silently lost. Runs under TSan.
TEST(Runtime, ShedLedgerReconcilesWhenStopRacesQueuePressure) {
  WorkerPool::Config config;
  config.workers = 2;
  config.ring_capacity = 64;  // small on purpose: real ring-full sheds
  PoolFixture fx(config);

  fault::Injector injector;
  fault::FaultPlan plan;
  const util::Timestamp now = fx.clock.now();
  // Queue-pressure Bernoulli over the whole window, plus a pause that
  // wedges worker 0 across the stop() — its ring leftovers must be
  // reclaimed into shed.
  plan.add({fault::FaultKind::kQueuePressure, now, 10 * util::kSecond, 0.5,
            0, fault::kAllTargets});
  plan.add({fault::FaultKind::kPause, now + 2 * util::kMillisecond,
            10 * util::kSecond, 1.0, 0, 0});
  injector.arm(plan, 42);
  fx.pool.set_fault_injector(&injector);
  fx.pool.start();

  constexpr uint64_t kAttempts = 20000;
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> rejected{0};
  std::thread producer([&] {
    for (uint64_t i = 0; i < kAttempts; ++i) {
      const size_t worker = i % 2;
      // One attempt per packet through the arena path: an exhausted
      // arena rides the empty handle into submit_handle, which counts
      // the shed — same ledger contract the retired copy-shim had.
      runtime::PacketHandle handle = fx.pool.arena().try_alloc();
      if (handle) {
        *handle = flow_packet(static_cast<uint32_t>(i % 64),
                              static_cast<uint32_t>(i));
      }
      if (fx.pool.submit_handle(worker, std::move(handle))) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      } else {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
      if (i % 512 == 0) std::this_thread::yield();
    }
  });
  // Stop while the producer is (very likely) still submitting — the
  // race under test. Correctness must not depend on the timing.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fx.pool.stop();
  producer.join();

  const auto totals = fx.pool.snapshot().totals();
  EXPECT_EQ(accepted.load() + rejected.load(), kAttempts);
  // The ledger: every attempt is processed or shed, exactly once.
  EXPECT_EQ(totals.processed + totals.shed, kAttempts);
  // Shed = refused at admission + reclaimed from rings at stop().
  EXPECT_EQ(totals.shed - rejected.load(), accepted.load() - totals.processed);
  // The pause + pressure made the valve actually operate.
  EXPECT_GT(totals.shed, 0u);
  EXPECT_GT(injector.injected(fault::FaultKind::kQueuePressure), 0u);
}

TEST(Runtime, LifecycleIsIdempotent) {
  WorkerPool::Config config;
  config.workers = 2;
  PoolFixture fx(config);
  fx.pool.stop();   // stop before start: no-op
  fx.pool.drain();  // drain before start: no-op (nothing submitted)
  fx.pool.start();
  fx.pool.start();  // double start: no-op
  fx.pool.stop();
  fx.pool.stop();  // double stop: no-op
  EXPECT_EQ(fx.pool.snapshot().totals().packets, 0u);
}

TEST(Runtime, DestructorJoinsRunningPool) {
  util::SystemClock clock;
  dataplane::ServiceRegistry registry;
  auto pool = std::make_unique<WorkerPool>(clock, registry,
                                           WorkerPool::Config{.workers = 2});
  pool->start();
  pool.reset();  // must join, not crash or leak threads
}

// --- Concurrent telemetry export (TSan target) ---------------------

/// Workers hammer their counters while a reader thread repeatedly
/// snapshots the global registry and renders both exporters — the
/// scrape-during-load case a /metrics endpoint lives in. TSan verifies
/// the relaxed-atomic cells and the registry mutex discipline.
TEST(Runtime, RegistrySnapshotsRaceFreeWithRunningPool) {
  WorkerPool::Config config;
  config.workers = 2;
  config.ring_capacity = 1024;
  PoolFixture fx(config);
  fx.pool.add_descriptor(make_descriptor(7));
  Dispatcher dispatcher(fx.pool, {.policy = DispatchPolicy::kFlowHash});

  util::ManualClock mint_clock(fx.clock.now());
  cookies::CookieGenerator gen(make_descriptor(7), mint_clock, 3);

  fx.pool.start();
  std::atomic<bool> done{false};
  std::thread reader([&done] {
    uint64_t last_packets = 0;
    while (!done.load(std::memory_order_acquire)) {
      const auto snap = telemetry::Registry::global().snapshot();
      const uint64_t packets = snap.counter_total("nnn_pool_packets_total");
      EXPECT_GE(packets, last_packets) << "counter went backwards";
      last_packets = packets;
      // Render both exporters too: they read histogram buckets.
      telemetry::to_prometheus(snap);
      telemetry::to_json(snap);
    }
  });
  constexpr uint32_t kPackets = 20'000;
  for (uint32_t i = 0; i < kPackets; ++i) {
    if (i % 10 == 0) mint_clock.set(fx.clock.now());
    net::Packet p = flow_packet(i % 64, i);
    if (i % 4 == 0) {
      cookies::attach(p, gen.generate(), cookies::Transport::kUdpHeader);
    }
    dispatcher.dispatch_blocking(std::move(p));
  }
  dispatcher.drain();
  done.store(true, std::memory_order_release);
  reader.join();
  fx.pool.stop();

  const auto totals = fx.pool.snapshot().totals();
  EXPECT_EQ(totals.packets, kPackets);
  // Quiescent now: the registry and the snapshot agree exactly.
  const auto snap = telemetry::Registry::global().snapshot();
  EXPECT_EQ(snap.counter_total("nnn_pool_packets_total"), totals.packets);
  EXPECT_EQ(snap.counter_total("nnn_pool_verify_total",
                               telemetry::LabelSet{{"status", "ok"}}),
            totals.verified);
  EXPECT_GE(snap.counter_total("nnn_pool_batches_total"), 1u);
}

// --- Thread-safe logger (satellite) --------------------------------

TEST(Runtime, LoggerIsThreadSafeUnderConcurrentLogsAndSinkSwaps) {
  auto& logger = util::Logger::instance();
  logger.set_level(util::LogLevel::kDebug);
  std::atomic<uint64_t> captured{0};
  logger.set_sink([&captured](util::LogLevel, std::string_view) {
    captured.fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 500; ++i) {
        util::log_debug("worker {} message {}", t, i);
      }
    });
  }
  // Concurrent level changes exercise the atomic.
  logger.set_level(util::LogLevel::kDebug);
  for (auto& t : threads) t.join();
  EXPECT_EQ(captured.load(), 4u * 500);
  logger.set_sink(nullptr);
  logger.set_level(util::LogLevel::kWarn);
}

// --- Zero-copy dataplane (PR 8) -------------------------------------

/// Total order over every compared field, so two runs that produced
/// the same multiset of verdicts sort into identical sequences even
/// where (tuple, seq) ties (the generator stamps one seq per flow).
bool verdict_before(const VerdictRecord& a, const VerdictRecord& b) {
  if (a.tuple < b.tuple) return true;
  if (b.tuple < a.tuple) return false;
  auto key = [](const VerdictRecord& v) {
    return std::make_tuple(
        v.seq, v.worker, v.has_action, v.mapped_now,
        v.verify_status ? static_cast<int>(*v.verify_status) : -1);
  };
  return key(a) < key(b);
}

/// Differential test: the Dispatcher front end (route + arena alloc
/// per packet) and the Dataplane facade (make_packet + fill_next +
/// ingest, building in the slot) must produce identical VerdictRecord
/// streams for the same seeded workload — same steering, same verify
/// status, same replay decisions. This is the proof that the entry
/// paths differ only in the transport of packets, not their
/// semantics.
TEST(Runtime, ArenaPathMatchesCopyPathVerdicts) {
  constexpr size_t kWorkers = 4;
  constexpr size_t kFlows = 200;
  constexpr uint64_t kSeed = 4242;
  workload::PacketGenerator::Config wl;
  wl.descriptors = 64;
  const size_t total = kFlows * wl.packets_per_flow;

  std::vector<VerdictRecord> copy_verdicts;
  {
    util::SystemClock clock;
    dataplane::ServiceRegistry registry;
    registry.bind("Boost", dataplane::PriorityAction{0});
    cookies::CookieVerifier staging(clock);
    workload::PacketGenerator gen(wl, clock, staging, kSeed);
    WorkerPool::Config config;
    config.workers = kWorkers;
    config.verdict_capacity = 1 << 15;
    WorkerPool pool(clock, registry, config);
    for (const auto& d : gen.descriptors()) pool.add_descriptor(d);
    Dispatcher dispatcher(pool,
                          {.policy = DispatchPolicy::kDescriptorAffinity});
    pool.start();
    for (net::Packet& p : gen.make_batch(kFlows)) {
      dispatcher.dispatch_blocking(std::move(p));
    }
    dispatcher.drain();
    pool.stop();
    pool.drain_verdicts(copy_verdicts);
  }

  std::vector<VerdictRecord> arena_verdicts;
  {
    util::SystemClock clock;
    dataplane::ServiceRegistry registry;
    registry.bind("Boost", dataplane::PriorityAction{0});
    cookies::CookieVerifier staging(clock);
    workload::PacketGenerator gen(wl, clock, staging, kSeed);
    Dataplane::Config config;
    config.pool.workers = kWorkers;
    config.pool.verdict_capacity = 1 << 15;
    Dataplane plane(clock, registry, config);
    for (const auto& d : gen.descriptors()) plane.add_descriptor(d);
    plane.start();
    for (size_t i = 0; i < total; ++i) {
      PacketHandle h = plane.make_packet();
      while (!h) {  // transient exhaustion: workers are draining slots
        std::this_thread::yield();
        h = plane.make_packet();
      }
      gen.fill_next(*h);
      plane.ingest_blocking(std::move(h));
    }
    plane.drain();
    plane.stop();
    plane.drain_verdicts(arena_verdicts);
    EXPECT_EQ(plane.arena().outstanding(), 0u) << "arena leaked slots";
  }

  ASSERT_EQ(copy_verdicts.size(), total);
  ASSERT_EQ(arena_verdicts.size(), total);
  std::sort(copy_verdicts.begin(), copy_verdicts.end(), verdict_before);
  std::sort(arena_verdicts.begin(), arena_verdicts.end(), verdict_before);
  for (size_t i = 0; i < total; ++i) {
    const auto& c = copy_verdicts[i];
    const auto& a = arena_verdicts[i];
    ASSERT_FALSE(verdict_before(c, a) || verdict_before(a, c))
        << "tuple/seq streams diverge at " << i;
    EXPECT_EQ(c.worker, a.worker) << "steering diverged at " << i;
    EXPECT_EQ(c.has_action, a.has_action) << i;
    EXPECT_EQ(c.mapped_now, a.mapped_now) << i;
    EXPECT_EQ(c.verify_status, a.verify_status) << i;
  }
}

/// Arena exhaustion is fail-open: with every slot held hostage,
/// make_packet() returns empty handles and ingest() sheds — it never
/// blocks and never loses a ledger entry. When the slots come back the
/// plane processes normally and the arena balances to zero.
TEST(Runtime, ArenaExhaustionShedsAndBalancesLedger) {
  util::SystemClock clock;
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  Dataplane::Config config;
  config.pool.workers = 2;
  config.pool.arena_slots = 16;  // tiny on purpose
  Dataplane plane(clock, registry, config);

  // Drain the arena completely.
  std::vector<PacketHandle> hostages;
  for (;;) {
    PacketHandle h = plane.make_packet();
    if (!h) break;
    hostages.push_back(std::move(h));
  }
  EXPECT_EQ(hostages.size(), plane.arena().capacity());
  EXPECT_GE(plane.arena().alloc_failures(), 1u);

  // Exhausted ingest: empty handles shed immediately, no blocking
  // (the pool is not even started — nothing could unblock us).
  uint64_t attempts = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(plane.ingest(plane.make_packet()));
    ++attempts;
  }
  {
    auto totals = plane.snapshot().totals();
    EXPECT_EQ(totals.shed, attempts);
    EXPECT_EQ(totals.processed, 0u);
  }

  // Free the slots, run real traffic through, and reconcile.
  hostages.clear();
  plane.start();
  constexpr uint32_t kPackets = 500;
  for (uint32_t i = 0; i < kPackets; ++i) {
    PacketHandle h = plane.make_packet();
    while (!h) {
      std::this_thread::yield();
      h = plane.make_packet();
    }
    *h = flow_packet(i % 16, i);
    plane.ingest_blocking(std::move(h));
    ++attempts;
  }
  plane.drain();
  plane.stop();

  const auto totals = plane.snapshot().totals();
  EXPECT_EQ(totals.processed + totals.shed, attempts);
  EXPECT_EQ(totals.processed, kPackets);
  EXPECT_EQ(plane.arena().outstanding(), 0u) << "slots leaked";
}

/// TSan target: handles released by foreign threads race
/// Dataplane::stop()'s reclaim sweep and the workers' cache flushes.
/// Single ownership means the races are freelist CASes only; the books
/// must still balance once everyone is done.
TEST(Runtime, HandleReleaseRacingStopKeepsArenaBalanced) {
  util::SystemClock clock;
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  Dataplane::Config config;
  config.pool.workers = 2;
  config.pool.ring_capacity = 64;
  Dataplane plane(clock, registry, config);
  plane.start();

  std::atomic<bool> done{false};
  std::vector<std::thread> holders;
  for (int t = 0; t < 3; ++t) {
    // Holders use arena().try_alloc() directly (MPMC-safe), NOT
    // make_packet() — that one is producer-thread-only by contract.
    holders.emplace_back([&plane, &done] {
      while (!done.load(std::memory_order_relaxed)) {
        PacketHandle h = plane.arena().try_alloc();
        if (h) h->seq = 1;  // touch the slot; released at scope end
        std::this_thread::yield();
      }
    });
  }

  uint64_t attempts = 0;
  for (uint32_t i = 0; i < 4000; ++i) {
    PacketHandle h = plane.make_packet();
    if (h) *h = flow_packet(i % 64, i);
    plane.ingest(std::move(h));  // sheds (empty handle/ring full) are fine
    ++attempts;
  }
  plane.stop();  // races the holders' release_raw calls
  done.store(true, std::memory_order_relaxed);
  for (auto& t : holders) t.join();

  const auto totals = plane.snapshot().totals();
  EXPECT_EQ(totals.processed + totals.shed, attempts);
  EXPECT_EQ(plane.arena().outstanding(), 0u) << "slots leaked";
}

}  // namespace
}  // namespace nnn::runtime
