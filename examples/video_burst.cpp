// Application-assisted boost bursts (§1, §4.2).
//
// "A video application could ask for a short burst of high bandwidth
// when it runs low on buffers (and risks rebuffering) ... Users can
// pay per burst, or get a limited monthly quota for free." And §4.2:
// "when to use a cookie ... can be explicitly requested by the user,
// or assisted by an application (e.g., a video client can ask for
// extra bandwidth if its buffer runs low)."
//
// The example simulates a video player (fixed playout rate, finite
// buffer) streaming over a congested 6 Mb/s line. Without bursts it
// rebuffers; with application-assisted bursts (cookie attached only
// when the buffer drops below the low-water mark, burst quota
// enforced by the ISP) playback stays smooth — and the quota shows
// how many bursts were actually spent.
#include <cstdio>
#include <memory>

#include "boost_lane/daemon.h"
#include "controlplane/local_subscriber.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "net/http.h"
#include "server/cookie_server.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/link.h"
#include "sim/tcp.h"

namespace {

using namespace nnn;

struct PlaybackReport {
  double rebuffer_seconds = 0;
  int rebuffer_events = 0;
  int bursts_used = 0;
};

/// Stream 25 s of 2.5 Mb/s video over a contended 6 Mb/s line.
PlaybackReport run_session(bool allow_bursts) {
  sim::EventLoop loop;
  sim::Host client(net::IpAddress::v4(192, 168, 1, 10), "tv");
  sim::Host rival(net::IpAddress::v4(192, 168, 1, 11), "rival");
  sim::Host video(net::IpAddress::v4(198, 51, 100, 1), "video-cdn");
  sim::Host other(net::IpAddress::v4(198, 51, 100, 2), "other");

  // ISP machinery: per-burst quota of 4 per session.
  cookies::CookieVerifier verifier(loop.clock());
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer isp(loop.clock(), 77, &descriptor_log);
  controlplane::LocalSubscriber subscriber(descriptor_log, verifier);
  server::ServiceOffer burst_offer;
  burst_offer.name = "Burst";
  burst_offer.service_data = "Boost";
  burst_offer.monthly_quota = 4;  // "a limited monthly quota"
  burst_offer.descriptor_lifetime = 10 * util::kSecond;
  burst_offer.attributes.mapping_ttl = 4 * util::kSecond;  // short burst
  isp.add_service(burst_offer);

  boost_lane::BoostDaemon daemon(loop.clock(), verifier,
                                 {.wan_capacity_bps = 6e6,
                                  .throttle_bps = 1e6,
                                  .mid_flow_cookies = true});

  auto to_home = [&](net::Packet p) {
    (p.tuple.dst_ip == client.address() ? client : rival).receive(p);
  };
  auto to_wan = [&](net::Packet p) {
    (p.tuple.dst_ip == video.address() ? video : other).receive(p);
  };
  sim::Link downlink(loop, {.rate_bps = 6e6,
                            .prop_delay = 15 * util::kMillisecond,
                            .bands = 2,
                            .band_capacity_bytes = 96 * 1024},
                     to_home);
  sim::Link uplink(loop, {.rate_bps = 6e6,
                          .prop_delay = 15 * util::kMillisecond,
                          .bands = 2,
                          .band_capacity_bytes = 96 * 1024},
                   to_wan);
  daemon.attach_links(&downlink, &uplink);
  auto up = [&](net::Packet p) {
    const size_t band = daemon.classify(p);
    uplink.send(std::move(p), band);
  };
  auto down = [&](net::Packet p) {
    const size_t band = daemon.classify(p);
    downlink.send(std::move(p), band);
  };
  client.set_uplink(up);
  rival.set_uplink(up);
  video.set_uplink(down);
  other.set_uplink(down);

  // Rival household traffic: two long downloads for the whole session.
  std::vector<std::unique_ptr<sim::TcpSource>> rival_srcs;
  std::vector<std::unique_ptr<sim::TcpSink>> rival_snks;
  for (int i = 0; i < 2; ++i) {
    net::FiveTuple rival_flow;
    rival_flow.src_ip = other.address();
    rival_flow.dst_ip = rival.address();
    rival_flow.src_port = static_cast<uint16_t>(80 + i);
    rival_flow.dst_port = static_cast<uint16_t>(50000 + i);
    auto src = std::make_unique<sim::TcpSource>(
        loop, other, rival_flow, 40'000'000, sim::TcpSource::Config{},
        nullptr);
    auto snk =
        std::make_unique<sim::TcpSink>(loop, rival, rival_flow, nullptr);
    other.register_handler(rival_flow.reversed(),
                           [s = src.get()](const net::Packet& p) {
                             if (p.ack) s->on_ack(p);
                           });
    rival.register_handler(rival_flow,
                           [k = snk.get()](const net::Packet& p) {
                             k->on_data(p);
                           });
    loop.at(i * 100 * util::kMillisecond,
            [s = src.get()] { s->start(); });
    rival_srcs.push_back(std::move(src));
    rival_snks.push_back(std::move(snk));
  }

  // The video stream: a long TCP transfer whose received bytes feed
  // the player buffer.
  net::FiveTuple stream;
  stream.src_ip = video.address();
  stream.dst_ip = client.address();
  stream.src_port = 443;
  stream.dst_port = 51000;
  sim::TcpSource stream_src(loop, video, stream, 60'000'000, {}, nullptr);
  sim::TcpSink stream_snk(loop, client, stream, nullptr);
  video.register_handler(stream.reversed(), [&](const net::Packet& p) {
    if (p.ack) stream_src.on_ack(p);
  });
  client.register_handler(stream, [&](const net::Packet& p) {
    stream_snk.on_data(p);
  });
  loop.at(0, [&] { stream_src.start(); });

  // The player: drains the buffer at the playout rate; tracks stalls.
  constexpr double kPlayoutBps = 2.5e6;
  constexpr double kLowWaterSec = 2.0;   // burst trigger
  constexpr double kStartupSec = 1.0;    // initial buffering
  auto report = std::make_shared<PlaybackReport>();
  auto consumed = std::make_shared<uint64_t>(0);
  auto playing = std::make_shared<bool>(false);

  // Burst machinery: the player asks the ISP for a burst descriptor
  // and cookies a trigger packet on the stream's flow (the daemon
  // honors mid-flow cookies). A client-side cooldown avoids burning
  // the quota on consecutive ticks.
  auto last_burst = std::make_shared<util::Timestamp>(-100 * util::kSecond);
  auto request_burst = [&, report, last_burst] {
    if (loop.now() - *last_burst < 5 * util::kSecond) return;
    const auto grant = isp.acquire("Burst", "tv-app");
    if (!grant.ok()) return;  // quota exhausted
    *last_burst = loop.now();
    ++report->bursts_used;
    cookies::CookieGenerator generator(*grant.descriptor, loop.clock(),
                                       report->bursts_used);
    net::Packet trigger;
    trigger.tuple = stream.reversed();
    net::http::Request http("GET", "/burst", "video.example");
    const std::string text = http.serialize();
    trigger.payload.assign(text.begin(), text.end());
    cookies::attach(trigger, generator.generate(),
                    cookies::Transport::kHttpHeader);
    client.send(std::move(trigger));
  };

  // 100 ms player tick.
  std::function<void()> tick = [&, report, consumed, playing]() {
    const double buffered_sec =
        (static_cast<double>(stream_snk.received_bytes()) * 8 -
         static_cast<double>(*consumed) * 8) /
        kPlayoutBps;
    if (!*playing) {
      // (Re)buffering: time after startup counts as a stall.
      if (loop.now() > 3 * util::kSecond) {
        report->rebuffer_seconds += 0.1;
      }
      if (buffered_sec >= kStartupSec) *playing = true;
      if (allow_bursts) request_burst();
    } else if (buffered_sec <= 0.05) {
      ++report->rebuffer_events;
      *playing = false;
      if (allow_bursts) request_burst();
    } else {
      *consumed += static_cast<uint64_t>(kPlayoutBps / 8 * 0.1);
      if (allow_bursts && buffered_sec < kLowWaterSec) {
        request_burst();
      }
    }
    if (loop.now() < 25 * util::kSecond) {
      loop.after(100 * util::kMillisecond, tick);
    }
  };
  loop.after(100 * util::kMillisecond, tick);

  loop.run_until(25 * util::kSecond);
  return *report;
}

}  // namespace

int main() {
  std::printf("=== Application-assisted boost bursts: 2.5 Mb/s video on "
              "a contended 6 Mb/s line ===\n\n");
  const PlaybackReport plain = run_session(false);
  const PlaybackReport bursty = run_session(true);
  std::printf("%-22s %14s %16s %12s\n", "mode", "stall ticks",
              "stalled seconds", "bursts used");
  std::printf("%-22s %14d %16.1f %12d\n", "best effort",
              plain.rebuffer_events, plain.rebuffer_seconds,
              plain.bursts_used);
  std::printf("%-22s %14d %16.1f %12d\n", "buffer-triggered boost",
              bursty.rebuffer_events, bursty.rebuffer_seconds,
              bursty.bursts_used);
  std::printf("\nThe player cookied a request only when its buffer ran "
              "low; the ISP's quota\n(4 bursts) caps the cost. \"Users "
              "can pay per burst, or get a limited monthly\nquota for "
              "free.\" (§1)\n");
  return 0;
}
