// Zero-rating with user choice (§2, §4.6): a cellular subscriber picks
// which app doesn't count against her 2 GB cap — any app, not one from
// a carrier shortlist. The carrier issues a descriptor for the chosen
// app (authenticated acquisition), the middlebox keeps the paper's two
// counters per IP, and the billing ledger shows free vs charged bytes.
#include <cstdio>

#include "controlplane/local_subscriber.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "dataplane/middlebox.h"
#include "dataplane/zero_rating.h"
#include "net/http.h"
#include "server/cookie_server.h"
#include "util/clock.h"
#include "util/rng.h"
#include "workload/apps.h"

int main() {
  using namespace nnn;
  util::SystemClock clock;

  // The carrier's control plane: one zero-rating offer, login required.
  cookies::CookieVerifier verifier(clock);
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer carrier(clock, 99, &descriptor_log);
  controlplane::LocalSubscriber subscriber(descriptor_log, verifier);
  server::ServiceOffer offer;
  offer.name = "ChooseYourApp";
  offer.description = "zero-rate any one application you pick";
  offer.service_data = "zero-rate";
  offer.auth = server::AuthPolicy::kToken;
  offer.monthly_quota = 1;  // one choice per month
  carrier.add_service(offer);
  carrier.add_account(server::Account{"maria", "maria-token"});

  dataplane::ServiceRegistry registry;
  registry.bind("zero-rate", dataplane::ZeroRateAction{});
  dataplane::Middlebox middlebox(clock, verifier, registry);
  dataplane::ZeroRatingLedger ledger(2ULL << 30);  // 2 GB monthly cap

  // Maria picks a niche app existing programs don't cover.
  const auto* app = workload::find_app("soma.fm");
  std::printf("subscriber maria zero-rates '%s' (category %s, %s "
              "installs)\n",
              app->name.c_str(),
              workload::to_string(app->category).c_str(),
              workload::to_string(app->popularity).c_str());
  std::printf("covered by existing carrier programs: %s\n\n",
              app->covered_by.empty() ? "none — user choice required"
                                      : "some");

  const auto grant =
      carrier.acquire("ChooseYourApp", "maria", "maria-token");
  cookies::CookieGenerator generator(*grant.descriptor, clock, 3);

  // A second acquisition this month is refused (quota).
  const auto second = carrier.acquire("ChooseYourApp", "maria",
                                      "maria-token");
  std::printf("second choice this month: %s\n\n",
              second.ok()
                  ? "granted (?)"
                  : std::string(to_string(*second.error)).c_str());

  // Traffic: the chosen app's flows carry cookies; everything else is
  // ordinary traffic.
  const auto maria_ip = net::IpAddress::v4(100, 64, 3, 7);
  util::Rng rng(5);
  uint64_t app_bytes = 0;
  uint64_t other_bytes = 0;
  for (int flow_index = 0; flow_index < 12; ++flow_index) {
    const bool is_app_flow = flow_index % 3 == 0;  // 4 of 12 flows
    net::FiveTuple tuple;
    tuple.src_ip = maria_ip;
    tuple.dst_ip = net::IpAddress::v4(151, 101, 0,
                                      static_cast<uint8_t>(flow_index));
    tuple.src_port = static_cast<uint16_t>(42000 + flow_index);
    tuple.dst_port = 443;

    net::Packet request;
    request.tuple = tuple;
    net::http::Request http("GET", "/stream",
                            is_app_flow ? "somafm.example" : "web.example");
    const std::string text = http.serialize();
    request.payload.assign(text.begin(), text.end());
    if (is_app_flow) {
      cookies::attach(request, generator.generate(),
                      cookies::Transport::kHttpHeader);
    }
    middlebox.process_and_account(request, ledger, maria_ip);

    const int packets = 20 + static_cast<int>(rng.next_u64(60));
    for (int i = 0; i < packets; ++i) {
      net::Packet data;
      data.tuple = tuple;
      data.wire_size = 1200;
      middlebox.process_and_account(data, ledger, maria_ip);
      (is_app_flow ? app_bytes : other_bytes) += data.size();
    }
  }

  const auto usage = ledger.usage(maria_ip);
  std::printf("--- monthly statement ---\n");
  std::printf("zero-rated (free) bytes : %10llu\n",
              static_cast<unsigned long long>(usage.free_bytes));
  std::printf("charged bytes           : %10llu\n",
              static_cast<unsigned long long>(usage.charged_bytes));
  std::printf("remaining 2 GB cap      : %10llu\n",
              static_cast<unsigned long long>(
                  ledger.remaining_cap(maria_ip).value()));
  std::printf("\nsanity: app traffic %llu B rode free; the rest was "
              "charged.\n",
              static_cast<unsigned long long>(app_bytes));
  (void)other_bytes;
  return 0;
}
