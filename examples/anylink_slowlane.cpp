// AnyLink (§5, §4.6): the proxy-mode *slow* lane. A developer tests
// her app against emulated 2G / 3G / DSL links, selecting the profile
// per flow with a cookie instead of reconfiguring a testbed. The
// example runs the same 200 KB transfer through each profile on the
// simulator and prints the resulting completion times.
#include <cstdio>
#include <optional>

#include "boost_lane/anylink.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "net/http.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/link.h"
#include "sim/tcp.h"

namespace {

using namespace nnn;

/// Transfer 200 KB through a link shaped to `profile`; returns seconds.
double emulate_transfer(const boost_lane::LinkProfile& profile) {
  sim::EventLoop loop;
  sim::Host server(net::IpAddress::v4(198, 51, 100, 1), "origin");
  sim::Host device(net::IpAddress::v4(10, 0, 0, 2), "dev-phone");

  sim::Link down(loop,
                 {.rate_bps = profile.rate_bps,
                  .prop_delay = profile.extra_latency,
                  .bands = 1,
                  .band_capacity_bytes = 64 * 1024},
                 [&](net::Packet p) { device.receive(p); });
  sim::Link up(loop,
               {.rate_bps = profile.rate_bps,
                .prop_delay = profile.extra_latency,
                .bands = 1,
                .band_capacity_bytes = 64 * 1024},
               [&](net::Packet p) { server.receive(p); });
  server.set_uplink([&](net::Packet p) { down.send(std::move(p), 0); });
  device.set_uplink([&](net::Packet p) { up.send(std::move(p), 0); });

  net::FiveTuple flow;
  flow.src_ip = server.address();
  flow.dst_ip = device.address();
  flow.src_port = 443;
  flow.dst_port = 50000;

  std::optional<double> fct;
  sim::TcpSource source(loop, server, flow, 200 * 1024, {},
                        [&](util::Timestamp t) {
                          fct = static_cast<double>(t) / util::kSecond;
                        });
  sim::TcpSink sink(loop, device, flow, nullptr);
  server.register_handler(flow.reversed(), [&](const net::Packet& p) {
    source.on_ack(p);
  });
  device.register_handler(flow, [&](const net::Packet& p) {
    sink.on_data(p);
  });
  loop.at(0, [&] { source.start(); });
  loop.run_until(300 * util::kSecond);
  return fct.value_or(-1);
}

}  // namespace

int main() {
  using namespace nnn;
  util::SystemClock clock;

  // The AnyLink service: profiles selected by cookie service_data.
  cookies::CookieVerifier verifier(clock);
  boost_lane::AnyLinkProxy proxy(clock, verifier);
  proxy.add_profile("emulate-2g",
                    {"2G/EDGE", 120e3, 250 * util::kMillisecond});
  proxy.add_profile("emulate-3g",
                    {"3G/HSPA", 2e6, 60 * util::kMillisecond});
  proxy.add_profile("emulate-dsl",
                    {"DSL", 6e6, 20 * util::kMillisecond});

  std::printf("=== AnyLink: test your app on a slower link, selected "
              "per flow by cookie ===\n\n");
  std::printf("%-10s %12s %10s %14s\n", "profile", "rate", "latency",
              "200KB fetch(s)");
  uint16_t next_port = 50000;
  for (const auto* service :
       {"emulate-2g", "emulate-3g", "emulate-dsl"}) {
    // The developer's client attaches the profile-selecting cookie.
    cookies::CookieDescriptor descriptor;
    descriptor.cookie_id = std::hash<std::string>{}(service) | 1;
    descriptor.key.assign(32, 0x33);
    descriptor.service_data = service;
    verifier.add_descriptor(descriptor);
    cookies::CookieGenerator generator(descriptor, clock, 21);

    net::Packet request;
    request.tuple.src_ip = net::IpAddress::v4(10, 0, 0, 2);
    request.tuple.dst_ip = net::IpAddress::v4(198, 51, 100, 1);
    request.tuple.src_port = next_port++;  // a fresh flow per run
    request.tuple.dst_port = 443;
    net::http::Request http("GET", "/bundle.js", "myapp.example");
    const std::string text = http.serialize();
    request.payload.assign(text.begin(), text.end());
    cookies::attach(request, generator.generate(),
                    cookies::Transport::kHttpHeader);

    const auto profile = proxy.process(request);
    if (!profile) {
      std::printf("%-10s cookie did not select a profile!\n", service);
      continue;
    }
    const double fct = emulate_transfer(*profile);
    std::printf("%-10s %9.1f kb/s %7lld ms %14.2f\n",
                profile->name.c_str(), profile->rate_bps / 1e3,
                static_cast<long long>(profile->extra_latency /
                                       util::kMillisecond),
                fct);
  }
  std::printf("\nEach row used the same client code; only the cookie "
              "changed.\n");
  return 0;
}
