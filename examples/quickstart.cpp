// Quickstart: the network-cookie mechanism end to end in ~80 lines.
//
//   1. the network (ISP) runs a cookie server advertising a "Boost"
//      fast lane and a dataplane verifier;
//   2. the user acquires a cookie descriptor over the JSON API;
//   3. the user's agent mints a cookie and attaches it to an outgoing
//      HTTP request (X-Network-Cookie header);
//   4. the middlebox on the path finds the cookie, verifies it
//      (signature, freshness, use-once), and maps the flow to the
//      fast lane;
//   5. a replayed cookie is rejected, and revoking the descriptor
//      stops the service.
#include <cstdio>

#include "controlplane/local_subscriber.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "dataplane/middlebox.h"
#include "net/http.h"
#include "server/cookie_server.h"
#include "server/json_api.h"
#include "util/clock.h"

int main() {
  using namespace nnn;
  util::SystemClock clock;

  // --- 1. the network side ---
  // The server publishes grants/revocations into a descriptor log; the
  // verifier subscribes (here in-process; remote middleboxes run a
  // controlplane::SyncClient over the wire instead).
  cookies::CookieVerifier verifier(clock);
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer cookie_server(clock, /*rng_seed=*/2024,
                                     &descriptor_log);
  controlplane::LocalSubscriber subscriber(descriptor_log, verifier);
  server::ServiceOffer boost;
  boost.name = "Boost";
  boost.description = "fast lane for traffic you choose";
  boost.service_data = "Boost";
  boost.descriptor_lifetime = 3600LL * util::kSecond;
  cookie_server.add_service(boost);
  server::JsonApi api(cookie_server);

  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock, verifier, registry);

  // --- 2. the user acquires a descriptor (JSON control plane) ---
  const std::string response = api.handle_text(
      R"({"method":"acquire","service":"Boost","user":"quickstart"})");
  std::printf("acquire response: %s\n\n", response.c_str());
  const auto descriptor = cookies::CookieDescriptor::from_json(
      *json::parse(response)->find("descriptor"));

  // --- 3. mint a cookie, attach it to a request ---
  cookies::CookieGenerator generator(*descriptor, clock, /*seed=*/7);
  const cookies::Cookie cookie = generator.generate();
  std::printf("cookie: id=%llu uuid=%s ts=%llu\n",
              static_cast<unsigned long long>(cookie.cookie_id),
              cookie.uuid.to_string().c_str(),
              static_cast<unsigned long long>(cookie.timestamp));

  net::Packet request;
  request.tuple.src_ip = net::IpAddress::v4(192, 168, 1, 10);
  request.tuple.dst_ip = net::IpAddress::v4(151, 101, 0, 10);
  request.tuple.src_port = 41000;
  request.tuple.dst_port = 80;
  net::http::Request http("GET", "/video", "myvideosite.example");
  const std::string text = http.serialize();
  request.payload.assign(text.begin(), text.end());
  cookies::attach(request, cookie, cookies::Transport::kHttpHeader);

  // --- 4. the middlebox maps the flow ---
  const auto verdict = middlebox.process(request);
  std::printf("verdict: %s (service '%s')\n",
              verdict.action ? "fast lane" : "best effort",
              verdict.service_data.c_str());

  net::Packet data;
  data.tuple = request.tuple;
  data.wire_size = 1400;
  std::printf("next packet of the flow: %s\n",
              middlebox.process(data).action ? "fast lane"
                                             : "best effort");

  // --- 5. replay protection and revocation ---
  net::Packet replay = request;
  replay.tuple.src_port = 41001;  // an eavesdropper's own flow
  const auto replay_verdict = middlebox.process(replay);
  std::printf("replayed cookie on another flow: %s (%s)\n",
              replay_verdict.action ? "fast lane" : "best effort",
              std::string(to_string(*replay_verdict.verify_status)).c_str());

  cookie_server.revoke(descriptor->cookie_id, "user opted out");
  net::Packet after_revoke;
  after_revoke.tuple = request.tuple;
  after_revoke.tuple.src_port = 41002;
  after_revoke.payload.assign(text.begin(), text.end());
  cookies::attach(after_revoke, generator.generate(),
                  cookies::Transport::kHttpHeader);
  const auto revoked_verdict = middlebox.process(after_revoke);
  std::printf("after revocation: %s (%s)\n",
              revoked_verdict.action ? "fast lane" : "best effort",
              std::string(to_string(*revoked_verdict.verify_status)).c_str());

  std::printf("\naudit log:\n%s\n",
              cookie_server.audit_log().to_json().dump_pretty().c_str());
  return 0;
}
