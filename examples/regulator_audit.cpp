// The regulator's view (§6): with cookies, "interested parties can
// monitor what traffic gets special treatment by the network just by
// looking at who gets access to cookie descriptors and how."
//
// This example replays the paper's Music Freedom case study against
// the compliance machinery: providers request enrollment into a
// zero-rating program; the operator grants some on time, one after 18
// months (SomaFM), and never answers another (RockRadio.gr). The
// regulator reads the public database and the violation list — no
// subpoenas, no per-case technical investigation.
#include <cstdio>

#include "json/json.h"
#include "server/compliance.h"
#include "server/cookie_server.h"
#include "server/json_api.h"
#include "util/clock.h"

int main() {
  using namespace nnn;
  constexpr util::Timestamp kDay = 24LL * 3600 * util::kSecond;

  util::ManualClock clock(0);
  cookies::CookieVerifier verifier(clock);
  server::CookieServer operator_server(clock, 314, &verifier);
  server::ServiceOffer program;
  program.name = "MusicFreedom";
  program.service_data = "zero-rate-music";
  operator_server.add_service(program);

  server::ComplianceMonitor fcc;  // 3-day grant rule

  struct Case {
    const char* provider;
    util::Timestamp requested;
    util::Timestamp granted;  // <0 = never
  };
  const Case cases[] = {
      {"bigstream.example", 0 * kDay, 1 * kDay},       // on time
      {"indieradio.example", 5 * kDay, 7 * kDay},      // on time
      {"somafm.example", 10 * kDay, 10 * kDay + 540 * kDay},  // 18 months
      {"rockradio.example", 20 * kDay, -1},            // never answered
  };

  for (const auto& c : cases) {
    clock.set(c.requested);
    fcc.record_request(c.provider, "MusicFreedom", c.requested);
    if (c.granted >= 0) {
      clock.set(c.granted);
      // The technical act is one descriptor grant — cookies removed
      // the engineering excuse.
      operator_server.acquire("MusicFreedom", c.provider);
      fcc.record_grant(c.provider, "MusicFreedom", c.granted);
    }
  }

  clock.set(600 * kDay);
  std::printf("=== public enrollment database (as the FCC would "
              "publish it) ===\n%s\n\n",
              fcc.to_json().dump_pretty().c_str());

  std::printf("=== violations of the 3-day rule at day 600 ===\n");
  for (const auto& violation : fcc.violations(clock.now())) {
    std::printf("  %-22s overdue by %lld days%s\n",
                violation.request.provider.c_str(),
                static_cast<long long>(violation.overdue_by / kDay),
                violation.request.pending() ? "  (still unanswered)"
                                            : "  (granted late)");
  }

  std::printf("\n=== descriptor grants the operator actually made "
              "(audit log) ===\n");
  for (const auto& record : operator_server.audit_log().records()) {
    std::printf("  day %3lld  %-8s %-22s %s\n",
                static_cast<long long>(record.when / kDay),
                to_string(record.event).c_str(), record.user.c_str(),
                record.service.c_str());
  }
  // The same aggregates without operator cooperation beyond exposing
  // the endpoint: the server's grant/revoke/denial counters come out
  // of GET /metrics.json, so an auditor can scrape them like any
  // monitoring system would.
  std::printf("\n=== operator metrics endpoint (GET /metrics.json) ===\n");
  server::JsonApi api(operator_server);
  const auto response = api.handle_http("GET", "/metrics.json");
  const auto metrics = json::parse(response.body);
  if (metrics && metrics->find("families")) {
    for (const auto& family : metrics->find("families")->as_array()) {
      const std::string name = family.get_string("name");
      if (name.rfind("nnn_server_", 0) != 0) continue;
      for (const auto& sample : family.find("samples")->as_array()) {
        std::string labels;
        if (const auto* l = sample.find("labels")) {
          for (const auto& [key, value] : l->as_object()) {
            labels += (labels.empty() ? "{" : ",") + key + "=" +
                      value.as_string();
          }
          if (!labels.empty()) labels += "}";
        }
        std::printf("  %-28s %-18s %lld\n", name.c_str(), labels.c_str(),
                    static_cast<long long>(
                        sample.find("value")->as_int()));
      }
    }
  }

  std::printf("\nEverything above is mechanical: who asked, who got a "
              "descriptor, when.\nThe tussle moves from 'technical "
              "limitations' to policy, where it belongs.\n");
  return 0;
}
