// The regulator's view (§6): with cookies, "interested parties can
// monitor what traffic gets special treatment by the network just by
// looking at who gets access to cookie descriptors and how."
//
// This example replays the paper's Music Freedom case study against
// the compliance machinery: providers request enrollment into a
// zero-rating program; the operator grants some on time, one after 18
// months (SomaFM), and never answers another (RockRadio.gr). The
// regulator reads the public database and the violation list — no
// subpoenas, no per-case technical investigation.
//
// The second act audits the dataplane side of the same promise: a
// revocation is only as good as its propagation. Two middleboxes sync
// descriptor tables from the operator's control plane; one link
// wedges, the operator revokes a grant, and the regulator catches the
// wedged box — stale past its grace period AND still enforcing the
// revoked descriptor — purely from the nnn_controlplane_* metrics.
//
// The third act is the one tables cannot carry: a middlebox that
// throttles NON-cookie traffic without touching a single descriptor.
// Enrollment database, audit log, sync metrics — all spotless. The
// statistical auditor (src/audit) catches it anyway: replay a matched
// cookie/no-cookie flow schedule, KS-test the FCT distributions, and
// publish the verdict with a p-value over GET /audit.json.
#include <cstdio>
#include <string_view>

#include "audit/auditor.h"
#include "controlplane/epoch.h"
#include "controlplane/sync_client.h"
#include "controlplane/sync_server.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "json/json.h"
#include "server/compliance.h"
#include "server/cookie_server.h"
#include "server/json_api.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

int main() {
  using namespace nnn;
  constexpr util::Timestamp kDay = 24LL * 3600 * util::kSecond;

  util::ManualClock clock(0);
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer operator_server(clock, 314, &descriptor_log);
  server::ServiceOffer program;
  program.name = "MusicFreedom";
  program.service_data = "zero-rate-music";
  operator_server.add_service(program);

  server::ComplianceMonitor fcc;  // 3-day grant rule

  struct Case {
    const char* provider;
    util::Timestamp requested;
    util::Timestamp granted;  // <0 = never
  };
  const Case cases[] = {
      {"bigstream.example", 0 * kDay, 1 * kDay},       // on time
      {"indieradio.example", 5 * kDay, 7 * kDay},      // on time
      {"somafm.example", 10 * kDay, 10 * kDay + 540 * kDay},  // 18 months
      {"rockradio.example", 20 * kDay, -1},            // never answered
  };

  cookies::CookieId bigstream_id = 0;
  for (const auto& c : cases) {
    clock.set(c.requested);
    fcc.record_request(c.provider, "MusicFreedom", c.requested);
    if (c.granted >= 0) {
      clock.set(c.granted);
      // The technical act is one descriptor grant — cookies removed
      // the engineering excuse.
      const auto result = operator_server.acquire("MusicFreedom", c.provider);
      fcc.record_grant(c.provider, "MusicFreedom", c.granted);
      if (std::string_view(c.provider) == "bigstream.example") {
        bigstream_id = result.descriptor->cookie_id;
      }
    }
  }

  clock.set(600 * kDay);
  std::printf("=== public enrollment database (as the FCC would "
              "publish it) ===\n%s\n\n",
              fcc.to_json().dump_pretty().c_str());

  std::printf("=== violations of the 3-day rule at day 600 ===\n");
  for (const auto& violation : fcc.violations(clock.now())) {
    std::printf("  %-22s overdue by %lld days%s\n",
                violation.request.provider.c_str(),
                static_cast<long long>(violation.overdue_by / kDay),
                violation.request.pending() ? "  (still unanswered)"
                                            : "  (granted late)");
  }

  std::printf("\n=== descriptor grants the operator actually made "
              "(audit log) ===\n");
  for (const auto& record : operator_server.audit_log().records()) {
    std::printf("  day %3lld  %-8s %-22s %s\n",
                static_cast<long long>(record.when / kDay),
                to_string(record.event).c_str(), record.user.c_str(),
                record.service.c_str());
  }
  // The same aggregates without operator cooperation beyond exposing
  // the endpoint: the server's grant/revoke/denial counters come out
  // of GET /metrics.json, so an auditor can scrape them like any
  // monitoring system would.
  std::printf("\n=== operator metrics endpoint (GET /metrics.json) ===\n");
  server::JsonApi api(operator_server);
  const auto response = api.handle_http("GET", "/metrics.json");
  const auto metrics = json::parse(response.body);
  if (metrics && metrics->find("families")) {
    for (const auto& family : metrics->find("families")->as_array()) {
      const std::string name = family.get_string("name");
      if (name.rfind("nnn_server_", 0) != 0) continue;
      for (const auto& sample : family.find("samples")->as_array()) {
        std::string labels;
        if (const auto* l = sample.find("labels")) {
          for (const auto& [key, value] : l->as_object()) {
            labels += (labels.empty() ? "{" : ",") + key + "=" +
                      value.as_string();
          }
          if (!labels.empty()) labels += "}";
        }
        std::printf("  %-28s %-18s %lld\n", name.c_str(), labels.c_str(),
                    static_cast<long long>(
                        sample.find("value")->as_int()));
      }
    }
  }

  // === does a revocation actually reach the dataplane? ===
  //
  // Two middleboxes pull the operator's descriptor log. cmts-7's
  // control channel works; cmts-9's wedges right before a revocation.
  // The regulator needs no packet capture: version lag and the stale
  // flag are exported per client, and a stale box whose table still
  // holds the revoked grant live is the violation.
  controlplane::SyncServer sync_server(descriptor_log);

  bool cmts9_link_up = true;
  controlplane::TablePublisher cmts7_tables;
  controlplane::TablePublisher cmts9_tables;
  controlplane::SyncClient* cmts7_ptr = nullptr;
  controlplane::SyncClient* cmts9_ptr = nullptr;

  controlplane::SyncClient::Config sync_config;
  sync_config.stale_grace = 2 * util::kSecond;  // short, for the demo
  sync_config.client_id = 7;
  controlplane::SyncClient cmts7(
      clock, cmts7_tables, sync_config, [&](util::Bytes request) {
        if (auto reply = sync_server.handle(request)) {
          cmts7_ptr->on_datagram(*reply);
        }
      });
  cmts7_ptr = &cmts7;
  sync_config.client_id = 9;
  sync_config.rng_seed = 0xbad1143;
  controlplane::SyncClient cmts9(
      clock, cmts9_tables, sync_config, [&](util::Bytes request) {
        if (!cmts9_link_up) return;  // wedged: request never arrives
        if (auto reply = sync_server.handle(request)) {
          cmts9_ptr->on_datagram(*reply);
        }
      });
  cmts9_ptr = &cmts9;

  cmts7.start();
  cmts9.start();  // both snapshot the full table while the link works

  cmts9_link_up = false;
  operator_server.revoke(bigstream_id, "regulator order");
  for (int i = 0; i < 40; ++i) {  // 4 s: past grace, several retries
    clock.advance(100 * util::kMillisecond);
    cmts7.tick();
    cmts9.tick();
  }

  std::printf("\n=== middlebox propagation audit "
              "(nnn_controlplane_* metrics) ===\n");
  const auto snapshot = telemetry::Registry::global().snapshot();
  auto client_gauge = [&snapshot](std::string_view family,
                                  const char* client) -> long long {
    const auto* fam = snapshot.find(family);
    const auto* sample =
        fam ? fam->find(telemetry::LabelSet{{"client", client}}) : nullptr;
    return sample ? sample->gauge_value : 0;
  };

  struct MiddleboxView {
    const char* name;
    const char* client;
    const controlplane::TablePublisher* tables;
  };
  const MiddleboxView views[] = {{"cmts-7", "7", &cmts7_tables},
                                 {"cmts-9", "9", &cmts9_tables}};
  for (const auto& view : views) {
    const long long lag =
        client_gauge("nnn_controlplane_version_lag", view.client);
    const bool stale =
        client_gauge("nnn_controlplane_stale", view.client) != 0;
    const auto* table = view.tables->peek();
    const auto* entry = table ? table->find(bigstream_id) : nullptr;
    const bool enforcing_revoked = entry != nullptr && !entry->revoked;
    std::printf("  %-8s version_lag=%lld stale=%d revoked grant live=%d\n",
                view.name, lag, stale ? 1 : 0, enforcing_revoked ? 1 : 0);
    if (stale && enforcing_revoked) {
      std::printf("  %-8s ^^^ VIOLATION: out of sync past its grace "
                  "period and still\n           enforcing the revoked "
                  "bigstream.example descriptor\n",
                  "");
    }
  }

  // === the throttle no table can show ===
  //
  // Now the failure mode §6's transparency story cannot see: a
  // middlebox serializes non-cookie traffic at 0.55x the configured
  // rate. No descriptor changes hands, the enrollment database and
  // audit log above stay spotless, every sync metric reads healthy.
  // The only evidence is distributional — so the regulator replays a
  // matched pair of flow schedules (same sizes, same start times;
  // one lane carries valid cookies, one carries none) and lets a
  // two-sample KS test decide whether the split is noise.
  audit::AuditorConfig audit_config;
  audit_config.replay.pairs = 120;
  audit_config.permutation_rounds = 500;
  audit::Auditor auditor(audit_config);
  api.set_auditor(&auditor);

  std::printf("\n=== statistical neutrality audit (matched-pair replay) "
              "===\n");
  const audit::AuditReport clean = auditor.run(/*seed=*/42);
  std::printf("  clean link:      %s\n", clean.summary().c_str());

  fault::FaultPlan throttle_plan;
  fault::FaultEvent throttle;
  throttle.kind = fault::FaultKind::kThrottleNonCookie;
  throttle.start = 0;
  throttle.duration = audit_config.replay.horizon;
  throttle.magnitude = 0.55;  // non-cookie band runs at 55% rate
  throttle.target = audit_config.replay.audited_link_id;
  throttle_plan.add(throttle);
  fault::Injector injector;
  injector.arm(throttle_plan);

  const audit::AuditReport caught = auditor.run(/*seed=*/42, &injector);
  std::printf("  throttled link:  %s\n", caught.summary().c_str());
  std::printf("  (the table-side audit above saw nothing either time: "
              "same descriptors,\n   same grants, same sync state — the "
              "violation lives only in the\n   FCT distribution)\n");

  std::printf("\n=== regulator endpoint (GET /audit.json) ===\n%s\n",
              api.handle_http("GET", "/audit.json").body.c_str());

  std::printf("\nEverything above is mechanical: who asked, who got a "
              "descriptor, when —\nand when the tables lie, what the "
              "packets themselves say under a KS test.\nThe tussle moves "
              "from 'technical limitations' to policy, where it "
              "belongs.\n");
  return 0;
}
