// Descriptor delegation and acknowledgment cookies (§4.3, §4.5).
//
// A user shares her (shared-enabled) Boost descriptor with a content
// provider; the provider's CDN then mints cookies on her behalf and
// stamps them on the *downlink* content — "delegation still keeps the
// users in control while respecting any tussle boundaries": revoking
// the descriptor instantly cuts the CDN off. Acknowledgment cookies
// confirm to the client that the network acted on its request.
#include <cstdio>

#include "controlplane/local_subscriber.h"
#include "cookies/delegation.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "dataplane/middlebox.h"
#include "server/cookie_server.h"
#include "util/clock.h"

int main() {
  using namespace nnn;
  util::SystemClock clock;

  cookies::CookieVerifier verifier(clock);
  controlplane::DescriptorLog descriptor_log;
  server::CookieServer isp(clock, 7, &descriptor_log);
  controlplane::LocalSubscriber subscriber(descriptor_log, verifier);
  server::ServiceOffer offer;
  offer.name = "Boost";
  offer.service_data = "Boost";
  offer.descriptor_lifetime = 24LL * 3600 * util::kSecond;
  cookies::Attributes attrs;
  attrs.shared = true;       // delegation allowed
  attrs.ack_cookie = true;   // server echoes/mints an ack
  offer.attributes = attrs;
  isp.add_service(offer);

  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock, verifier, registry);

  // 1. The user acquires the descriptor and delegates it to her video
  //    provider.
  const auto grant = isp.acquire("Boost", "alice");
  const auto delegated = cookies::delegate_descriptor(
      *grant.descriptor, "alice", "videocdn.example");
  std::printf("delegation: %s -> %s (%s)\n", delegated->delegated_by.c_str(),
              delegated->delegated_to.c_str(),
              delegated ? "granted" : "refused");

  // 2. The CDN mints cookies from the delegated descriptor and stamps
  //    the downlink video segments.
  cookies::CookieGenerator cdn_generator(delegated->descriptor, clock, 11);
  net::FiveTuple downlink;
  downlink.src_ip = net::IpAddress::v4(151, 101, 64, 5);  // CDN edge
  downlink.dst_ip = net::IpAddress::v4(203, 0, 113, 9);   // alice (post-NAT)
  downlink.src_port = 443;
  downlink.dst_port = 52288;
  downlink.proto = net::L4Proto::kUdp;  // QUIC-style

  net::Packet first_segment;
  first_segment.tuple = downlink;
  first_segment.payload = {0x51, 0x55, 0x49, 0x43};  // "QUIC"
  cookies::attach(first_segment, cdn_generator.generate(),
                  cookies::Transport::kUdpHeader);
  const auto verdict = middlebox.process(first_segment);
  std::printf("downlink segment with CDN-minted cookie: %s\n",
              verdict.action ? "fast lane" : "best effort");

  // 3. Acknowledgment cookie back to the client: the CDN echoes the
  //    verified cookie (or mints a fresh one) so the client knows the
  //    request was honored.
  const auto extracted = cookies::extract(first_segment);
  const cookies::Cookie ack =
      cookies::ack_by_mint(cdn_generator);
  std::printf("ack cookie minted from the same descriptor: id=%llu "
              "(matches: %s)\n",
              static_cast<unsigned long long>(ack.cookie_id),
              ack.cookie_id == extracted->stack.front().cookie_id
                  ? "yes"
                  : "no");

  // 4. Alice changes her mind: one revocation cuts the CDN off.
  isp.revoke(grant.descriptor->cookie_id, "alice revoked delegation");
  net::Packet next_segment;
  next_segment.tuple = downlink;
  next_segment.tuple.dst_port = 52289;  // new flow
  next_segment.payload = {0x51, 0x55, 0x49, 0x43};
  cookies::attach(next_segment, cdn_generator.generate(),
                  cookies::Transport::kUdpHeader);
  const auto after = middlebox.process(next_segment);
  std::printf("after revocation: %s (%s)\n",
              after.action ? "fast lane" : "best effort",
              std::string(to_string(*after.verify_status)).c_str());

  std::printf("\naudit trail the regulator sees:\n%s\n",
              isp.audit_log().to_json().dump_pretty().c_str());
  return 0;
}
