// Boost in a simulated home (§5): a user clicks "boost this tab" while
// a housemate's download hogs the 6 Mb/s last mile. The example wires
// the full stack — browser agent, cookie server, AP daemon with
// priority queues and the 1 Mb/s throttle, simulated TCP — and prints
// the measured page-flow completion with and without Boost.
#include <cstdio>
#include <memory>
#include <optional>

#include "boost_lane/daemon.h"
#include "cookies/generator.h"
#include "cookies/transport.h"
#include "net/http.h"
#include "sim/event_loop.h"
#include "sim/host.h"
#include "sim/link.h"
#include "sim/tcp.h"

namespace {

using namespace nnn;

/// One experiment: download 500 KB while a housemate's transfer runs.
/// Returns the measured flow's completion time in seconds.
double run_home(bool use_boost) {
  sim::EventLoop loop;
  sim::Host laptop(net::IpAddress::v4(192, 168, 1, 10), "laptop");
  sim::Host housemate(net::IpAddress::v4(192, 168, 1, 11), "housemate");
  sim::Host video_server(net::IpAddress::v4(198, 51, 100, 1), "video");
  sim::Host other_server(net::IpAddress::v4(198, 51, 100, 2), "other");

  cookies::CookieVerifier verifier(loop.clock());
  boost_lane::BoostDaemon daemon(loop.clock(), verifier,
                                 {.wan_capacity_bps = 6e6,
                                  .throttle_bps = 1e6});
  cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 42;
  descriptor.key.assign(32, 0x42);
  descriptor.service_data = "Boost";
  verifier.add_descriptor(descriptor);
  cookies::CookieGenerator generator(descriptor, loop.clock(), 1);

  auto to_home = [&](net::Packet p) {
    (p.tuple.dst_ip == laptop.address() ? laptop : housemate).receive(p);
  };
  auto to_wan = [&](net::Packet p) {
    (p.tuple.dst_ip == video_server.address() ? video_server
                                              : other_server)
        .receive(p);
  };
  sim::Link downlink(loop, {.rate_bps = 6e6,
                            .prop_delay = 15 * util::kMillisecond,
                            .bands = 2,
                            .band_capacity_bytes = 96 * 1024},
                     to_home);
  sim::Link uplink(loop, {.rate_bps = 6e6,
                          .prop_delay = 15 * util::kMillisecond,
                          .bands = 2,
                          .band_capacity_bytes = 96 * 1024},
                   to_wan);
  daemon.attach_links(&downlink, &uplink);
  auto classify_up = [&](net::Packet p) {
    const size_t band = daemon.classify(p);
    uplink.send(std::move(p), band);
  };
  auto classify_down = [&](net::Packet p) {
    const size_t band = daemon.classify(p);
    downlink.send(std::move(p), band);
  };
  laptop.set_uplink(classify_up);
  housemate.set_uplink(classify_up);
  video_server.set_uplink(classify_down);
  other_server.set_uplink(classify_down);

  // The housemate's big download, running from t=0.
  net::FiveTuple big;
  big.src_ip = other_server.address();
  big.dst_ip = housemate.address();
  big.src_port = 80;
  big.dst_port = 50000;
  sim::TcpSource big_src(loop, other_server, big, 8'000'000, {}, nullptr);
  sim::TcpSink big_snk(loop, housemate, big, nullptr);
  other_server.register_handler(big.reversed(),
                                [&](const net::Packet& p) {
                                  if (p.ack) big_src.on_ack(p);
                                });
  housemate.register_handler(big, [&](const net::Packet& p) {
    big_snk.on_data(p);
  });
  loop.at(0, [&] { big_src.start(); });

  // The measured video flow, requested at t=1s.
  net::FiveTuple video;
  video.src_ip = video_server.address();
  video.dst_ip = laptop.address();
  video.src_port = 443;
  video.dst_port = 51000;
  std::optional<util::Timestamp> started;
  std::optional<util::Timestamp> finished;
  sim::TcpSource video_src(loop, video_server, video, 500 * 1024, {},
                           nullptr);
  sim::TcpSink video_snk(loop, laptop, video,
                         [&](util::Timestamp t) { finished = t; });
  video_server.register_handler(video.reversed(),
                                [&](const net::Packet& p) {
                                  if (p.ack) {
                                    video_src.on_ack(p);
                                  } else if (!video_src.complete()) {
                                    video_src.start();
                                  }
                                });
  laptop.register_handler(video, [&](const net::Packet& p) {
    video_snk.on_data(p);
  });
  loop.at(1 * util::kSecond, [&] {
    started = loop.now();
    net::Packet request;
    request.tuple = video.reversed();
    net::http::Request http("GET", "/episode-1", "video.example");
    const std::string text = http.serialize();
    request.payload.assign(text.begin(), text.end());
    if (use_boost) {
      // What the browser extension does when the user clicks "boost".
      cookies::attach(request, generator.generate(),
                      cookies::Transport::kHttpHeader);
    }
    laptop.send(std::move(request));
  });

  loop.run_until(120 * util::kSecond);
  if (!finished || !started) return -1;
  return static_cast<double>(*finished - *started) / util::kSecond;
}

}  // namespace

int main() {
  std::printf("=== Boost at home: 500 KB video start-up vs a housemate's "
              "download (6 Mb/s DSL) ===\n\n");
  const double plain = run_home(false);
  const double boosted = run_home(true);
  std::printf("without Boost : %.2f s\n", plain);
  std::printf("with Boost    : %.2f s  (%0.1fx faster)\n", boosted,
              plain / boosted);
  std::printf("\nThe boosted run carried one cookie on the HTTP request; "
              "the AP daemon verified it,\nmapped the flow (and its "
              "reverse) to the fast lane, and throttled everything else "
              "to 1 Mb/s.\n");
  return 0;
}
