// State-layer ablation: does ISP-scale cookie state hold its budgets?
//
// Phases, each one JSON record:
//   state/table/build      — DescriptorStore at N entries: build rate,
//                            bytes/descriptor (budget: <= 160 B
//                            amortized, hot midstates excluded), index
//                            probe p99, process RSS.
//   state/verify/local     — single-descriptor local-mode verify, the
//                            in-run stand-in for BENCH_crypto.json's
//                            BM_CookieVerify figure. Comparing within
//                            one run factors out machine drift.
//   state/verify/zipf_hot  — external-table mode over the N-entry
//                            store under a Zipf access stream: the
//                            hot tier keeps midstates for the working
//                            set, tail hits pay rehydration.
//                            Acceptance: within 5% of local baseline.
//   state/verify/epoch_churn — same stream while the table epoch flips
//                            every 64 Ki packets, forcing hot-tier
//                            revalidation sweeps.
//   state/replay/insert    — M uuids through the wheel-based
//                            ReplayCache at a rate that keeps the
//                            whole horizon resident: ns/insert,
//                            bytes/uuid, wheel occupancy, purge scans.
//
// Usage: ablation_state [descriptors] [replay_uuids] [zipf_packets]
//                       [--json out.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "cookies/cookie.h"
#include "cookies/descriptor_store.h"
#include "cookies/descriptor_table.h"
#include "cookies/generator.h"
#include "cookies/replay_cache.h"
#include "cookies/verifier.h"
#include "state/flat_table.h"
#include "state/mem.h"
#include "util/clock.h"
#include "util/rng.h"
#include "workload/samplers.h"

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

double rss_mb() {
  return static_cast<double>(nnn::state::resident_bytes()) / (1024.0 * 1024.0);
}

/// Deterministic 32-byte key per id, so minting and the store agree
/// without holding N descriptors in memory twice.
nnn::util::Bytes key_of(nnn::cookies::CookieId id) {
  nnn::util::Bytes key(32);
  uint64_t x = nnn::state::mix_hash(id);
  for (size_t i = 0; i < key.size(); i += 8) {
    x = nnn::state::mix_hash(x + i);
    std::memcpy(key.data() + i, &x, 8);
  }
  return key;
}

nnn::cookies::CookieDescriptor bench_descriptor(nnn::cookies::CookieId id) {
  nnn::cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key = key_of(id);
  d.service_data = "Boost";
  return d;
}

nnn::cookies::Cookie mint(nnn::cookies::CookieId id,
                          const nnn::util::Bytes& key,
                          nnn::cookies::CookieTime ts, nnn::util::Rng& rng) {
  nnn::cookies::Cookie c;
  c.cookie_id = id;
  c.uuid = nnn::crypto::Uuid::generate(rng);
  c.timestamp = ts;
  c.signature = c.compute_tag(nnn::util::BytesView(key));
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = nnn::bench::strip_json_flag(argc, argv);
  size_t descriptors = 1'000'000;
  size_t replay_uuids = 10'000'000;
  size_t zipf_packets = 1'000'000;
  if (argc > 1) descriptors = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) replay_uuids = static_cast<size_t>(std::atoll(argv[2]));
  if (argc > 3) zipf_packets = static_cast<size_t>(std::atoll(argv[3]));
  std::vector<nnn::bench::BenchRecord> records;

  const double rss_start_mb = rss_mb();
  std::printf("=== State layer at scale ===\n");
  std::printf("descriptors=%zu replay_uuids=%zu zipf_packets=%zu "
              "(rss %.1f MB at start)\n\n",
              descriptors, replay_uuids, zipf_packets, rss_start_mb);

  // --- Phase 1: descriptor store build + footprint ------------------
  nnn::cookies::DescriptorStore store;
  {
    const auto t0 = Clock::now();
    store.reserve(descriptors);
    for (nnn::cookies::CookieId id = 1;
         id <= static_cast<nnn::cookies::CookieId>(descriptors); ++id) {
      store.upsert(bench_descriptor(id));
    }
    const double ns = elapsed_ns(t0, Clock::now());
    const double bytes_per =
        static_cast<double>(store.memory_bytes()) /
        static_cast<double>(store.size());
    const auto probes = store.probe_stats(4096);
    std::printf("table/build    %9.1f ns/descriptor  %6.1f B/descriptor  "
                "probe p99 %u  rss %.1f MB\n",
                ns / static_cast<double>(descriptors), bytes_per,
                probes.p99, rss_mb());
    nnn::bench::BenchRecord rec;
    rec.name = "state/table/build";
    rec.config["descriptors"] = static_cast<int64_t>(descriptors);
    rec.config["bytes_per_descriptor"] = bytes_per;
    rec.config["probe_p99"] = static_cast<int64_t>(probes.p99);
    rec.config["probe_mean"] = probes.mean;
    rec.config["rss_mb"] = rss_mb();
    rec.ns_per_op = ns / static_cast<double>(descriptors);
    rec.ops_per_sec = 1e9 / rec.ns_per_op;
    records.push_back(std::move(rec));
  }

  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  const nnn::cookies::CookieTime ts =
      nnn::cookies::to_cookie_time(clock.now());

  // --- Phase 2: local-mode baseline (the BM_CookieVerify shape) -----
  // Same stream length and warmup split as the Zipf phase, so both
  // sides carry the same replay-cache cache-pressure: at 10M-uuid
  // scale the uuid table dominates ns/verify variance, and a short
  // baseline would flatter itself with an L2-resident cache.
  const size_t warmup = zipf_packets / 4;
  const size_t measured = zipf_packets - warmup;
  double local_ns = 0;
  {
    nnn::cookies::CookieVerifier local(clock);
    local.add_descriptor(bench_descriptor(1));
    const nnn::util::Bytes key = key_of(1);
    nnn::util::Rng rng(0xBA5E);
    std::vector<nnn::cookies::Cookie> batch;
    batch.reserve(zipf_packets);
    for (size_t i = 0; i < zipf_packets; ++i) {
      batch.push_back(mint(1, key, ts, rng));
    }
    for (size_t i = 0; i < warmup; ++i) {
      if (!local.verify(batch[i]).ok()) std::abort();
    }
    const auto t0 = Clock::now();
    for (size_t i = warmup; i < zipf_packets; ++i) {
      if (!local.verify(batch[i]).ok()) std::abort();
    }
    local_ns = elapsed_ns(t0, Clock::now()) / static_cast<double>(measured);
    std::printf("verify/local   %9.1f ns/verify (in-run baseline; "
                "BENCH_crypto.json tracks the canonical figure)\n",
                local_ns);
    nnn::bench::BenchRecord rec;
    rec.name = "state/verify/local";
    rec.config["ops"] = static_cast<int64_t>(measured);
    rec.ns_per_op = local_ns;
    rec.ops_per_sec = 1e9 / local_ns;
    records.push_back(std::move(rec));
  }

  // --- Phase 3: external-table Zipf stream through the hot tier -----
  nnn::cookies::DescriptorTable table(1, store);
  table.set_epoch(1);
  nnn::cookies::CookieVerifier verifier(clock);
  verifier.set_external_table(&table);
  double zipf_ns = 0;
  {
    // s = 1.4 matches the workload::PreferenceSampler default: a
    // heavy-tailed working set that mostly fits the hot budget, with
    // a real tail of cold rehydrating hits.
    nnn::util::Rng shuffle_rng(0x5EED);
    const nnn::workload::ZipfAccess access(descriptors, 1.4, shuffle_rng);
    nnn::util::Rng rng(0x21BF);
    verifier.configure_external_replay(zipf_packets + 64);
    std::vector<nnn::cookies::Cookie> stream;
    stream.reserve(zipf_packets);
    for (size_t i = 0; i < zipf_packets; ++i) {
      const auto id =
          static_cast<nnn::cookies::CookieId>(access.next(rng) + 1);
      stream.push_back(mint(id, key_of(id), ts, rng));
    }
    for (size_t i = 0; i < warmup; ++i) {
      if (!verifier.verify(stream[i]).ok()) std::abort();
    }
    const uint64_t warm_rehydrations = verifier.hot_tier().rehydrations();
    const auto t0 = Clock::now();
    for (size_t i = warmup; i < zipf_packets; ++i) {
      if (!verifier.verify(stream[i]).ok()) std::abort();
    }
    zipf_ns = elapsed_ns(t0, Clock::now()) / static_cast<double>(measured);
    const double overhead_pct =
        local_ns > 0 ? 100.0 * (zipf_ns - local_ns) / local_ns : 0;
    const double cold_share =
        100.0 *
        static_cast<double>(verifier.hot_tier().rehydrations() -
                            warm_rehydrations) /
        static_cast<double>(measured);
    std::printf("verify/zipf_hot %8.1f ns/verify  overhead %+.1f%% "
                "(bar: <5%%)  hot %zu resident  cold hits %.2f%%\n",
                zipf_ns, overhead_pct, verifier.hot_tier().resident(),
                cold_share);
    nnn::bench::BenchRecord rec;
    rec.name = "state/verify/zipf_hot";
    rec.config["descriptors"] = static_cast<int64_t>(descriptors);
    rec.config["packets"] = static_cast<int64_t>(measured);
    rec.config["zipf_s"] = 1.4;
    rec.config["hot_budget"] = static_cast<int64_t>(
        verifier.hot_tier().budget());
    rec.config["hot_resident"] = static_cast<int64_t>(
        verifier.hot_tier().resident());
    rec.config["cold_hit_pct"] = cold_share;
    rec.config["overhead_pct"] = overhead_pct;
    rec.ns_per_op = zipf_ns;
    rec.ops_per_sec = 1e9 / zipf_ns;
    records.push_back(std::move(rec));
  }

  // --- Phase 3b: the deployment shape — flow bursts via verify_batch
  // Single-verify over a DRAM-resident working set pays the hot-entry
  // cache misses on every packet. Real traffic arrives as flow bursts
  // and the dispatcher keys workers by descriptor, so verify_batch
  // touches each hot entry once per run of cookies. This row is what
  // a middlebox actually sees.
  {
    constexpr size_t kBurst = 16;
    constexpr size_t kBatch = 32;
    nnn::util::Rng shuffle_rng(0x5EED);
    const nnn::workload::ZipfAccess access(descriptors, 1.4, shuffle_rng);
    nnn::util::Rng rng(0x77AB);
    const size_t ops = zipf_packets / kBatch * kBatch;
    verifier.configure_external_replay(ops + 64);
    std::vector<nnn::cookies::Cookie> stream;
    stream.reserve(ops);
    while (stream.size() < ops) {
      const auto id =
          static_cast<nnn::cookies::CookieId>(access.next(rng) + 1);
      const nnn::util::Bytes key = key_of(id);
      for (size_t k = 0; k < kBurst && stream.size() < ops; ++k) {
        stream.push_back(mint(id, key, ts, rng));
      }
    }
    std::vector<nnn::cookies::VerifyResult> results(kBatch);
    const size_t burst_warmup = ops / 4 / kBatch * kBatch;
    for (size_t i = 0; i < burst_warmup; i += kBatch) {
      verifier.verify_batch({stream.data() + i, kBatch}, results);
    }
    const auto t0 = Clock::now();
    for (size_t i = burst_warmup; i < ops; i += kBatch) {
      verifier.verify_batch({stream.data() + i, kBatch}, results);
      for (const auto& r : results) {
        if (!r.ok()) std::abort();
      }
    }
    const double burst_ns = elapsed_ns(t0, Clock::now()) /
                            static_cast<double>(ops - burst_warmup);
    const double overhead_pct =
        local_ns > 0 ? 100.0 * (burst_ns - local_ns) / local_ns : 0;
    std::printf("verify/zipf_burst %6.1f ns/verify  %+.1f%% vs local "
                "(burst %zu, batch %zu)\n",
                burst_ns, overhead_pct, kBurst, kBatch);
    nnn::bench::BenchRecord rec;
    rec.name = "state/verify/zipf_burst";
    rec.config["descriptors"] = static_cast<int64_t>(descriptors);
    rec.config["packets"] = static_cast<int64_t>(ops - burst_warmup);
    rec.config["burst"] = static_cast<int64_t>(kBurst);
    rec.config["batch"] = static_cast<int64_t>(kBatch);
    rec.config["overhead_pct"] = overhead_pct;
    rec.ns_per_op = burst_ns;
    rec.ops_per_sec = 1e9 / burst_ns;
    records.push_back(std::move(rec));
  }

  // --- Phase 4: epoch churn — revalidation sweeps under table swaps -
  {
    nnn::cookies::DescriptorTable shadow(1, store);
    nnn::util::Rng shuffle_rng(0x5EED);
    const nnn::workload::ZipfAccess access(descriptors, 1.4, shuffle_rng);
    nnn::util::Rng rng(0xC4A2);
    const size_t ops = zipf_packets / 2;
    constexpr size_t kSwapEvery = 64 * 1024;
    verifier.configure_external_replay(ops + 64);
    std::vector<nnn::cookies::Cookie> stream;
    stream.reserve(ops);
    for (size_t i = 0; i < ops; ++i) {
      const auto id =
          static_cast<nnn::cookies::CookieId>(access.next(rng) + 1);
      stream.push_back(mint(id, key_of(id), ts, rng));
    }
    uint64_t epoch = 1;
    const nnn::cookies::DescriptorTable* tables[2] = {&table, &shadow};
    const auto t0 = Clock::now();
    for (size_t i = 0; i < ops; ++i) {
      if (i % kSwapEvery == 0) {
        ++epoch;
        auto* next = const_cast<nnn::cookies::DescriptorTable*>(
            tables[epoch % 2]);
        next->set_epoch(epoch);
        verifier.set_external_table(next);
      }
      if (!verifier.verify(stream[i]).ok()) std::abort();
    }
    const double churn_ns =
        elapsed_ns(t0, Clock::now()) / static_cast<double>(ops);
    const double delta_pct =
        zipf_ns > 0 ? 100.0 * (churn_ns - zipf_ns) / zipf_ns : 0;
    std::printf("verify/epoch_churn %5.1f ns/verify  %+.1f%% vs zipf_hot "
                "(swap every %zu packets)\n",
                churn_ns, delta_pct, kSwapEvery);
    nnn::bench::BenchRecord rec;
    rec.name = "state/verify/epoch_churn";
    rec.config["packets"] = static_cast<int64_t>(ops);
    rec.config["swap_every"] = static_cast<int64_t>(kSwapEvery);
    rec.config["delta_vs_zipf_pct"] = delta_pct;
    rec.ns_per_op = churn_ns;
    rec.ops_per_sec = 1e9 / churn_ns;
    records.push_back(std::move(rec));
  }

  // --- Phase 5: replay wheel under a full-horizon uuid stream -------
  {
    // 1 µs per insert (1M/s) against the 5 s NCT: the first 5M uuids
    // fill the horizon, the rest run at steady state — every insert
    // retires ~one expired entry, so ns/insert includes the wheel's
    // amortized O(1) expiry work, and `resident` settles at
    // rate x horizon.
    constexpr nnn::util::Timestamp kHorizon = 5 * nnn::util::kSecond;
    const nnn::util::Timestamp step =
        std::max<nnn::util::Timestamp>(1, kHorizon / replay_uuids);
    nnn::cookies::ReplayCache cache(kHorizon, replay_uuids + 64);
    nnn::util::Rng rng(0x9E9E);
    std::vector<nnn::crypto::Uuid> uuids(std::min<size_t>(replay_uuids,
                                                          1 << 20));
    nnn::util::Timestamp now = 0;
    const auto t0 = Clock::now();
    size_t done = 0;
    while (done < replay_uuids) {
      const size_t chunk = std::min(uuids.size(), replay_uuids - done);
      for (size_t i = 0; i < chunk; ++i) {
        uuids[i] = nnn::crypto::Uuid::generate(rng);
      }
      for (size_t i = 0; i < chunk; ++i) {
        if (!cache.insert(uuids[i], now)) std::abort();
        now += step;
      }
      done += chunk;
    }
    const double ns = elapsed_ns(t0, Clock::now());
    // uuid generation rides inside the loop; charge it separately.
    nnn::util::Rng rng2(0x9E9E);
    const auto g0 = Clock::now();
    for (size_t i = 0; i < uuids.size(); ++i) {
      uuids[i] = nnn::crypto::Uuid::generate(rng2);
    }
    const double gen_ns =
        elapsed_ns(g0, Clock::now()) / static_cast<double>(uuids.size());
    const double insert_ns =
        ns / static_cast<double>(replay_uuids) - gen_ns;
    const double bytes_per =
        static_cast<double>(cache.memory_bytes()) /
        static_cast<double>(cache.size());
    std::printf("replay/insert  %9.1f ns/insert  %6.1f B/uuid  "
                "%zu resident  wheel %zu/%zu slots  %llu purge scans  "
                "rss %.1f MB\n",
                insert_ns, bytes_per, cache.size(),
                cache.wheel_occupied_slots(), cache.wheel_slots(),
                static_cast<unsigned long long>(cache.purge_scans()),
                rss_mb());
    nnn::bench::BenchRecord rec;
    rec.name = "state/replay/insert";
    rec.config["uuids"] = static_cast<int64_t>(replay_uuids);
    rec.config["horizon_s"] = 5;
    rec.config["resident"] = static_cast<int64_t>(cache.size());
    rec.config["bytes_per_uuid"] = bytes_per;
    rec.config["wheel_occupied_slots"] =
        static_cast<int64_t>(cache.wheel_occupied_slots());
    rec.config["purge_scans"] = static_cast<int64_t>(cache.purge_scans());
    rec.config["capacity_evictions"] =
        static_cast<int64_t>(cache.capacity_evictions());
    rec.config["rss_mb"] = rss_mb();
    rec.ns_per_op = insert_ns;
    rec.ops_per_sec = insert_ns > 0 ? 1e9 / insert_ns : 0;
    records.push_back(std::move(rec));
  }

  if (!json_path.empty() &&
      !nnn::bench::write_bench_json(json_path, "ablation_state", records)) {
    return 1;
  }
  return 0;
}
