// QUIC-shaped encrypted-transport ablation (PR 10): migration
// survival, DPI collapse, steering stability, and ingest throughput.
//
// Four record groups in BENCH_quic.json:
//
//   quic_migration_survival — the headline number. Encrypted traces
//                       (CID rotations + seeded NAT rebinds) through
//                       the cookie middlebox across a seed matrix:
//                       what fraction of post-handshake packets of
//                       cookie-bearing connections keep their band-0
//                       mapping? The cookie was presented exactly once,
//                       in the handshake. CI gates min_survival >= 0.99.
//   dpi_encrypted /     — the same traces through the DPI baseline,
//   dpi_cleartext         and the TCP+TLS control trace with a readable
//                       SNI. The collapse is the delta between the two
//                       accuracies; CI gates encrypted <= 0.01.
//   quic_steering       — ShardedDataplane under descriptor affinity
//                       vs naive flow hash: fraction of connections
//                       whose packets all landed on ONE shard while
//                       rotating and migrating.
//   quic_runtime_ingest — the trace through the threaded zero-copy
//                       Dataplane facade; pps, the shed ledger, and the
//                       arena leak gate (exit 1 on a leaked slot).
//
// Run: ./bench/ablation_quic [--json BENCH_quic.json]
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_json.h"
#include "baselines/dpi.h"
#include "cookies/verifier.h"
#include "dataplane/middlebox.h"
#include "dataplane/service_registry.h"
#include "dataplane/sharding.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "quic/workload.h"
#include "runtime/dataplane.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace {

using namespace nnn;
using util::kMillisecond;

constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5};
constexpr size_t kSeedCount = sizeof(kSeeds) / sizeof(kSeeds[0]);

quic::QuicTraceGenerator::Config trace_config(bool cleartext) {
  quic::QuicTraceGenerator::Config config;
  config.connections = 64;
  config.packets_per_connection = 120;
  config.rotate_every = 16;
  config.cleartext = cleartext;
  return config;
}

/// Two migration windows at magnitude 1.0: every connection rebinds
/// twice over the ~380 ms (virtual) trace.
fault::FaultPlan migration_plan() {
  fault::FaultPlan plan;
  plan.add({fault::FaultKind::kNatRebind, 60 * kMillisecond,
            60 * kMillisecond, 1.0});
  plan.add({fault::FaultKind::kNatRebind, 220 * kMillisecond,
            60 * kMillisecond, 1.0});
  return plan;
}

struct SurvivalResult {
  uint64_t post_handshake = 0;
  uint64_t survived = 0;
  uint64_t handshakes_mapped = 0;
  uint64_t rotations = 0;
  uint64_t migrations = 0;
  uint64_t packets = 0;
  uint64_t total_nanos = 0;

  double survival() const {
    return post_handshake > 0
               ? static_cast<double>(survived) /
                     static_cast<double>(post_handshake)
               : 0.0;
  }
};

/// One encrypted trace through a single middlebox, with migrations.
SurvivalResult run_survival(uint64_t seed) {
  SurvivalResult result;
  util::ManualClock clock;
  cookies::CookieVerifier verifier(clock);
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::Middlebox middlebox(clock, verifier, registry);

  quic::QuicTraceGenerator gen(trace_config(false), clock, &verifier, seed);
  fault::Injector injector;
  injector.arm(migration_plan(), seed);
  gen.set_fault_injector(&injector);

  net::Packet packet;
  const uint64_t t0 = telemetry::monotonic_nanos();
  const size_t total = gen.total_packets();
  for (size_t i = 0; i < total; ++i) {
    packet = net::Packet{};
    const uint32_t conn = gen.fill_next(packet);
    const dataplane::Verdict verdict = middlebox.process(packet);
    clock.advance(50);
    ++result.packets;
    if (!gen.connection(conn).has_cookie) continue;
    if (verdict.mapped_now) {
      ++result.handshakes_mapped;
    } else {
      ++result.post_handshake;
      if (verdict.action.has_value()) ++result.survived;
    }
  }
  result.total_nanos = telemetry::monotonic_nanos() - t0;
  const auto& config = gen.config();
  for (size_t c = 0; c < config.connections; ++c) {
    result.rotations += gen.connection(c).rotations;
    result.migrations += gen.connection(c).migrations;
  }
  return result;
}

struct DpiResult {
  uint64_t correct = 0;
  uint64_t total = 0;
  uint64_t total_nanos = 0;

  double accuracy() const {
    return total > 0
               ? static_cast<double>(correct) / static_cast<double>(total)
               : 0.0;
  }
};

/// One trace through the DPI baseline (no cookie machinery at all).
DpiResult run_dpi(uint64_t seed, bool cleartext) {
  DpiResult result;
  util::ManualClock clock;
  quic::QuicTraceGenerator gen(trace_config(cleartext), clock, nullptr,
                               seed);
  baselines::DpiEngine dpi;
  for (auto& rule : quic::QuicTraceGenerator::dpi_rules()) {
    dpi.add_rule(std::move(rule));
  }
  net::Packet packet;
  const uint64_t t0 = telemetry::monotonic_nanos();
  const size_t total = gen.total_packets();
  for (size_t i = 0; i < total; ++i) {
    packet = net::Packet{};
    const uint32_t conn = gen.fill_next(packet);
    const auto label = dpi.classify(packet);
    ++result.total;
    if (label && *label == gen.connection(conn).app) ++result.correct;
    clock.advance(50);
  }
  result.total_nanos = telemetry::monotonic_nanos() - t0;
  return result;
}

/// Steering stability: fraction of connections all of whose packets
/// landed on one shard, while rotating and migrating.
double run_steering(uint64_t seed, dataplane::DispatchPolicy policy) {
  constexpr size_t kShards = 8;
  util::ManualClock clock;
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  dataplane::ShardedDataplane plane(clock, registry, kShards, policy);

  const auto config = trace_config(false);
  cookies::CookieVerifier staging(clock);
  quic::QuicTraceGenerator gen(config, clock, &staging, seed);
  for (const auto& d : gen.descriptors()) plane.add_descriptor(d);
  fault::Injector injector;
  injector.arm(migration_plan(), seed);
  gen.set_fault_injector(&injector);

  std::vector<std::set<size_t>> shards(config.connections);
  net::Packet packet;
  const size_t total = gen.total_packets();
  for (size_t i = 0; i < total; ++i) {
    packet = net::Packet{};
    const uint32_t conn = gen.fill_next(packet);
    plane.process(packet);
    shards[conn].insert(plane.shard_for(packet));
    clock.advance(50);
  }
  size_t stable = 0;
  for (const auto& s : shards) {
    if (s.size() == 1) ++stable;
  }
  return static_cast<double>(stable) /
         static_cast<double>(config.connections);
}

struct IngestResult {
  uint64_t packets = 0;
  uint64_t processed = 0;
  uint64_t shed = 0;
  uint64_t outstanding = 0;
  uint64_t survived = 0;
  uint64_t post_handshake = 0;
  uint64_t wall_nanos = 0;
  bool ledger_ok = false;
};

/// The full trace through the threaded zero-copy facade.
IngestResult run_ingest(uint64_t seed, size_t workers) {
  IngestResult result;
  util::ManualClock plane_clock;  // frozen while workers run
  dataplane::ServiceRegistry registry;
  registry.bind("Boost", dataplane::PriorityAction{0});
  runtime::Dataplane::Config config;
  config.pool.workers = workers;
  config.pool.verdict_capacity = 1 << 15;
  runtime::Dataplane plane(plane_clock, registry, config);

  util::ManualClock trace_clock;
  cookies::CookieVerifier staging(trace_clock);
  quic::QuicTraceGenerator gen(trace_config(false), trace_clock, &staging,
                               seed);
  for (const auto& d : gen.descriptors()) plane.add_descriptor(d);
  fault::Injector injector;
  injector.arm(migration_plan(), seed);
  gen.set_fault_injector(&injector);
  plane.start();

  const size_t total = gen.total_packets();
  const uint64_t t0 = telemetry::monotonic_nanos();
  for (size_t i = 0; i < total; ++i) {
    runtime::PacketHandle h = plane.make_packet();
    while (!h) h = plane.make_packet();
    gen.fill_next(*h);
    trace_clock.advance(50);
    plane.ingest_blocking(std::move(h));
  }
  plane.drain();
  result.wall_nanos = telemetry::monotonic_nanos() - t0;
  plane.stop();

  const runtime::WorkerSnapshot totals = plane.snapshot().totals();
  result.packets = total;
  result.processed = totals.processed;
  result.shed = totals.shed;
  result.ledger_ok = totals.processed + totals.shed == total;
  result.outstanding = plane.arena().outstanding();

  std::vector<runtime::VerdictRecord> verdicts;
  plane.drain_verdicts(verdicts);
  for (const auto& v : verdicts) {
    if (v.mapped_now) continue;
    if (!gen.connection(v.seq).has_cookie) continue;
    ++result.post_handshake;
    if (v.has_action) ++result.survived;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::strip_json_flag(argc, argv);
  std::vector<bench::BenchRecord> records;
  bool leak = false;

  // --- migration survival across the seed matrix ---
  {
    double min_survival = 1.0, mean_survival = 0.0;
    uint64_t rotations = 0, migrations = 0, packets = 0, nanos = 0;
    for (uint64_t seed : kSeeds) {
      const SurvivalResult r = run_survival(seed);
      min_survival = std::min(min_survival, r.survival());
      mean_survival += r.survival() / kSeedCount;
      rotations += r.rotations;
      migrations += r.migrations;
      packets += r.packets;
      nanos += r.total_nanos;
    }
    bench::BenchRecord record;
    record.name = "quic_migration_survival";
    record.config["seeds"] = static_cast<uint64_t>(kSeedCount);
    record.config["min_survival"] = min_survival;
    record.config["mean_survival"] = mean_survival;
    record.config["rotations"] = rotations;
    record.config["migrations"] = migrations;
    record.ns_per_op = static_cast<double>(nanos) / packets;
    record.ops_per_sec = record.ns_per_op > 0 ? 1e9 / record.ns_per_op : 0;
    std::printf("%-24s min=%.4f mean=%.4f rotations=%llu migrations=%llu  "
                "%.0f pkt/s\n",
                "quic_migration_survival", min_survival, mean_survival,
                static_cast<unsigned long long>(rotations),
                static_cast<unsigned long long>(migrations),
                record.ops_per_sec);
    records.push_back(std::move(record));
  }

  // --- DPI collapse: encrypted vs cleartext control ---
  for (const bool cleartext : {false, true}) {
    double min_acc = 1.0, max_acc = 0.0, mean_acc = 0.0;
    uint64_t packets = 0, nanos = 0;
    for (uint64_t seed : kSeeds) {
      const DpiResult r = run_dpi(seed, cleartext);
      min_acc = std::min(min_acc, r.accuracy());
      max_acc = std::max(max_acc, r.accuracy());
      mean_acc += r.accuracy() / kSeedCount;
      packets += r.total;
      nanos += r.total_nanos;
    }
    bench::BenchRecord record;
    record.name = cleartext ? "dpi_cleartext" : "dpi_encrypted";
    record.config["seeds"] = static_cast<uint64_t>(kSeedCount);
    record.config["min_accuracy"] = min_acc;
    record.config["max_accuracy"] = max_acc;
    record.config["mean_accuracy"] = mean_acc;
    record.ns_per_op = static_cast<double>(nanos) / packets;
    record.ops_per_sec = record.ns_per_op > 0 ? 1e9 / record.ns_per_op : 0;
    std::printf("%-24s mean=%.4f [%.4f, %.4f]  %.0f pkt/s\n",
                record.name.c_str(), mean_acc, min_acc, max_acc,
                record.ops_per_sec);
    records.push_back(std::move(record));
  }

  // --- steering stability: affinity vs flow hash ---
  {
    double affinity = 0.0, flowhash = 0.0;
    for (uint64_t seed : kSeeds) {
      affinity += run_steering(
                      seed, dataplane::DispatchPolicy::kDescriptorAffinity) /
                  kSeedCount;
      flowhash +=
          run_steering(seed, dataplane::DispatchPolicy::kFlowHash) /
          kSeedCount;
    }
    bench::BenchRecord record;
    record.name = "quic_steering";
    record.config["seeds"] = static_cast<uint64_t>(kSeedCount);
    record.config["affinity_stable"] = affinity;
    record.config["flowhash_stable"] = flowhash;
    std::printf("%-24s affinity=%.3f flowhash=%.3f (fraction of "
                "connections on one shard)\n",
                "quic_steering", affinity, flowhash);
    records.push_back(std::move(record));
  }

  // --- threaded ingest throughput + leak gate ---
  {
    const IngestResult r = run_ingest(7, 4);
    bench::BenchRecord record;
    record.name = "quic_runtime_ingest";
    record.config["workers"] = static_cast<uint64_t>(4);
    record.config["packets"] = r.packets;
    record.config["processed"] = r.processed;
    record.config["shed"] = r.shed;
    record.config["ledger_ok"] = r.ledger_ok;
    record.config["arena_outstanding"] = r.outstanding;
    record.config["survival"] =
        r.post_handshake > 0
            ? static_cast<double>(r.survived) /
                  static_cast<double>(r.post_handshake)
            : 0.0;
    record.ns_per_op = r.packets > 0
                           ? static_cast<double>(r.wall_nanos) / r.packets
                           : 0;
    record.ops_per_sec = record.ns_per_op > 0 ? 1e9 / record.ns_per_op : 0;
    std::printf("%-24s %.0f pkt/s ledger=%s outstanding=%llu\n",
                "quic_runtime_ingest", record.ops_per_sec,
                r.ledger_ok ? "ok" : "BROKEN",
                static_cast<unsigned long long>(r.outstanding));
    if (r.outstanding != 0 || !r.ledger_ok) leak = true;
    records.push_back(std::move(record));
  }

  if (!json_path.empty() &&
      !bench::write_bench_json(json_path, "ablation_quic", records)) {
    return 1;
  }
  if (leak) {
    std::fprintf(stderr, "ablation_quic: arena leak or ledger imbalance\n");
    return 1;
  }
  return 0;
}
