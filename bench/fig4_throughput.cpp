// Figure 4 — "Matching performance for a Click-DPDK based cookie
// middlebox." The paper drives its middlebox with MoonGen at packet
// sizes {64..1500} and flow lengths {10, 50, 100} packets, with 100K
// cookie descriptors installed and one cookie per flow, and reports
// forwarding throughput in Gb/s.
//
// Here the same experiment runs against our software Middlebox: the
// PacketGenerator pre-builds cookie-bearing flows, the benchmark times
// Middlebox::process over the batch, and throughput = modeled wire
// bits / elapsed time. Absolute Gb/s differ from the paper's DPDK
// testbed; the shape is the reproduction target — bigger packets and
// longer flows amortize the per-flow cookie verification, small
// packets/flows drop below line rate.
//
// The paper's headroom claim is checked by the "campus" benchmark: the
// university trace needs at most 442 new flows/s (p99); the middlebox
// sustains orders of magnitude more.
#include <benchmark/benchmark.h>

#include <memory>

#include "dataplane/middlebox.h"
#include "util/clock.h"
#include "workload/packet_gen.h"
#include "workload/trace.h"

namespace {

using nnn::dataplane::Middlebox;
using nnn::dataplane::ServiceRegistry;
using nnn::workload::PacketGenerator;

/// Shared fixture state: building 100K descriptors takes a moment, so
/// it is done once per (transport) configuration and reused.
struct Setup {
  // Manual time, advanced per batch: cookie timestamps stay fresh and
  // the flow table's idle expiry works, so the benchmark measures
  // steady state rather than an ever-growing table (a real deployment
  // ages flows out continuously).
  nnn::util::ManualClock clock{1000 * nnn::util::kSecond};
  nnn::cookies::CookieVerifier verifier{clock};
  ServiceRegistry registry;
  std::unique_ptr<PacketGenerator> generator;
  std::unique_ptr<Middlebox> middlebox;

  Setup(uint32_t packet_size, uint32_t packets_per_flow,
        size_t descriptors) {
    registry.bind("Boost", nnn::dataplane::PriorityAction{0});
    PacketGenerator::Config config;
    config.packet_size = packet_size;
    config.packets_per_flow = packets_per_flow;
    config.descriptors = descriptors;
    generator = std::make_unique<PacketGenerator>(config, clock, verifier,
                                                  12345);
    middlebox = std::make_unique<Middlebox>(clock, verifier, registry);
  }
};

void BM_Fig4_Matching(benchmark::State& state) {
  const uint32_t packet_size = static_cast<uint32_t>(state.range(0));
  const uint32_t packets_per_flow = static_cast<uint32_t>(state.range(1));
  // 100K descriptors as in the paper; scale the in-flight batch so
  // each iteration touches fresh flows.
  static constexpr size_t kDescriptors = 100'000;
  Setup setup(packet_size, packets_per_flow, kDescriptors);

  const size_t flows_per_batch = 2048 / packets_per_flow * 10 + 64;
  uint64_t packets = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    setup.clock.advance(2 * nnn::util::kSecond);
    auto batch = setup.generator->make_batch(flows_per_batch);
    state.ResumeTiming();
    for (auto& packet : batch) {
      benchmark::DoNotOptimize(setup.middlebox->process(packet));
      ++packets;
      bytes += packet.size();
    }
  }
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(packets),
                         benchmark::Counter::kIsRate);
  state.counters["Gb/s"] = benchmark::Counter(
      static_cast<double>(bytes) * 8 / 1e9, benchmark::Counter::kIsRate);
  state.counters["new_flows/s"] = benchmark::Counter(
      static_cast<double>(packets) / packets_per_flow,
      benchmark::Counter::kIsRate);
}

// The paper's grid: packet sizes 64..1500 x 10/50/100-packet flows.
BENCHMARK(BM_Fig4_Matching)
    ->ArgNames({"pkt_bytes", "pkts_per_flow"})
    ->Args({64, 10})
    ->Args({64, 50})
    ->Args({64, 100})
    ->Args({256, 10})
    ->Args({256, 50})
    ->Args({256, 100})
    ->Args({512, 10})
    ->Args({512, 50})
    ->Args({512, 100})
    ->Args({1024, 10})
    ->Args({1024, 50})
    ->Args({1024, 100})
    ->Args({1500, 10})
    ->Args({1500, 50})
    ->Args({1500, 100})
    ->Unit(benchmark::kMillisecond);

/// Campus-trace headroom: replay the synthetic university workload's
/// arrival mix (median 50-packet flows) and report sustained new-flow
/// rate vs the trace's p99 requirement of 442 fps.
void BM_Fig4_CampusHeadroom(benchmark::State& state) {
  Setup setup(512, 50, 100'000);
  uint64_t flows = 0;
  for (auto _ : state) {
    state.PauseTiming();
    setup.clock.advance(2 * nnn::util::kSecond);
    auto batch = setup.generator->make_batch(512);
    state.ResumeTiming();
    for (auto& packet : batch) {
      benchmark::DoNotOptimize(setup.middlebox->process(packet));
    }
    flows += 512;
  }
  state.counters["new_flows/s"] = benchmark::Counter(
      static_cast<double>(flows), benchmark::Counter::kIsRate);
  state.counters["trace_p99_required"] = 442;
}
BENCHMARK(BM_Fig4_CampusHeadroom)->Unit(benchmark::kMillisecond);

}  // namespace
