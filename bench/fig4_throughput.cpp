// Figure 4 — "Matching performance for a Click-DPDK based cookie
// middlebox." The paper drives its middlebox with MoonGen at packet
// sizes {64..1500} and flow lengths {10, 50, 100} packets, with 100K
// cookie descriptors installed and one cookie per flow, and reports
// forwarding throughput in Gb/s.
//
// Here the same experiment runs against the production ingestion path:
// packets are built in arena slots (Dataplane::make_packet +
// PacketGenerator::fill_next) and pushed through Dataplane::ingest,
// so the measured rate includes steering, the worker rings, and
// batch verification — the whole §4.6 middlebox, not just the
// matching core. Absolute Gb/s differ from the paper's DPDK testbed;
// the shape is the reproduction target — bigger packets and longer
// flows amortize the per-flow cookie verification, small packets/flows
// drop below line rate.
//
// The paper's headroom claim is checked by the "campus" benchmark: the
// university trace needs at most 442 new flows/s (p99); the dataplane
// sustains orders of magnitude more.
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "dataplane/service_registry.h"
#include "runtime/dataplane.h"
#include "util/clock.h"
#include "workload/packet_gen.h"

namespace {

using nnn::runtime::Dataplane;
using nnn::runtime::PacketHandle;
using nnn::workload::PacketGenerator;

/// Shared fixture state: building 100K descriptors takes a moment, so
/// it is done once per configuration and reused.
struct Setup {
  nnn::util::SystemClock clock;
  nnn::cookies::CookieVerifier staging{clock};
  nnn::dataplane::ServiceRegistry registry;
  std::unique_ptr<PacketGenerator> generator;
  std::unique_ptr<Dataplane> plane;

  Setup(uint32_t packet_size, uint32_t packets_per_flow,
        size_t descriptors) {
    registry.bind("Boost", nnn::dataplane::PriorityAction{0});
    PacketGenerator::Config config;
    config.packet_size = packet_size;
    config.packets_per_flow = packets_per_flow;
    config.descriptors = descriptors;
    generator = std::make_unique<PacketGenerator>(config, clock, staging,
                                                  12345);
    Dataplane::Config plane_config;
    plane_config.pool.workers = 4;
    plane_config.pool.ring_capacity = 4096;
    plane_config.pool.batch_size = 32;
    plane = std::make_unique<Dataplane>(clock, registry, plane_config);
    for (const auto& d : generator->descriptors()) {
      plane->add_descriptor(d);
    }
    plane->start();
  }
  ~Setup() { plane->stop(); }

  /// Build the next workload packet in an arena slot and ingest it
  /// (closed loop — waits out transient arena/ring pressure).
  uint64_t ingest_next() {
    PacketHandle handle = plane->make_packet();
    while (!handle) {  // workers are draining slots; wait for one
      std::this_thread::yield();
      handle = plane->make_packet();
    }
    generator->fill_next(*handle);
    const uint64_t wire_bytes = handle->size();
    plane->ingest_blocking(std::move(handle));
    return wire_bytes;
  }
};

void BM_Fig4_Matching(benchmark::State& state) {
  const uint32_t packet_size = static_cast<uint32_t>(state.range(0));
  const uint32_t packets_per_flow = static_cast<uint32_t>(state.range(1));
  // 100K descriptors as in the paper; scale the in-flight batch so
  // each iteration touches fresh flows.
  static constexpr size_t kDescriptors = 100'000;
  Setup setup(packet_size, packets_per_flow, kDescriptors);

  const size_t flows_per_batch = 2048 / packets_per_flow * 10 + 64;
  uint64_t packets = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    const uint64_t batch_packets =
        static_cast<uint64_t>(flows_per_batch) * packets_per_flow;
    for (uint64_t i = 0; i < batch_packets; ++i) {
      bytes += setup.ingest_next();
    }
    // Completion, inside the timed region: throughput means packets
    // *verified and emitted*, not packets parked in a ring.
    setup.plane->drain();
    packets += batch_packets;
  }
  state.counters["pkts/s"] =
      benchmark::Counter(static_cast<double>(packets),
                         benchmark::Counter::kIsRate);
  state.counters["Gb/s"] = benchmark::Counter(
      static_cast<double>(bytes) * 8 / 1e9, benchmark::Counter::kIsRate);
  state.counters["new_flows/s"] = benchmark::Counter(
      static_cast<double>(packets) / packets_per_flow,
      benchmark::Counter::kIsRate);
}

// The paper's grid: packet sizes 64..1500 x 10/50/100-packet flows.
BENCHMARK(BM_Fig4_Matching)
    ->ArgNames({"pkt_bytes", "pkts_per_flow"})
    ->Args({64, 10})
    ->Args({64, 50})
    ->Args({64, 100})
    ->Args({256, 10})
    ->Args({256, 50})
    ->Args({256, 100})
    ->Args({512, 10})
    ->Args({512, 50})
    ->Args({512, 100})
    ->Args({1024, 10})
    ->Args({1024, 50})
    ->Args({1024, 100})
    ->Args({1500, 10})
    ->Args({1500, 50})
    ->Args({1500, 100})
    ->Unit(benchmark::kMillisecond);

/// Campus-trace headroom: replay the synthetic university workload's
/// arrival mix (median 50-packet flows) and report sustained new-flow
/// rate vs the trace's p99 requirement of 442 fps.
void BM_Fig4_CampusHeadroom(benchmark::State& state) {
  Setup setup(512, 50, 100'000);
  uint64_t flows = 0;
  for (auto _ : state) {
    constexpr uint64_t kFlows = 512;
    for (uint64_t i = 0; i < kFlows * 50; ++i) {
      setup.ingest_next();
    }
    setup.plane->drain();
    flows += kFlows;
  }
  state.counters["new_flows/s"] = benchmark::Counter(
      static_cast<double>(flows), benchmark::Counter::kIsRate);
  state.counters["trace_p99_required"] = 442;
}
BENCHMARK(BM_Fig4_CampusHeadroom)->Unit(benchmark::kMillisecond);

}  // namespace
