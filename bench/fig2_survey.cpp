// Figure 2 — "If you could choose a single application to not count
// against your data caps, which one would you choose?" Regenerates
// the 1,000-smartphone-user survey: the per-app preference histogram
// (heavy tail over 106 apps), the category and popularity breakdown
// tables, and the coverage of existing zero-rating programs
// (Wikipedia-Zero 0.4%, Music Freedom 11.5%, ...).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "studies/survey.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  nnn::studies::SurveyModel model({}, seed);
  const auto summary = nnn::studies::SurveyModel::summarize(model.run());

  std::printf("=== Figure 2: zero-rating preferences "
              "(1,000 smartphone users) ===\n");
  std::printf("seed: %llu\n\n", static_cast<unsigned long long>(seed));
  std::printf("respondents              : %zu\n", summary.respondents);
  std::printf("interested in zero-rating: %zu (%.0f%%; paper: 65%%)\n",
              summary.interested,
              100.0 * summary.interested / summary.respondents);
  std::printf("distinct apps named      : %zu (catalog: 106)\n\n",
              summary.distinct_apps);

  // Top of the histogram (the figure's left side).
  std::vector<std::pair<std::string, size_t>> ranked(
      summary.per_app.begin(), summary.per_app.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  std::printf("%-20s %8s\n", "app", "# users");
  for (size_t i = 0; i < std::min<size_t>(20, ranked.size()); ++i) {
    std::printf("%-20s %8zu\n", ranked[i].first.c_str(),
                ranked[i].second);
  }
  const size_t singletons = std::count_if(
      ranked.begin(), ranked.end(),
      [](const auto& entry) { return entry.second == 1; });
  std::printf("... long tail: %zu apps named by exactly one user\n\n",
              singletons);

  std::printf("--- category breakdown (paper table, left) ---\n");
  std::printf("%-14s %10s\n", "category", "# prefs");
  for (const auto& [category, count] : summary.category_table) {
    std::printf("%-14s %10zu\n",
                nnn::workload::to_string(category).c_str(), count);
  }
  std::printf("\n--- popularity breakdown (paper table, right) ---\n");
  std::printf("%-14s %10s\n", "installs", "# prefs");
  for (const auto& [bucket, count] : summary.popularity_table) {
    std::printf("%-14s %10zu\n",
                nnn::workload::to_string(bucket).c_str(), count);
  }

  std::printf("\n--- zero-rating program coverage of preferences ---\n");
  std::printf("%-22s %10s %10s\n", "program", "paper", "measured");
  const auto coverage = [&](const char* program) {
    const auto it = summary.program_coverage.find(program);
    return it == summary.program_coverage.end() ? 0.0 : it->second * 100;
  };
  std::printf("%-22s %10s %9.1f%%\n", "Music Freedom", "11.5%",
              coverage("Music Freedom"));
  std::printf("%-22s %10s %9.1f%%\n", "Wikipedia-Zero", "0.4%",
              coverage("Wikipedia-Zero"));
  std::printf("%-22s %10s %9.1f%%\n", "Facebook-Zero", "-",
              coverage("Facebook-Zero"));
  std::printf("%-22s %10s %9.1f%%\n", "Netflix-Australia", "-",
              coverage("Netflix-Australia"));

  // The companion music-only zero-rating survey (§2 / ref [12]): 51
  // unique music applications named; Music Freedom covered 17.
  const auto& music = nnn::workload::music_survey_catalog();
  size_t covered = 0;
  for (const auto& app : music) {
    for (const auto program : app.covered_by) {
      if (program == nnn::workload::ZeroRatingProgram::kMusicFreedom) {
        ++covered;
      }
    }
  }
  std::printf("\n--- music-only survey (ref [12]) ---\n");
  std::printf("%-40s %8s %10s\n", "metric", "paper", "measured");
  std::printf("%-40s %8s %7zu/%zu\n",
              "music apps covered by Music Freedom", "17/51", covered,
              music.size());
  return 0;
}
