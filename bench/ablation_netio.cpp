// Connection scaling for the netio edge (ISSUE 6 acceptance): one
// TcpServer on one event-loop thread versus a client herd. Three
// phases:
//
//   storm   a small pool of persistent connections hammers heartbeat
//           polls back-to-back: per-request latency under contention
//           (mean / p50 / p99) and requests/sec.
//   scale   `conns` concurrent sync clients (default 10,000) connect
//           in waves, take a full snapshot each, then run heartbeat
//           rounds: p99 heartbeat latency at scale plus the server
//           process max-RSS, the bounded-memory evidence.
//   herd    every client is severed at once and reconnects into an
//           injected accept-stall window — the post-outage thundering
//           herd. Reported: wall time until the whole herd is
//           resynced, and whether a real SyncClient (running through
//           all three phases over a TcpSyncTransport) ever opened its
//           breaker. The acceptance bar is <= 1 open, ending closed.
//
// Process model: the scale/herd client herd forks into worker
// processes (the server side alone needs one fd per connection, and a
// 10k herd would need BOTH sides — 20k+ fds — in one process, past
// common RLIMIT_NOFILE hard caps). The parent keeps the server, the
// sidecar SyncClient, and the storm herd; children each drive
// conns/K raw sockets and report latencies over a pipe. Children are
// forked BEFORE the event-loop thread starts, so fork never races a
// running thread. Max-RSS is therefore the server process alone.
//
// The herd clients are deliberately NOT SyncClient instances: 10k of
// those would measure the client library. Each herd slot is a
// nonblocking socket, a read buffer, and a version counter — just
// enough protocol to sync and poll, so the server side is what is
// being measured.
//
// `--json BENCH_netio.json` emits one record per measurement; the CI
// smoke job gates on netio/scale/heartbeat_p99.
#include <csignal>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "controlplane/descriptor_log.h"
#include "controlplane/messages.h"
#include "controlplane/sync_client.h"
#include "controlplane/sync_server.h"
#include "controlplane/table_mirror.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "net/wire.h"
#include "netio/event_loop.h"
#include "netio/socket.h"
#include "netio/sync_endpoint.h"
#include "netio/sync_transport.h"
#include "netio/transport.h"
#include "telemetry/metrics.h"
#include "util/clock.h"

namespace {

using nnn::util::kMillisecond;
using nnn::util::kSecond;
using nnn::util::Timestamp;

nnn::cookies::CookieDescriptor make_descriptor(nnn::cookies::CookieId id) {
  nnn::cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(0x40 + (id & 0x3f)));
  d.service_data = "Boost";
  return d;
}

double percentile(std::vector<double>& sorted_inout, double p) {
  if (sorted_inout.empty()) return 0;
  std::sort(sorted_inout.begin(), sorted_inout.end());
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_inout.size() - 1));
  return sorted_inout[idx];
}

double maxrss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB -> MiB
}

/// One herd slot: a nonblocking socket plus the minimum protocol state
/// to sync against the descriptor log and poll heartbeats.
struct HerdConn {
  int fd = -1;
  uint64_t client_id = 0;
  uint64_t version = 0;     // 0 = not yet synced
  bool connected = false;   // connect() resolved
  bool awaiting = false;    // request in flight
  Timestamp sent_at = 0;
  nnn::util::Bytes in;
  size_t consumed = 0;
  uint64_t reconnects = 0;
};

/// Raw-epoll client herd. Single-threaded: every method runs on the
/// caller's thread; the server's event loop is in another process or
/// thread.
class Herd {
 public:
  Herd(const nnn::util::Clock& clock, uint16_t port, size_t n,
       uint64_t id_base)
      : clock_(clock), port_(port), conns_(n) {
    epoll_fd_ = ::epoll_create1(0);
    for (size_t i = 0; i < n; ++i) conns_[i].client_id = id_base + i;
  }
  ~Herd() {
    for (auto& c : conns_) {
      if (c.fd >= 0) ::close(c.fd);
    }
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  size_t size() const { return conns_.size(); }
  uint64_t total_reconnects() const {
    uint64_t n = 0;
    for (const auto& c : conns_) n += c.reconnects;
    return n;
  }

  /// Start (or restart) the connect of slots [first, first+count).
  void connect_range(size_t first, size_t count) {
    for (size_t i = first; i < first + count && i < conns_.size(); ++i) {
      open_slot(i);
    }
  }

  /// Sever every connection at once (the client side of an outage).
  void sever_all() {
    for (size_t i = 0; i < conns_.size(); ++i) {
      close_slot(i);
      conns_[i].version = 0;
    }
  }

  /// Queue a poll on every connected, idle slot. Latency samples for
  /// completed polls land in `latencies_us`.
  size_t send_polls() {
    size_t sent = 0;
    for (auto& c : conns_) {
      if (c.connected && !c.awaiting && c.fd >= 0) {
        send_request(c);
        ++sent;
      }
    }
    return sent;
  }

  /// One bounded epoll slice: resolve connects, read replies, kick the
  /// initial sync request on freshly connected slots.
  void pump(int timeout_ms) {
    for (size_t i = 0; i < conns_.size(); ++i) {
      auto& c = conns_[i];
      if (c.connected && !c.awaiting && c.version == 0 && c.fd >= 0) {
        send_request(c);  // initial snapshot pull
      }
    }
    epoll_event events[512];
    const int n = ::epoll_wait(epoll_fd_, events, 512, timeout_ms);
    for (int i = 0; i < n; ++i) {
      const size_t idx = events[i].data.u32;
      auto& c = conns_[idx];
      if (c.fd < 0) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        open_slot(idx);  // severed (reset / shed): reconnect the slot
        continue;
      }
      if (!c.connected && (events[i].events & EPOLLOUT)) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0) {
          open_slot(idx);
          continue;
        }
        c.connected = true;
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u32 = static_cast<uint32_t>(idx);
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c.fd, &ev);
        continue;
      }
      if (events[i].events & EPOLLIN) {
        if (!read_slot(idx)) open_slot(idx);
      }
    }
  }

  size_t synced() const {
    size_t n = 0;
    for (const auto& c : conns_) n += c.version > 0 ? 1 : 0;
    return n;
  }
  size_t awaiting() const {
    size_t n = 0;
    for (const auto& c : conns_) n += c.awaiting ? 1 : 0;
    return n;
  }

  std::vector<double> latencies_us;

 private:
  void open_slot(size_t idx) {
    auto& c = conns_[idx];
    if (c.fd >= 0) {
      close_slot(idx);
      ++c.reconnects;
    }
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (c.fd < 0) return;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    const int rc =
        ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(c.fd);
      c.fd = -1;
      return;
    }
    epoll_event ev{};
    ev.events = EPOLLOUT | EPOLLIN;
    ev.data.u32 = static_cast<uint32_t>(idx);
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, c.fd, &ev);
  }

  void close_slot(size_t idx) {
    auto& c = conns_[idx];
    if (c.fd >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c.fd, nullptr);
      ::close(c.fd);
      c.fd = -1;
    }
    c.connected = false;
    c.awaiting = false;
    c.in.clear();
    c.consumed = 0;
  }

  void send_request(HerdConn& c) {
    const nnn::util::Bytes request =
        nnn::controlplane::encode(nnn::controlplane::Message(
            nnn::controlplane::SyncRequest{c.client_id, c.version}));
    // 24 bytes: fits the socket buffer or the connection is hosed
    // anyway — a short write abandons the slot to reconnect.
    const ssize_t n =
        ::send(c.fd, request.data(), request.size(), MSG_NOSIGNAL);
    if (n != static_cast<ssize_t>(request.size())) return;
    c.awaiting = true;
    c.sent_at = clock_.now();
  }

  /// Drain the socket; decode every complete frame. False = dead.
  bool read_slot(size_t idx) {
    auto& c = conns_[idx];
    uint8_t buf[16 * 1024];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.in.insert(c.in.end(), buf, buf + n);
        continue;
      }
      if (n == 0) return false;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    for (;;) {
      const nnn::util::BytesView pending(c.in.data() + c.consumed,
                                         c.in.size() - c.consumed);
      const auto probe = nnn::net::peek_sync_frame(pending);
      if (!probe) return false;  // poisoned stream
      if (!*probe || pending.size() < **probe) break;
      const auto message =
          nnn::controlplane::decode(pending.first(**probe));
      c.consumed += **probe;
      if (message) apply(c, *message);
    }
    if (c.consumed == c.in.size()) {
      c.in.clear();
      c.consumed = 0;
    }
    return true;
  }

  void apply(HerdConn& c, const nnn::controlplane::Message& message) {
    if (const auto* snap =
            std::get_if<nnn::controlplane::SnapshotMessage>(&message)) {
      c.version = snap->version;
    } else if (const auto* delta =
                   std::get_if<nnn::controlplane::DeltaMessage>(&message)) {
      c.version = delta->to_version;
    } else if (const auto* hb =
                   std::get_if<nnn::controlplane::HeartbeatMessage>(
                       &message)) {
      c.version = std::max(c.version, hb->version);
    } else {
      return;  // a stray request echo: not a reply
    }
    if (c.awaiting) {
      c.awaiting = false;
      latencies_us.push_back(static_cast<double>(clock_.now() - c.sent_at));
    }
  }

  const nnn::util::Clock& clock_;
  uint16_t port_;
  int epoll_fd_ = -1;
  std::vector<HerdConn> conns_;
};

bool pump_until(Herd& herd, const std::function<bool()>& done,
                Timestamp deadline, const nnn::util::Clock& clock,
                const std::function<void()>& tick) {
  while (clock.now() < deadline) {
    if (done()) return true;
    herd.pump(/*timeout_ms=*/10);
    if (tick) tick();
  }
  return done();
}

// --- Fork-based herd workers ----------------------------------------
//
// Pipe protocol, parent -> child: one command byte.
//   'S'  connect all slots in waves and sync each to a snapshot
//   'P'  one heartbeat poll round across all slots
//   'H'  sever everything, reconnect all at once, resync (the herd)
//   'Q'  exit
// Child -> parent, after each command: u64 word count, then that many
// 8-byte words (doubles or u64s, command-specific — see replies below).

bool write_all(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool read_all(int fd, void* data, size_t len) {
  char* p = static_cast<char*>(data);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

[[noreturn]] void herd_worker(uint16_t port, size_t slots, uint64_t id_base,
                              int cmd_fd, int res_fd) {
  nnn::util::SystemClock clock;
  Herd herd(clock, port, slots, id_base);
  const auto reply = [&](const std::vector<uint64_t>& words) {
    const uint64_t n = words.size();
    if (!write_all(res_fd, &n, sizeof(n)) ||
        !write_all(res_fd, words.data(), n * sizeof(uint64_t))) {
      std::_Exit(2);
    }
  };
  for (;;) {
    char cmd = 0;
    if (!read_all(cmd_fd, &cmd, 1)) std::_Exit(2);
    switch (cmd) {
      case 'S': {
        const size_t wave = 512;
        for (size_t first = 0; first < slots; first += wave) {
          herd.connect_range(first, wave);
          pump_until(herd,
                     [&] {
                       return herd.synced() >=
                              std::min(first + wave, slots);
                     },
                     clock.now() + 10 * kSecond, clock, nullptr);
        }
        reply({herd.synced()});
        break;
      }
      case 'P': {
        herd.latencies_us.clear();
        herd.send_polls();
        pump_until(herd, [&] { return herd.awaiting() == 0; },
                   clock.now() + 30 * kSecond, clock, nullptr);
        std::vector<uint64_t> words(herd.latencies_us.size());
        std::memcpy(words.data(), herd.latencies_us.data(),
                    words.size() * sizeof(uint64_t));
        reply(words);
        break;
      }
      case 'H': {
        herd.sever_all();
        herd.connect_range(0, slots);  // everyone at once
        pump_until(herd, [&] { return herd.synced() == slots; },
                   clock.now() + 60 * kSecond, clock, nullptr);
        reply({herd.synced(), herd.total_reconnects()});
        break;
      }
      case 'Q':
      default:
        std::_Exit(cmd == 'Q' ? 0 : 2);
    }
  }
}

struct Worker {
  pid_t pid = -1;
  int cmd_fd = -1;  // parent writes commands here
  int res_fd = -1;  // parent reads replies here (nonblocking)
  size_t slots = 0;
};

/// Broadcast one command and gather every worker's word-vector reply,
/// ticking the sidecar SyncClient throughout so the parent's breaker
/// probe never starves while a phase runs.
bool run_phase(std::vector<Worker>& workers, char cmd,
               std::vector<std::vector<uint64_t>>& replies,
               const std::function<void()>& tick, Timestamp deadline,
               const nnn::util::Clock& clock) {
  for (auto& w : workers) {
    if (!write_all(w.cmd_fd, &cmd, 1)) return false;
  }
  replies.assign(workers.size(), {});
  struct State {
    std::vector<char> buf;
    size_t have = 0;
    bool header_done = false;
    uint64_t words = 0;
    bool done = false;
  };
  std::vector<State> states(workers.size());
  for (auto& s : states) s.buf.resize(sizeof(uint64_t));
  size_t remaining = workers.size();
  while (remaining > 0 && clock.now() < deadline) {
    bool progressed = false;
    for (size_t i = 0; i < workers.size(); ++i) {
      auto& s = states[i];
      if (s.done) continue;
      const ssize_t n = ::read(workers[i].res_fd, s.buf.data() + s.have,
                               s.buf.size() - s.have);
      if (n > 0) {
        s.have += static_cast<size_t>(n);
        progressed = true;
      } else if (n == 0) {
        return false;  // worker died
      } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
        return false;
      }
      if (s.have < s.buf.size()) continue;
      if (!s.header_done) {
        std::memcpy(&s.words, s.buf.data(), sizeof(uint64_t));
        s.header_done = true;
        s.have = 0;
        s.buf.resize(s.words * sizeof(uint64_t));
        if (s.words != 0) continue;
      }
      replies[i].resize(s.words);
      std::memcpy(replies[i].data(), s.buf.data(),
                  s.words * sizeof(uint64_t));
      s.done = true;
      --remaining;
    }
    if (tick) tick();
    if (!progressed) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  return remaining == 0;
}

std::vector<double> as_doubles(const std::vector<std::vector<uint64_t>>& rs) {
  std::vector<double> out;
  for (const auto& r : rs) {
    const size_t base = out.size();
    out.resize(base + r.size());
    std::memcpy(out.data() + base, r.data(), r.size() * sizeof(uint64_t));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = nnn::bench::strip_json_flag(argc, argv);
  size_t conns = 10'000;
  size_t storm_conns = 64;
  size_t storm_rounds = 50;
  size_t scale_rounds = 3;
  size_t herd_workers = 4;
  if (argc > 1) conns = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) storm_rounds = static_cast<size_t>(std::atoll(argv[2]));
  std::signal(SIGPIPE, SIG_IGN);

  // The parent holds only the SERVER side of the herd (children hold
  // the client side), so it needs ~conns fds plus margin.
  const uint64_t fds = nnn::netio::raise_fd_limit(conns + 8192);
  if (fds < conns + 512) {
    const size_t fit =
        static_cast<size_t>(fds > 8192 ? fds - 4096 : 2048);
    std::fprintf(stderr,
                 "fd limit %llu too low for %zu conns; scaling down to "
                 "%zu\n",
                 static_cast<unsigned long long>(fds), conns, fit);
    conns = fit;
  }

  nnn::util::SystemClock clock;
  nnn::telemetry::Registry registry;
  nnn::fault::Injector injector(registry);

  nnn::controlplane::DescriptorLog log;
  for (nnn::cookies::CookieId id = 1; id <= 50; ++id) {
    log.append_add(make_descriptor(id));
  }
  nnn::controlplane::SyncServer server(log);

  nnn::netio::EventLoop loop(clock);
  nnn::netio::TcpServer::Config config;
  config.name = "bench";
  config.listener.backlog = 4096;
  config.max_connections = conns + 256;
  config.limits.idle_timeout = 60 * kSecond;
  config.limits.handshake_timeout = 30 * kSecond;
  auto tcp = nnn::netio::TcpServer::create(
      loop, config, nnn::netio::sync_protocol(server), &injector, registry);
  if (!tcp.has_value()) {
    std::fprintf(stderr, "listen failed: %s\n",
                 nnn::to_string(tcp.error()).c_str());
    return 1;
  }
  const uint16_t port = (*tcp)->port();

  // Fork the herd workers BEFORE any thread exists: fork() only
  // carries the calling thread into the child, so forking later could
  // strand a lock the loop thread holds.
  std::vector<Worker> workers(herd_workers);
  {
    size_t assigned = 0;
    for (size_t i = 0; i < herd_workers; ++i) {
      const size_t slots = i + 1 == herd_workers
                               ? conns - assigned
                               : conns / herd_workers;
      int cmd[2];
      int res[2];
      if (::pipe(cmd) != 0 || ::pipe(res) != 0) {
        std::perror("pipe");
        return 1;
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        std::perror("fork");
        return 1;
      }
      if (pid == 0) {
        ::close(cmd[1]);
        ::close(res[0]);
        herd_worker(port, slots, 10'000 + assigned, cmd[0], res[1]);
      }
      ::close(cmd[0]);
      ::close(res[1]);
      ::fcntl(res[0], F_SETFL, O_NONBLOCK);
      workers[i] = Worker{pid, cmd[1], res[0], slots};
      assigned += slots;
    }
  }

  std::thread loop_thread([&] { loop.run(); });

  // The sidecar: one real SyncClient over the socket transport, alive
  // through every phase. Its breaker is the ISSUE's flap probe.
  nnn::netio::TcpSyncTransport::Config tcfg;
  tcfg.port = port;
  tcfg.reconnect_interval = 50 * kMillisecond;
  nnn::netio::TcpSyncTransport transport(loop, tcfg);
  nnn::controlplane::TablePublisher tables;
  nnn::controlplane::SyncClient::Config ccfg;
  ccfg.client_id = 1;
  ccfg.poll_interval = 100 * kMillisecond;
  ccfg.response_timeout = 500 * kMillisecond;
  ccfg.backoff_base = 100 * kMillisecond;
  ccfg.backoff_max = kSecond;
  ccfg.breaker_failure_threshold = 5;
  ccfg.breaker_success_threshold = 2;
  nnn::controlplane::SyncClient sidecar(clock, tables, ccfg,
                                        transport.send_fn());
  sidecar.start();
  uint64_t breaker_opens = 0;
  auto breaker_prev = sidecar.breaker_state();
  const auto tick_sidecar = [&] {
    transport.poll(
        [&](nnn::util::BytesView d) { sidecar.on_datagram(d); });
    sidecar.tick();
    const auto state = sidecar.breaker_state();
    if (state == nnn::controlplane::BreakerState::kOpen &&
        breaker_prev != nnn::controlplane::BreakerState::kOpen) {
      ++breaker_opens;
    }
    breaker_prev = state;
  };

  std::vector<nnn::bench::BenchRecord> records;
  auto& metrics = (*tcp)->metrics();
  std::vector<std::vector<uint64_t>> replies;

  std::printf("=== netio connection scaling: epoll edge, loopback TCP ===\n");
  std::printf("50 descriptors in the log; server on one loop thread; "
              "%zu-conn herd split over %zu worker processes\n\n",
              conns, herd_workers);

  // --- Phase 1: request storm (parent-local herd) -------------------
  {
    Herd storm(clock, port, storm_conns, 100);
    storm.connect_range(0, storm_conns);
    if (!pump_until(
            storm, [&] { return storm.synced() == storm.size(); },
            clock.now() + 10 * kSecond, clock, tick_sidecar)) {
      std::fprintf(stderr, "storm herd failed to sync\n");
      return 1;
    }
    storm.latencies_us.clear();
    const Timestamp t0 = clock.now();
    for (size_t round = 0; round < storm_rounds; ++round) {
      storm.send_polls();
      if (!pump_until(storm, [&] { return storm.awaiting() == 0; },
                      clock.now() + 5 * kSecond, clock, tick_sidecar)) {
        std::fprintf(stderr, "storm round %zu stalled\n", round);
        return 1;
      }
    }
    const double elapsed_us = static_cast<double>(clock.now() - t0);
    auto lat = storm.latencies_us;
    const double total = static_cast<double>(lat.size());
    double sum = 0;
    for (const double v : lat) sum += v;
    const double mean_us = total > 0 ? sum / total : 0;
    const double p50_us = percentile(lat, 0.50);
    const double p99_us = percentile(lat, 0.99);
    const double rps = elapsed_us > 0 ? total / elapsed_us * 1e6 : 0;
    std::printf("--- storm: %zu conns x %zu rounds ---\n", storm_conns,
                storm_rounds);
    std::printf("%10.0f req/s   mean %7.1f us   p50 %7.1f us   p99 %7.1f "
                "us\n\n",
                rps, mean_us, p50_us, p99_us);
    nnn::bench::BenchRecord mean_rec;
    mean_rec.name = "netio/storm/heartbeat_mean";
    mean_rec.config["conns"] = static_cast<int64_t>(storm_conns);
    mean_rec.config["rounds"] = static_cast<int64_t>(storm_rounds);
    mean_rec.ns_per_op = mean_us * 1e3;
    mean_rec.ops_per_sec = rps;
    records.push_back(std::move(mean_rec));
    nnn::bench::BenchRecord p99_rec;
    p99_rec.name = "netio/storm/heartbeat_p99";
    p99_rec.config["conns"] = static_cast<int64_t>(storm_conns);
    p99_rec.config["rounds"] = static_cast<int64_t>(storm_rounds);
    p99_rec.ns_per_op = p99_us * 1e3;
    p99_rec.ops_per_sec = rps;
    records.push_back(std::move(p99_rec));
  }

  // --- Phase 2: concurrent-connection scale (forked herd) -----------
  {
    const double rss_before = maxrss_mb();
    const Timestamp t0 = clock.now();
    if (!run_phase(workers, 'S', replies, tick_sidecar,
                   clock.now() + 60 * kSecond, clock)) {
      std::fprintf(stderr, "scale sync phase failed\n");
      return 1;
    }
    uint64_t synced = 0;
    for (const auto& r : replies) synced += r.empty() ? 0 : r[0];
    const double sync_ms = static_cast<double>(clock.now() - t0) / 1e3;
    if (synced != conns) {
      std::fprintf(stderr, "scale: only %llu/%zu synced\n",
                   static_cast<unsigned long long>(synced), conns);
      return 1;
    }
    std::vector<double> lat;
    for (size_t round = 0; round < scale_rounds; ++round) {
      if (!run_phase(workers, 'P', replies, tick_sidecar,
                     clock.now() + 60 * kSecond, clock)) {
        std::fprintf(stderr, "scale heartbeat round %zu failed\n", round);
        return 1;
      }
      const auto batch = as_doubles(replies);
      lat.insert(lat.end(), batch.begin(), batch.end());
    }
    const double p99_us = percentile(lat, 0.99);
    const double p50_us = percentile(lat, 0.50);
    const double rss_after = maxrss_mb();
    std::printf("--- scale: %zu concurrent sync connections ---\n", conns);
    std::printf("all synced in %8.1f ms   heartbeat p50 %8.1f us   "
                "p99 %8.1f us\n",
                sync_ms, p50_us, p99_us);
    std::printf("server max RSS %8.1f MiB (%.1f before the herd; client "
                "sockets live in the worker processes)\n\n",
                rss_after, rss_before);
    nnn::bench::BenchRecord sync_rec;
    sync_rec.name = "netio/scale/sync_all";
    sync_rec.config["conns"] = static_cast<int64_t>(conns);
    sync_rec.config["sync_ms"] = sync_ms;
    sync_rec.config["maxrss_mb"] = rss_after;
    sync_rec.ns_per_op =
        conns > 0 ? sync_ms * 1e6 / static_cast<double>(conns) : 0;
    sync_rec.ops_per_sec =
        sync_ms > 0 ? static_cast<double>(conns) / sync_ms * 1e3 : 0;
    records.push_back(std::move(sync_rec));
    nnn::bench::BenchRecord p99_rec;
    p99_rec.name = "netio/scale/heartbeat_p99";
    p99_rec.config["conns"] = static_cast<int64_t>(conns);
    p99_rec.config["rounds"] = static_cast<int64_t>(scale_rounds);
    p99_rec.config["maxrss_mb"] = rss_after;
    p99_rec.ns_per_op = p99_us * 1e3;
    p99_rec.ops_per_sec = p99_us > 0 ? 1e6 / p99_us : 0;
    records.push_back(std::move(p99_rec));
  }

  // --- Phase 3: post-outage thundering herd -------------------------
  {
    // The outage: every client severed, and the listener stalled for
    // the first 200 ms of the recovery — the herd's SYNs pile into the
    // kernel backlog and land all at once when the stall lifts.
    nnn::fault::FaultPlan plan;
    nnn::fault::FaultEvent stall;
    stall.kind = nnn::fault::FaultKind::kAcceptStall;
    stall.start = clock.now() + 10 * kMillisecond;
    stall.duration = 200 * kMillisecond;
    plan.add(stall);
    injector.arm(plan, 1);

    const Timestamp t0 = clock.now();
    if (!run_phase(workers, 'H', replies, tick_sidecar,
                   clock.now() + 120 * kSecond, clock)) {
      std::fprintf(stderr, "herd phase failed\n");
      return 1;
    }
    const double herd_ms = static_cast<double>(clock.now() - t0) / 1e3;
    injector.disarm();
    uint64_t resynced = 0;
    uint64_t reconnects = 0;
    for (const auto& r : replies) {
      resynced += r.size() > 0 ? r[0] : 0;
      reconnects += r.size() > 1 ? r[1] : 0;
    }
    if (resynced != conns) {
      std::fprintf(stderr, "herd: only %llu/%zu resynced\n",
                   static_cast<unsigned long long>(resynced), conns);
      return 1;
    }
    // Give the sidecar a quiet beat to close a half-open breaker.
    const Timestamp settle = clock.now() + 2 * kSecond;
    while (clock.now() < settle &&
           sidecar.breaker_state() !=
               nnn::controlplane::BreakerState::kClosed) {
      tick_sidecar();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    const bool breaker_closed =
        sidecar.breaker_state() == nnn::controlplane::BreakerState::kClosed;
    std::printf("--- herd: %zu clients reconnect through a 200 ms accept "
                "stall ---\n",
                conns);
    std::printf("full resync in %8.1f ms   client-observed reconnects "
                "%llu\n",
                herd_ms, static_cast<unsigned long long>(reconnects));
    std::printf("sidecar breaker: %llu open transition(s) across all "
                "phases, %s at exit (acceptance: <= 1, closed)\n\n",
                static_cast<unsigned long long>(breaker_opens),
                breaker_closed ? "closed" : "NOT closed");
    nnn::bench::BenchRecord rec;
    rec.name = "netio/herd/resync";
    rec.config["conns"] = static_cast<int64_t>(conns);
    rec.config["stall_ms"] = static_cast<int64_t>(200);
    rec.config["herd_ms"] = herd_ms;
    rec.config["breaker_opens"] = static_cast<int64_t>(breaker_opens);
    rec.config["breaker_closed"] = static_cast<int64_t>(breaker_closed);
    rec.ns_per_op =
        conns > 0 ? herd_ms * 1e6 / static_cast<double>(conns) : 0;
    rec.ops_per_sec =
        herd_ms > 0 ? static_cast<double>(conns) / herd_ms * 1e3 : 0;
    records.push_back(std::move(rec));
    if (breaker_opens > 1 || !breaker_closed) {
      std::fprintf(stderr, "breaker flapped: %llu opens, closed=%d\n",
                   static_cast<unsigned long long>(breaker_opens),
                   breaker_closed ? 1 : 0);
      return 1;
    }
  }

  std::printf("edge ledger: accepts=%llu shed=%llu closes=%llu "
              "frames=%llu resets=%llu\n",
              static_cast<unsigned long long>(metrics.accepts.value()),
              static_cast<unsigned long long>(metrics.accept_shed.value()),
              static_cast<unsigned long long>(metrics.closes.value()),
              static_cast<unsigned long long>(metrics.frames.value()),
              static_cast<unsigned long long>(metrics.resets.value()));

  for (auto& w : workers) {
    const char quit = 'Q';
    (void)write_all(w.cmd_fd, &quit, 1);
  }
  for (auto& w : workers) {
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    ::close(w.cmd_fd);
    ::close(w.res_fd);
  }

  loop.stop();
  loop_thread.join();

  if (!json_path.empty() &&
      !nnn::bench::write_bench_json(json_path, "ablation_netio", records)) {
    return 1;
  }
  return 0;
}
