// Runtime scaling (§4.6 executed): throughput of the threaded
// dataplane over 1/2/4/8 workers on the Fig. 4 campus operating point
// (512 B packets, 50-packet flows, one cookie per flow), under both
// dispatch policies.
//
// The paper: "we can use multiple cores instead of one … along with a
// load-balancer that shares the traffic among servers." Here the
// load-balancer is a real thread pushing packets through SPSC rings to
// worker threads that each own a full middlebox shard.
//
// Two throughput readings per run:
//   - wall:     packets / elapsed time on THIS machine. Only
//               meaningful as a scaling curve when the host has at
//               least as many free cores as workers.
//   - per-core: packets / max(per-worker thread-CPU time) — the
//               parallel critical path. Workers share nothing, so with
//               one dedicated core per worker elapsed ≈ max busy, and
//               this is the rate the pool sustains when the hardware
//               provides the cores. Robust to running the bench on a
//               box with fewer cores than workers (CI containers).
// The scaling table and the ISSUE acceptance gate use per-core.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "dataplane/service_registry.h"
#include "dataplane/sharding.h"
#include "runtime/dataplane.h"
#include "runtime/dispatcher.h"
#include "runtime/worker_pool.h"
#include "util/clock.h"
#include "workload/packet_gen.h"

namespace {

using nnn::dataplane::DispatchPolicy;

struct RunResult {
  size_t workers = 0;
  double wall_mpps = 0;
  double percore_mpps = 0;
  double gbps_percore = 0;
  uint64_t verified = 0;
  uint64_t bypassed = 0;
  double avg_batch = 0;
  uint64_t arena_outstanding = 0;  // leak gate: must be 0 after stop
  uint64_t arena_alloc_failures = 0;
};

RunResult run_one(DispatchPolicy policy, size_t workers, size_t flows,
                  size_t descriptors) {
  nnn::util::SystemClock clock;
  nnn::dataplane::ServiceRegistry registry;
  registry.bind("Boost", nnn::dataplane::PriorityAction{0});

  // Fig. 4 campus operating point.
  nnn::workload::PacketGenerator::Config wl;
  wl.packet_size = 512;
  wl.packets_per_flow = 50;
  wl.descriptors = descriptors;

  // The generator installs descriptors into this staging verifier; the
  // pool replicates them into every worker's own verifier.
  nnn::cookies::CookieVerifier staging(clock);
  nnn::workload::PacketGenerator generator(wl, clock, staging, 12345);

  nnn::runtime::WorkerPool::Config config;
  config.workers = workers;
  config.ring_capacity = 4096;
  config.batch_size = 32;
  nnn::runtime::WorkerPool pool(clock, registry, config);
  for (const auto& d : generator.descriptors()) pool.add_descriptor(d);

  nnn::runtime::Dispatcher dispatcher(pool, {.policy = policy});

  // Pre-build all packets outside the timed region.
  auto batch = generator.make_batch(flows);

  pool.start();
  const nnn::util::Timestamp t0 = clock.now();
  for (auto& packet : batch) {
    // Closed loop: wait for ring space rather than fail-open, so every
    // packet is actually processed and the measurement is loss-free.
    dispatcher.dispatch_blocking(std::move(packet));
  }
  dispatcher.drain();
  const nnn::util::Timestamp t1 = clock.now();
  pool.stop();

  const auto snap = pool.snapshot();
  const auto totals = snap.totals();
  RunResult r;
  r.workers = workers;
  const double wall_us = static_cast<double>(t1 - t0);
  const double critical_us = static_cast<double>(snap.max_busy_micros());
  r.wall_mpps = wall_us > 0 ? static_cast<double>(totals.packets) / wall_us
                            : 0;
  r.percore_mpps =
      critical_us > 0 ? static_cast<double>(totals.packets) / critical_us : 0;
  r.gbps_percore = critical_us > 0
                       ? static_cast<double>(totals.bytes) * 8 /
                             (critical_us * 1e3)
                       : 0;
  r.verified = pool.total_verified();
  r.bypassed = dispatcher.stats().ring_full_bypass;
  r.avg_batch = totals.avg_batch();
  return r;
}

/// The zero-copy path (PR 8): packets are built in arena slots and
/// only 4-byte handles cross the rings via Dataplane::ingest. The
/// workload is pre-generated outside the timed region (same as the
/// copy path); the timed loop moves each prebuilt packet into a
/// recycled slot — one struct move at the edge, zero payload copies
/// between ingest and emit.
RunResult run_one_arena(DispatchPolicy policy, size_t workers, size_t flows,
                        size_t descriptors) {
  nnn::util::SystemClock clock;
  nnn::dataplane::ServiceRegistry registry;
  registry.bind("Boost", nnn::dataplane::PriorityAction{0});

  nnn::workload::PacketGenerator::Config wl;
  wl.packet_size = 512;
  wl.packets_per_flow = 50;
  wl.descriptors = descriptors;
  nnn::cookies::CookieVerifier staging(clock);
  nnn::workload::PacketGenerator generator(wl, clock, staging, 12345);

  nnn::runtime::Dataplane::Config config;
  config.policy = policy;
  config.pool.workers = workers;
  config.pool.ring_capacity = 4096;
  config.pool.batch_size = 32;
  nnn::runtime::Dataplane plane(clock, registry, config);
  for (const auto& d : generator.descriptors()) plane.add_descriptor(d);

  auto batch = generator.make_batch(flows);

  plane.start();
  const nnn::util::Timestamp t0 = clock.now();
  for (auto& packet : batch) {
    nnn::runtime::PacketHandle h = plane.make_packet();
    while (!h) h = plane.make_packet();  // workers are draining slots
    *h = std::move(packet);
    // Closed loop, loss-free: wait for ring space instead of shedding.
    plane.ingest_blocking(std::move(h));
  }
  plane.drain();
  const nnn::util::Timestamp t1 = clock.now();
  plane.stop();

  const auto snap = plane.snapshot();
  const auto totals = snap.totals();
  RunResult r;
  r.workers = workers;
  const double wall_us = static_cast<double>(t1 - t0);
  const double critical_us = static_cast<double>(snap.max_busy_micros());
  r.wall_mpps = wall_us > 0 ? static_cast<double>(totals.packets) / wall_us
                            : 0;
  r.percore_mpps =
      critical_us > 0 ? static_cast<double>(totals.packets) / critical_us : 0;
  r.gbps_percore = critical_us > 0
                       ? static_cast<double>(totals.bytes) * 8 /
                             (critical_us * 1e3)
                       : 0;
  r.verified = plane.total_verified();
  r.avg_batch = totals.avg_batch();
  r.arena_outstanding = plane.arena().outstanding();
  r.arena_alloc_failures = plane.arena().alloc_failures();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  // `--json <path>` dumps one BenchRecord per (policy, workers) run;
  // positional args still select flows / descriptors.
  const std::string json_path = nnn::bench::strip_json_flag(argc, argv);
  size_t flows = 2000;        // x50 packets = 100K packets per run
  size_t descriptors = 10'000;
  if (argc > 1) flows = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) descriptors = static_cast<size_t>(std::atoll(argv[2]));
  std::vector<nnn::bench::BenchRecord> records;

  std::printf("=== Runtime scaling: threaded dataplane, Fig. 4 campus "
              "workload ===\n");
  std::printf("512 B packets, 50-pkt flows, %zu flows (%zu packets), "
              "%zu descriptors, batch 32, ring 4096\n",
              flows, flows * 50, descriptors);
  std::printf("per-core = packets / max worker CPU time (parallel critical "
              "path);\nwall = elapsed on this host and only scales when "
              "cores >= workers\n\n");

  const DispatchPolicy policies[] = {DispatchPolicy::kDescriptorAffinity,
                                     DispatchPolicy::kFlowHash};
  bool leak = false;
  // Two ingest paths per policy: "copy" moves whole Packet structs
  // through the rings (pre-PR 8 baseline, kept under its original
  // record names so history diffs line up); "arena" is the zero-copy
  // handle path through Dataplane::ingest.
  for (const auto policy : policies) {
    const std::string policy_name(nnn::dataplane::to_string(policy));
    for (const bool arena : {false, true}) {
      std::printf("--- policy: %s, path: %s ---\n", policy_name.c_str(),
                  arena ? "arena (zero-copy handles)" : "copy (struct moves)");
      std::printf("%-8s %14s %14s %12s %10s %10s %10s\n", "workers",
                  "per-core Mpps", "per-core Gb/s", "wall Mpps", "speedup",
                  "verified", "bypassed");
      double base_percore = 0;
      for (const size_t workers : {1u, 2u, 4u, 8u}) {
        const RunResult r =
            arena ? run_one_arena(policy, workers, flows, descriptors)
                  : run_one(policy, workers, flows, descriptors);
        if (workers == 1) base_percore = r.percore_mpps;
        const double speedup =
            base_percore > 0 ? r.percore_mpps / base_percore : 0;
        std::printf("%-8zu %14.3f %14.2f %12.3f %9.2fx %10llu %10llu\n",
                    r.workers, r.percore_mpps, r.gbps_percore, r.wall_mpps,
                    speedup,
                    static_cast<unsigned long long>(r.verified),
                    static_cast<unsigned long long>(r.bypassed));
        if (arena && r.arena_outstanding != 0) {
          std::fprintf(stderr,
                       "LEAK: %llu arena slots outstanding after stop "
                       "(policy=%s workers=%zu)\n",
                       static_cast<unsigned long long>(r.arena_outstanding),
                       policy_name.c_str(), workers);
          leak = true;
        }
        nnn::bench::BenchRecord rec;
        rec.name = (arena ? "runtime/arena/" : "runtime/") + policy_name +
                   "/workers=" + std::to_string(workers);
        rec.config["workers"] = static_cast<int64_t>(workers);
        rec.config["policy"] = policy_name;
        rec.config["path"] = arena ? "arena" : "copy";
        rec.config["packet_size"] = 512;
        rec.config["flows"] = static_cast<int64_t>(flows);
        rec.config["descriptors"] = static_cast<int64_t>(descriptors);
        rec.config["batch"] = 32;
        rec.config["ring"] = 4096;
        rec.config["wall_mpps"] = r.wall_mpps;
        if (arena) {
          rec.config["arena_outstanding"] =
              static_cast<int64_t>(r.arena_outstanding);
          rec.config["arena_alloc_failures"] =
              static_cast<int64_t>(r.arena_alloc_failures);
        }
        // per-core packet service time: Mpps -> ns per packet.
        rec.ns_per_op = r.percore_mpps > 0 ? 1e3 / r.percore_mpps : 0;
        rec.ops_per_sec = r.percore_mpps * 1e6;
        records.push_back(std::move(rec));
      }
      std::printf("\n");
    }
  }
  std::printf("note: avg ring burst and backpressure accounting are in "
              "tests/test_runtime.cpp;\nring enqueue/dequeue "
              "microbenchmarks live in bench/ablation_dataplane "
              "(BM_Runtime_*).\n");
  if (!json_path.empty() &&
      !nnn::bench::write_bench_json(json_path, "ablation_runtime",
                                    records)) {
    return 1;
  }
  // Leak gate: every arena slot must be back on the freelist.
  return leak ? 1 : 0;
}
