// §3 / §6 — the quantitative claims about existing mechanisms:
//   - "nDPI ... recognizes only 23 out of 106 applications that our
//     surveyed users picked for zero-rating"
//   - "MusicFreedom ... works with only 17 out of 51 music applications
//     mentioned in our survey"
//   - "Loading [cnn.com's] front-page generates 255 flows and 6741
//     packets from 71 different servers. nDPI marked only packets
//     coming from CNN servers, which summed up to 605 packets (less
//     than 10%)"
//   - OOB control-plane cost: "the frontpage of CNN has 255 flows;
//     sending each of them through a centralized controller ... is an
//     expensive process"
//   - DiffServ: 64 classes max; bleached across boundaries.
#include <cstdio>

#include "baselines/diffserv.h"
#include "baselines/oob.h"
#include "util/rng.h"
#include "workload/apps.h"
#include "workload/page_load.h"
#include "workload/websites.h"

int main() {
  using namespace nnn;

  std::printf("=== Section 3/6: why existing mechanisms fall short ===\n\n");

  // --- DPI coverage of the survey's heavy tail ---
  const auto marginals = workload::catalog_marginals();
  std::printf("--- DPI rule coverage ---\n");
  std::printf("%-46s %8s %10s\n", "metric", "paper", "measured");
  std::printf("%-46s %8s %7zu/106\n",
              "survey apps recognized by stock nDPI catalog", "23/106",
              marginals.dpi_recognized);
  std::printf("%-46s %8s %8zu/51\n",
              "music apps covered by Music Freedom", "17/51",
              marginals.music_freedom_covered);

  // --- cnn.com through DPI's eyes ---
  util::Rng rng(77);
  workload::PageLoadGenerator generator(rng,
                                        net::IpAddress::v4(192, 168, 1, 10));
  const auto load = generator.generate(workload::cnn_profile());
  uint64_t first_party_packets = 0;
  for (const auto& flow : load.flows) {
    if (flow.origin == workload::OriginKind::kFirstParty) {
      first_party_packets += flow.packets;
    }
  }
  std::printf("\n--- the user-view / network-view paradox (cnn.com) ---\n");
  std::printf("%-46s %8s %10zu\n", "flows per front-page load", "255",
              load.flows.size());
  std::printf("%-46s %8s %10u\n", "packets per front-page load", "6741",
              load.total_packets);
  std::printf("%-46s %8s %10s\n", "distinct servers", "71",
              std::to_string(workload::cnn_profile().servers).c_str());
  std::printf("%-46s %8s %6llu (%.0f%%)\n",
              "packets from CNN-owned servers (DPI-visible)", "605 (9%)",
              static_cast<unsigned long long>(first_party_packets),
              100.0 * first_party_packets / load.total_packets);

  // --- OOB signaling cost for the same page ---
  baselines::OobSwitch home_switch;
  baselines::OobSwitch headend_switch;
  baselines::OobController controller;
  controller.attach_switch(&home_switch);
  controller.attach_switch(&headend_switch);
  for (const auto& flow : load.flows) {
    controller.request_service(
        baselines::FlowDescription::exact(flow.tuple), "boost");
  }
  std::printf("\n--- OOB control-plane cost for one cnn.com load ---\n");
  std::printf("controller signals              : %llu\n",
              static_cast<unsigned long long>(controller.stats().signals));
  std::printf("switch rules installed (2 hops) : %llu\n",
              static_cast<unsigned long long>(
                  controller.stats().rules_installed));

  // --- DiffServ's structural limits ---
  baselines::DiffServDomain domain("isp",
                                   baselines::BoundaryPolicy::kPreserve);
  int classes = 0;
  for (int dscp = 0; dscp < 256; ++dscp) {
    if (domain.define_class(static_cast<uint8_t>(dscp), "class")) {
      ++classes;
    }
  }
  net::Packet marked;
  marked.dscp = 46;
  baselines::DiffServDomain bleacher("transit",
                                     baselines::BoundaryPolicy::kBleach);
  bleacher.ingress(marked);
  std::printf("\n--- DiffServ structural limits ---\n");
  std::printf("distinct classes expressible    : %d (6 DSCP bits)\n",
              classes);
  std::printf("EF marking after one bleaching boundary: %u "
              "(preference lost in transit)\n", marked.dscp);
  return 0;
}
