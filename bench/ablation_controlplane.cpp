// Control-plane ablation: how fast does descriptor state propagate,
// and what does an epoch table swap cost the verify hot path?
//
// Part 1 — propagation latency (simulated): a SyncClient polls a
// SyncServer over impaired sim::Links (loss + jitter). For each
// revocation we measure sim time from append_revoke() to the version
// landing in the client's published table. Loss pushes the tail out
// through timeout/backoff cycles; the table quantifies it.
//
// Part 2 — swap overhead (real threads): a WorkerPool verifies a
// cookie workload while a control thread republishes the descriptor
// table as fast as it can (a swap rate far beyond any real control
// plane). Acceptance gate: per-core throughput during constant
// swapping within 5% of steady state — the reader side of the epoch
// protocol is two uncontended seq_cst ops per 32-packet burst.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "controlplane/descriptor_log.h"
#include "controlplane/epoch.h"
#include "controlplane/sync_client.h"
#include "controlplane/sync_server.h"
#include "controlplane/table_mirror.h"
#include "dataplane/service_registry.h"
#include "runtime/dispatcher.h"
#include "runtime/worker_pool.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "util/clock.h"
#include "workload/packet_gen.h"

namespace {

using nnn::util::kMillisecond;
using nnn::util::kSecond;

// --- Part 1: propagation latency over impaired links ---------------

struct PropagationResult {
  double loss_rate = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  uint64_t retries = 0;
  uint64_t dropped = 0;
};

nnn::cookies::CookieDescriptor bench_descriptor(nnn::cookies::CookieId id) {
  nnn::cookies::CookieDescriptor d;
  d.cookie_id = id;
  d.key.assign(32, static_cast<uint8_t>(id));
  d.service_data = "Boost";
  return d;
}

PropagationResult run_propagation(double loss_rate, size_t revocations) {
  nnn::sim::EventLoop loop;
  nnn::controlplane::DescriptorLog log;
  nnn::controlplane::SyncServer server(log);
  nnn::controlplane::TablePublisher tables;
  nnn::controlplane::SyncClient* client_ptr = nullptr;

  nnn::sim::Link::Config impaired;
  impaired.rate_bps = 10e6;
  impaired.prop_delay = 10 * kMillisecond;  // 20 ms RTT
  impaired.loss_rate = loss_rate;
  impaired.delay_jitter = 2 * kMillisecond;

  impaired.impairment_seed = 0xc0;
  nnn::sim::Link to_client(loop, impaired, [&](nnn::net::Packet p) {
    client_ptr->on_datagram(nnn::util::BytesView(p.payload));
  });
  impaired.impairment_seed = 0xc1;
  nnn::sim::Link to_server(loop, impaired, [&](nnn::net::Packet p) {
    if (auto reply = server.handle(nnn::util::BytesView(p.payload))) {
      nnn::net::Packet r;
      r.payload = std::move(*reply);
      to_client.send(std::move(r));
    }
  });

  nnn::controlplane::SyncClient::Config config;
  config.poll_interval = 100 * kMillisecond;
  config.response_timeout = 250 * kMillisecond;
  config.backoff_base = 250 * kMillisecond;
  nnn::controlplane::SyncClient client(
      loop.clock(), tables, config, [&](nnn::util::Bytes request) {
        nnn::net::Packet p;
        p.payload = std::move(request);
        to_server.send(std::move(p));
      });
  client_ptr = &client;

  // Tick pump: a 10 ms driver loop, the cadence a middlebox's control
  // thread would realistically run.
  std::function<void()> pump = [&] {
    client.tick();
    loop.after(10 * kMillisecond, pump);
  };

  for (nnn::cookies::CookieId id = 1; id <= revocations; ++id) {
    log.append_add(bench_descriptor(id));
  }
  client.start();
  pump();
  loop.run_until(loop.now() + 5 * kSecond);  // settle the bootstrap

  std::vector<double> latencies_ms;
  latencies_ms.reserve(revocations);
  for (nnn::cookies::CookieId id = 1; id <= revocations; ++id) {
    const uint64_t target = log.append_revoke(id);
    const nnn::util::Timestamp issued = loop.now();
    const nnn::util::Timestamp deadline = issued + 60 * kSecond;
    while (client.applied_version() < target && loop.now() < deadline) {
      loop.step();
    }
    latencies_ms.push_back(
        static_cast<double>(loop.now() - issued) / kMillisecond);
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  PropagationResult r;
  r.loss_rate = loss_rate;
  double sum = 0;
  for (const double v : latencies_ms) sum += v;
  r.mean_ms = sum / static_cast<double>(latencies_ms.size());
  r.p50_ms = latencies_ms[latencies_ms.size() / 2];
  r.p99_ms = latencies_ms[latencies_ms.size() * 99 / 100];
  r.max_ms = latencies_ms.back();
  r.retries = client.retries();
  r.dropped = to_server.dropped() + to_client.dropped();
  return r;
}

// --- Part 2: verify throughput during table swaps ------------------

struct SwapResult {
  double percore_mpps = 0;
  uint64_t swaps = 0;
  uint64_t verified = 0;
};

SwapResult run_swap(bool swapping, size_t workers, size_t flows,
                    size_t descriptors) {
  nnn::util::SystemClock clock;
  nnn::dataplane::ServiceRegistry registry;
  registry.bind("Boost", nnn::dataplane::PriorityAction{0});

  nnn::workload::PacketGenerator::Config wl;
  wl.packet_size = 512;
  wl.packets_per_flow = 50;
  wl.descriptors = descriptors;
  nnn::cookies::CookieVerifier staging(clock);
  nnn::workload::PacketGenerator generator(wl, clock, staging, 12345);

  nnn::runtime::WorkerPool::Config config;
  config.workers = workers;
  config.ring_capacity = 4096;
  config.batch_size = 32;
  nnn::runtime::WorkerPool pool(clock, registry, config);

  // Descriptor state arrives through the control plane: a mirror
  // builds the immutable table, the publisher swaps it in.
  nnn::controlplane::TablePublisher tables;
  pool.bind_table_publisher(tables);
  nnn::controlplane::TableMirror mirror;
  const auto table_descriptors = generator.descriptors();
  mirror.reset(1, table_descriptors, {});
  tables.publish(mirror.build());

  nnn::runtime::Dispatcher dispatcher(
      pool, {.policy = nnn::dataplane::DispatchPolicy::kDescriptorAffinity});
  auto batch = generator.make_batch(flows);

  pool.start();
  std::atomic<bool> stop_swapping{false};
  std::thread swapper;
  if (swapping) {
    swapper = std::thread([&] {
      // The real cadence: a one-update delta arrives, the mirror
      // applies it, and the rebuilt table is swapped in. Re-adding
      // the same descriptor keeps verify behaviour identical while
      // every publish still copies the full table and retires the
      // old one.
      uint64_t version = 1;
      while (!stop_swapping.load(std::memory_order_acquire)) {
        nnn::controlplane::Update update;
        update.version = ++version;
        update.op = nnn::controlplane::UpdateOp::kAdd;
        update.id = table_descriptors.front().cookie_id;
        update.descriptor = table_descriptors.front();
        mirror.apply(update);
        tables.publish(mirror.build());
        tables.try_reclaim();
      }
    });
  }

  for (auto& packet : batch) {
    dispatcher.dispatch_blocking(std::move(packet));
  }
  dispatcher.drain();
  if (swapping) {
    stop_swapping.store(true, std::memory_order_release);
    swapper.join();
  }
  pool.stop();
  tables.try_reclaim();  // workers parked: everything must free

  const auto snap = pool.snapshot();
  SwapResult r;
  const double critical_us = static_cast<double>(snap.max_busy_micros());
  r.percore_mpps =
      critical_us > 0
          ? static_cast<double>(snap.totals().packets) / critical_us
          : 0;
  r.swaps = tables.epoch();
  r.verified = pool.total_verified();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = nnn::bench::strip_json_flag(argc, argv);
  size_t revocations = 200;
  size_t flows = 10000;  // x50 packets per swap run
  if (argc > 1) revocations = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) flows = static_cast<size_t>(std::atoll(argv[2]));
  std::vector<nnn::bench::BenchRecord> records;

  std::printf("=== Control plane: revocation propagation latency ===\n");
  std::printf("snapshot/delta sync over sim links (20 ms RTT, 2 ms "
              "jitter), 100 ms poll,\n250 ms timeout, %zu revocations "
              "measured per loss rate\n\n",
              revocations);
  std::printf("%-8s %10s %10s %10s %10s %9s %9s\n", "loss", "mean ms",
              "p50 ms", "p99 ms", "max ms", "retries", "dropped");
  for (const double loss : {0.0, 0.01, 0.10}) {
    const PropagationResult r = run_propagation(loss, revocations);
    std::printf("%-8.2f %10.1f %10.1f %10.1f %10.1f %9llu %9llu\n",
                r.loss_rate, r.mean_ms, r.p50_ms, r.p99_ms, r.max_ms,
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.dropped));
    nnn::bench::BenchRecord rec;
    rec.name = "controlplane/propagation/loss=" + std::to_string(loss);
    rec.config["loss_rate"] = loss;
    rec.config["poll_ms"] = 100;
    rec.config["rtt_ms"] = 20;
    rec.config["revocations"] = static_cast<int64_t>(revocations);
    rec.config["p99_ms"] = r.p99_ms;
    rec.config["max_ms"] = r.max_ms;
    // One "op" is one revocation reaching the enforcement point.
    rec.ns_per_op = r.mean_ms * 1e6;
    rec.ops_per_sec = r.mean_ms > 0 ? 1e3 / r.mean_ms : 0;
    records.push_back(std::move(rec));
  }

  std::printf("\n=== Epoch swap overhead on the verify hot path ===\n");
  const size_t workers = 2;
  std::printf("%zu workers, 512 B packets, %zu flows x50, descriptor "
              "tables republished\ncontinuously vs not at all; per-core "
              "= packets / max worker CPU time,\nbest of 5 runs per "
              "mode, interleaved\n\n",
              workers, flows);
  // Interleave reps so machine drift hits both modes equally; keep the
  // best per-core figure (standard practice: the least-perturbed run).
  SwapResult steady, swapped;
  for (int rep = 0; rep < 5; ++rep) {
    const SwapResult s = run_swap(false, workers, flows, 1000);
    if (s.percore_mpps > steady.percore_mpps) steady = s;
    const SwapResult d = run_swap(true, workers, flows, 1000);
    if (d.percore_mpps > swapped.percore_mpps) swapped = d;
  }
  const double delta_pct =
      steady.percore_mpps > 0
          ? 100.0 * (steady.percore_mpps - swapped.percore_mpps) /
                steady.percore_mpps
          : 0;
  std::printf("%-14s %14s %12s %12s\n", "mode", "per-core Mpps", "swaps",
              "verified");
  std::printf("%-14s %14.3f %12llu %12llu\n", "steady",
              steady.percore_mpps,
              static_cast<unsigned long long>(steady.swaps),
              static_cast<unsigned long long>(steady.verified));
  std::printf("%-14s %14.3f %12llu %12llu\n", "during-swap",
              swapped.percore_mpps,
              static_cast<unsigned long long>(swapped.swaps),
              static_cast<unsigned long long>(swapped.verified));
  std::printf("swap overhead: %.1f%% (acceptance bar: within 5%%)\n",
              delta_pct);

  for (const auto* r : {&steady, &swapped}) {
    nnn::bench::BenchRecord rec;
    const bool is_swap = (r == &swapped);
    rec.name = is_swap ? "controlplane/verify/during_swap"
                       : "controlplane/verify/steady";
    rec.config["workers"] = static_cast<int64_t>(workers);
    rec.config["flows"] = static_cast<int64_t>(flows);
    rec.config["packet_size"] = 512;
    rec.config["swaps"] = static_cast<int64_t>(r->swaps);
    if (is_swap) rec.config["overhead_pct"] = delta_pct;
    rec.ns_per_op = r->percore_mpps > 0 ? 1e3 / r->percore_mpps : 0;
    rec.ops_per_sec = r->percore_mpps * 1e6;
    records.push_back(std::move(rec));
  }

  if (!json_path.empty() &&
      !nnn::bench::write_bench_json(json_path, "ablation_controlplane",
                                    records)) {
    return 1;
  }
  return 0;
}
