// Figure 6 — "Matching accuracy for three sample user preferences"
// (cnn.com, youtube.com, skai.gr) under (a) cookies, (b) nDPI,
// (c) out-of-band flow descriptions. Prints the matched / false
// percentages each subfigure stacks.
#include <cstdio>
#include <cstdlib>

#include "studies/accuracy.h"

namespace {

void print_panel(const char* title,
                 const std::vector<nnn::studies::SiteAccuracy>& panel) {
  std::printf("%s\n", title);
  std::printf("  %-14s %12s %14s %20s\n", "site", "matched(%)",
              "false-share(%)", "pkts matched/false");
  for (const auto& acc : panel) {
    std::printf("  %-14s %12.1f %14.1f %12llu/%llu\n", acc.site.c_str(),
                acc.matched_pct, acc.false_pct,
                static_cast<unsigned long long>(acc.matched_packets),
                static_cast<unsigned long long>(acc.false_packets));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1234;
  nnn::studies::AccuracyExperiment experiment(seed);
  const auto result = experiment.run();

  std::printf("=== Figure 6: matching accuracy (seed %llu) ===\n\n",
              static_cast<unsigned long long>(seed));
  print_panel("(a) Cookies + browser agent", result.cookies);
  print_panel("(b) nDPI rule catalog", result.dpi);
  print_panel("(c) Out-of-band flow descriptions (server ip+port, the "
              "NAT-safe form)",
              result.oob);
  print_panel("    [OOB with exact 5-tuples — dies at the NAT]",
              result.oob_exact);

  std::printf("--- paper vs measured ---\n");
  std::printf("cookies boost >90%% with no false positives : "
              "matched %.1f-%.1f%%, false %.1f%%\n",
              result.cookies[0].matched_pct < result.cookies[2].matched_pct
                  ? result.cookies[0].matched_pct
                  : result.cookies[2].matched_pct,
              result.cookies[1].matched_pct,
              result.cookies[0].false_pct);
  std::printf("nDPI on cnn.com: paper 18%%                 : %.1f%%\n",
              result.dpi[0].matched_pct);
  std::printf("nDPI on skai.gr: paper 0%% (no rule)        : %.1f%%\n",
              result.dpi[2].matched_pct);
  // The paper measures the youtube-on-skai confusion as a share of
  // skai.gr's packets; compute the same quantity from the raw counts.
  const double skai_misattributed =
      100.0 * static_cast<double>(result.dpi[1].false_packets) /
      static_cast<double>(result.dpi[2].target_total_packets);
  std::printf("nDPI youtube false-matches skai embeds     : %.1f%% of "
              "skai's packets (paper: 12%%)\n",
              skai_misattributed);
  std::printf("OOB false positives (paper ~40%%)           : "
              "%.1f / %.1f / %.1f %%\n",
              result.oob[0].false_pct, result.oob[1].false_pct,
              result.oob[2].false_pct);
  return 0;
}
