// Figure 1 — "If given the choice, which websites would home users
// prioritize?" Regenerates the 161-home Boost deployment's preference
// distribution and prints the figure's data: sites ranked by how many
// users boosted them (x: Alexa popularity index, y: # of users), plus
// the headline aggregates (43% unique preferences, median popularity
// index 223).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "studies/deployment.h"

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  nnn::studies::DeploymentModel model({}, seed);
  const auto prefs = model.run();
  const auto summary = nnn::studies::DeploymentModel::summarize(
      prefs, 400, model.installed_users());

  std::printf("=== Figure 1: user-defined fast-lane preferences "
              "(161-home Boost deployment) ===\n");
  std::printf("seed: %llu\n\n", static_cast<unsigned long long>(seed));
  std::printf("invited users            : %zu\n", summary.invited_users);
  std::printf("installed the extension  : %zu (%.0f%%)\n",
              summary.installed_users,
              100.0 * summary.installed_users / summary.invited_users);
  std::printf("preferences expressed    : %zu\n", summary.preferences);
  std::printf("distinct sites boosted   : %zu\n", summary.distinct_sites);
  std::printf("\n%-28s %14s %10s\n", "site", "alexa-rank", "# users");
  for (const auto& [domain, users] : summary.top_sites) {
    const auto* site = nnn::workload::find_site(domain);
    if (site) {
      std::printf("%-28s %14u %10zu\n", domain.c_str(), site->alexa_rank,
                  users);
    } else {
      std::printf("%-28s %14s %10zu\n", domain.c_str(), ">5000", users);
    }
  }

  std::printf("\n--- paper vs measured ---\n");
  std::printf("%-34s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-34s %10s %10zu\n", "homes with Boost installed", "161",
              summary.installed_users);
  std::printf("%-34s %10s %9.0f%%\n", "unique preferences", "43%",
              100.0 * summary.unique_share);
  std::printf("%-34s %10s %10u\n", "median popularity index", "223",
              summary.median_rank);
  return 0;
}
