// Ablation: cost of the cryptographic substrate under the cookie
// design (§4.6 "search and verify a cookie" is the expensive per-flow
// task; these microbenchmarks locate where that cost lives).
//
// Custom main: `--json <path>` dumps every measurement as a
// BenchRecord (see bench_json.h); remaining flags pass through to the
// benchmark library (--benchmark_filter, --benchmark_min_time, ...).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_json.h"
#include "cookies/generator.h"
#include "cookies/verifier.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/clock.h"
#include "util/rng.h"

namespace {

using nnn::util::Bytes;
using nnn::util::BytesView;

void BM_Sha256(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nnn::crypto::Sha256::hash(BytesView(data)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(512)->Arg(4096)->Arg(65536);

/// Backend-forced variants isolate the hardware speedup from the
/// midstate/batch layers (the plain BM_Sha256 rows use whatever the
/// runtime dispatcher picked).
void BM_Sha256_Scalar(benchmark::State& state) {
  const auto prev = nnn::crypto::sha256_backend();
  nnn::crypto::sha256_set_backend(nnn::crypto::Sha256Backend::kScalar);
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nnn::crypto::Sha256::hash(BytesView(data)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
  nnn::crypto::sha256_set_backend(prev);
}
BENCHMARK(BM_Sha256_Scalar)->Arg(64)->Arg(512)->Arg(4096);

void BM_Sha256_ShaNi(benchmark::State& state) {
  if (!nnn::crypto::sha256_shani_supported()) {
    state.SkipWithError("SHA-NI not available on this CPU/build");
    return;
  }
  const auto prev = nnn::crypto::sha256_backend();
  nnn::crypto::sha256_set_backend(nnn::crypto::Sha256Backend::kShaNi);
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nnn::crypto::Sha256::hash(BytesView(data)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
  nnn::crypto::sha256_set_backend(prev);
}
BENCHMARK(BM_Sha256_ShaNi)->Arg(64)->Arg(512)->Arg(4096);

void BM_HmacCookieTag(benchmark::State& state) {
  const Bytes key(32, 0x42);
  const Bytes value(32, 0x17);  // id || uuid || timestamp
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nnn::crypto::cookie_tag(BytesView(key), BytesView(value)));
  }
}
BENCHMARK(BM_HmacCookieTag);

void BM_HmacKeyScheduleBuild(benchmark::State& state) {
  // One-time per-descriptor cost: hash the padded key into the
  // inner/outer midstates (two compressions). Paid at add_descriptor.
  const Bytes key(32, 0x42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nnn::crypto::HmacKeySchedule(BytesView(key)));
  }
}
BENCHMARK(BM_HmacKeyScheduleBuild);

void BM_HmacScheduleTag(benchmark::State& state) {
  // The verify hot path: resume the precomputed midstates, so a
  // one-block message costs 2 compressions instead of 4.
  const Bytes key(32, 0x42);
  const nnn::crypto::HmacKeySchedule schedule{BytesView(key)};
  const Bytes value(32, 0x17);  // id || uuid || timestamp
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.tag(BytesView(value)));
  }
}
BENCHMARK(BM_HmacScheduleTag);

void BM_CookieGenerate(benchmark::State& state) {
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate());
  }
}
BENCHMARK(BM_CookieGenerate);

void BM_CookieVerify(benchmark::State& state) {
  // Fresh cookies each batch so the replay cache never rejects; the
  // measured path is the full four-check verification.
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieVerifier verifier(clock);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  verifier.add_descriptor(descriptor);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 2);
  std::vector<nnn::cookies::Cookie> batch(4096);
  size_t next = batch.size();
  for (auto _ : state) {
    if (next == batch.size()) {
      state.PauseTiming();
      for (auto& cookie : batch) cookie = generator.generate();
      next = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(verifier.verify(batch[next++]));
  }
}
BENCHMARK(BM_CookieVerify);

void BM_CookieVerifyBatch(benchmark::State& state) {
  // Same workload as BM_CookieVerify but through verify_batch in
  // bursts of range(0): one clock read and one descriptor lookup per
  // run of same-id cookies. ns/op here is per BURST; divide by the
  // batch size for the per-cookie figure.
  const size_t batch_size = static_cast<size_t>(state.range(0));
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieVerifier verifier(clock);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  verifier.add_descriptor(descriptor);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 6);
  std::vector<nnn::cookies::Cookie> pool(4096);
  std::vector<nnn::cookies::VerifyResult> results(batch_size);
  size_t next = pool.size();
  for (auto _ : state) {
    if (next + batch_size > pool.size()) {
      state.PauseTiming();
      for (auto& cookie : pool) cookie = generator.generate();
      next = 0;
      state.ResumeTiming();
    }
    verifier.verify_batch({pool.data() + next, batch_size}, results);
    benchmark::DoNotOptimize(results.data());
    next += batch_size;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch_size));
}
BENCHMARK(BM_CookieVerifyBatch)->Arg(32)->Arg(256);

void BM_CookieVerifyRejectBadTag(benchmark::State& state) {
  // The attack path: a forged signature must be rejected no slower
  // than a valid one verifies (constant-time compare).
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieVerifier verifier(clock);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  verifier.add_descriptor(descriptor);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 3);
  auto cookie = generator.generate();
  cookie.signature[0] ^= 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(cookie));
  }
}
BENCHMARK(BM_CookieVerifyRejectBadTag);

void BM_CookieEncodeDecode(benchmark::State& state) {
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 4);
  const auto cookie = generator.generate();
  for (auto _ : state) {
    const auto wire = cookie.encode();
    benchmark::DoNotOptimize(nnn::cookies::Cookie::decode(BytesView(wire)));
  }
}
BENCHMARK(BM_CookieEncodeDecode);

void BM_CookieTextRoundTrip(benchmark::State& state) {
  // The base64 text form used in HTTP headers / TLS extensions.
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 5);
  const auto cookie = generator.generate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nnn::cookies::Cookie::decode_text(cookie.encode_text()));
  }
}
BENCHMARK(BM_CookieTextRoundTrip);

double to_nanoseconds(double value, benchmark::TimeUnit unit) {
  switch (unit) {
    case benchmark::kNanosecond: return value;
    case benchmark::kMicrosecond: return value * 1e3;
    case benchmark::kMillisecond: return value * 1e6;
    case benchmark::kSecond: return value * 1e9;
  }
  return value;
}

/// Console output as usual, plus a BenchRecord per measured run for
/// the --json dump.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      nnn::bench::BenchRecord rec;
      rec.name = run.benchmark_name();
      rec.config["iterations"] = static_cast<int64_t>(run.iterations);
      rec.config["sha256_default_backend"] =
          nnn::crypto::to_string(nnn::crypto::sha256_backend());
      rec.ns_per_op =
          to_nanoseconds(run.GetAdjustedRealTime(), run.time_unit);
      rec.ops_per_sec = rec.ns_per_op > 0 ? 1e9 / rec.ns_per_op : 0;
      records.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<nnn::bench::BenchRecord> records;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = nnn::bench::strip_json_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() &&
      !nnn::bench::write_bench_json(json_path, "ablation_crypto",
                                    reporter.records)) {
    return 1;
  }
  return 0;
}
