// Ablation: cost of the cryptographic substrate under the cookie
// design (§4.6 "search and verify a cookie" is the expensive per-flow
// task; these microbenchmarks locate where that cost lives).
#include <benchmark/benchmark.h>

#include "cookies/generator.h"
#include "cookies/verifier.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/clock.h"
#include "util/rng.h"

namespace {

using nnn::util::Bytes;
using nnn::util::BytesView;

void BM_Sha256(benchmark::State& state) {
  const size_t size = static_cast<size_t>(state.range(0));
  Bytes data(size, 0xab);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nnn::crypto::Sha256::hash(BytesView(data)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
}
BENCHMARK(BM_Sha256)->Arg(32)->Arg(512)->Arg(4096)->Arg(65536);

void BM_HmacCookieTag(benchmark::State& state) {
  const Bytes key(32, 0x42);
  const Bytes value(32, 0x17);  // id || uuid || timestamp
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nnn::crypto::cookie_tag(BytesView(key), BytesView(value)));
  }
}
BENCHMARK(BM_HmacCookieTag);

void BM_CookieGenerate(benchmark::State& state) {
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.generate());
  }
}
BENCHMARK(BM_CookieGenerate);

void BM_CookieVerify(benchmark::State& state) {
  // Fresh cookies each batch so the replay cache never rejects; the
  // measured path is the full four-check verification.
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieVerifier verifier(clock);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  verifier.add_descriptor(descriptor);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 2);
  std::vector<nnn::cookies::Cookie> batch(4096);
  size_t next = batch.size();
  for (auto _ : state) {
    if (next == batch.size()) {
      state.PauseTiming();
      for (auto& cookie : batch) cookie = generator.generate();
      next = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(verifier.verify(batch[next++]));
  }
}
BENCHMARK(BM_CookieVerify);

void BM_CookieVerifyRejectBadTag(benchmark::State& state) {
  // The attack path: a forged signature must be rejected no slower
  // than a valid one verifies (constant-time compare).
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieVerifier verifier(clock);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  verifier.add_descriptor(descriptor);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 3);
  auto cookie = generator.generate();
  cookie.signature[0] ^= 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier.verify(cookie));
  }
}
BENCHMARK(BM_CookieVerifyRejectBadTag);

void BM_CookieEncodeDecode(benchmark::State& state) {
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 4);
  const auto cookie = generator.generate();
  for (auto _ : state) {
    const auto wire = cookie.encode();
    benchmark::DoNotOptimize(nnn::cookies::Cookie::decode(BytesView(wire)));
  }
}
BENCHMARK(BM_CookieEncodeDecode);

void BM_CookieTextRoundTrip(benchmark::State& state) {
  // The base64 text form used in HTTP headers / TLS extensions.
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 5);
  const auto cookie = generator.generate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nnn::cookies::Cookie::decode_text(cookie.encode_text()));
  }
}
BENCHMARK(BM_CookieTextRoundTrip);

}  // namespace
