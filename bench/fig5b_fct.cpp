// Figure 5(b) — "Flow completion time for a 300KB flow in the presence
// of background traffic." Runs the simulated home (6 Mb/s last mile,
// non-boosted traffic throttled to 1 Mb/s while a boost is active) for
// the three treatments and prints the FCT CDFs the figure plots.
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "studies/fct_experiment.h"

int main(int argc, char** argv) {
  nnn::studies::FctConfig config;
  config.trials = 40;
  if (argc > 1) config.trials = std::atoi(argv[1]);
  if (argc > 2) config.seed = std::strtoull(argv[2], nullptr, 10);

  std::printf("=== Figure 5b: 300KB flow completion time CDF ===\n");
  std::printf("WAN %.0f Mb/s, throttle %.0f Mb/s, %d trials per lane, "
              "seed %llu\n\n",
              config.wan_bps / 1e6, config.throttle_bps / 1e6,
              config.trials,
              static_cast<unsigned long long>(config.seed));

  struct LaneRun {
    const char* name;
    nnn::studies::Lane lane;
    std::vector<double> fct;
  };
  LaneRun lanes[] = {
      {"boosted", nnn::studies::Lane::kBoosted, {}},
      {"best-effort", nnn::studies::Lane::kBestEffort, {}},
      {"throttled", nnn::studies::Lane::kThrottled, {}},
  };
  for (auto& lane : lanes) {
    lane.fct = nnn::studies::sorted_samples(
        nnn::studies::run_fct(lane.lane, config));
  }

  std::printf("%-8s %12s %12s %12s\n", "CDF", "boosted(s)",
              "best-eff(s)", "throttled(s)");
  for (const double p : {0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95}) {
    const auto at = [&](const std::vector<double>& v) {
      const size_t idx =
          std::min(v.size() - 1, static_cast<size_t>(p * v.size()));
      return v[idx];
    };
    std::printf("p%-7.0f %12.2f %12.2f %12.2f\n", p * 100,
                at(lanes[0].fct), at(lanes[1].fct), at(lanes[2].fct));
  }

  const auto median = [](const std::vector<double>& v) {
    return v[v.size() / 2];
  };
  std::printf("\n--- paper vs measured (shape) ---\n");
  std::printf("boosted finishes fastest      : %s (median %.2fs)\n",
              median(lanes[0].fct) < median(lanes[1].fct) ? "yes" : "NO",
              median(lanes[0].fct));
  std::printf("throttled bounded by 1 Mb/s   : %s (median %.2fs; "
              "300KB/1Mb/s = 2.4s floor)\n",
              median(lanes[2].fct) > 2.4 ? "yes" : "NO",
              median(lanes[2].fct));
  std::printf("best-effort in between, spread: median %.2fs, "
              "p95 %.2fs\n",
              median(lanes[1].fct),
              lanes[1].fct[static_cast<size_t>(0.95 * lanes[1].fct.size())]);
  return 0;
}
