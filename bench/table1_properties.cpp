// Table 1 — "Network Cookies properties and comparison with
// alternative mechanisms." Prints the property matrix; cells marked
// with '*' were validated by executing a probe against the real
// implementation in this run (replaying a cookie, bleaching DSCP at a
// boundary, spoofing an OOB rule, ...).
#include <cstdio>
#include <string>

#include "studies/properties.h"

int main() {
  const auto rows = nnn::studies::evaluate_properties();

  std::printf("=== Table 1: mechanism property comparison ===\n\n");
  std::printf("%-52s %8s %5s %5s %9s\n", "property", "cookies", "DPI",
              "OOB", "DiffServ");
  std::string group;
  int probed = 0;
  const auto mark = [](bool v) { return v ? "yes" : "-"; };
  for (const auto& row : rows) {
    if (row.group != group) {
      group = row.group;
      std::printf("-- %s --\n", group.c_str());
    }
    std::printf("%-52s %8s %5s %5s %9s%s\n", row.property.c_str(),
                mark(row.cookies), mark(row.dpi), mark(row.oob),
                mark(row.diffserv), row.probed ? "  *" : "");
    if (row.probed) ++probed;
  }
  std::printf("\n* = cell validated by an executed probe (%d of %zu "
              "rows)\n\n", probed, rows.size());
  std::printf("notes:\n");
  for (const auto& row : rows) {
    if (!row.note.empty()) {
      std::printf("  %-44s %s\n", (row.property + ":").c_str(),
                  row.note.c_str());
    }
  }
  return 0;
}
