// Telemetry overhead ablation (acceptance gate: <2%).
//
// The registry is pull-based, so the only telemetry cost the hot path
// ever sees is (a) single-writer Counter::inc — a relaxed load+store
// the optimiser folds into the surrounding arithmetic — and (b) the
// per-burst ScopedTimer clock reads feeding the latency histograms.
// This bench measures that cost end to end by flipping the process-
// wide telemetry::set_timers_enabled switch around otherwise identical
// runs:
//
//   verify:  CookieVerifier::verify_batch over bursts of 32 fresh
//            cookies (the 718 ns SHA-NI path from BENCH_crypto). The
//            ScopedTimer here is one pair of clock reads per burst,
//            ~1 ns amortised per cookie.
//   pool:    the full threaded dataplane at 1 and 4 workers on the
//            Fig. 4 campus workload (512 B packets, 50-pkt flows),
//            reported as per-core ns/packet (packets / max worker CPU
//            time — robust to core-starved CI hosts).
//
// Arms are interleaved (off, on, off, on, ...) and each arm reports
// its MINIMUM across rounds: scheduler noise only ever adds time (the
// pool runs several threads and a CI container may give them one
// core), so the min is each arm's undisturbed floor and min-vs-min
// isolates the real timer cost. `--json <path>` dumps BenchRecords;
// the timers-on records carry overhead_pct in their config, which CI
// asserts stays < 2.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "cookies/cookie.h"
#include "cookies/verifier.h"
#include "dataplane/service_registry.h"
#include "runtime/dispatcher.h"
#include "runtime/worker_pool.h"
#include "telemetry/metrics.h"
#include "util/clock.h"
#include "workload/packet_gen.h"

namespace {

uint64_t steady_nanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double minimum(const std::vector<double>& values) {
  return *std::min_element(values.begin(), values.end());
}

// One verify round: fresh verifier and fresh cookies (the replay cache
// rejects repeats), so every round does the same work regardless of
// order. Returns ns per verified cookie.
double verify_round(size_t cookies, size_t burst) {
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieVerifier verifier(clock);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  verifier.add_descriptor(descriptor);
  nnn::cookies::CookieGenerator generator(descriptor, clock, 7);

  std::vector<nnn::cookies::Cookie> pool(cookies);
  for (auto& cookie : pool) cookie = generator.generate();
  std::vector<nnn::cookies::VerifyResult> results(burst);

  const uint64_t t0 = steady_nanos();
  for (size_t next = 0; next + burst <= pool.size(); next += burst) {
    verifier.verify_batch({pool.data() + next, burst}, results);
  }
  const uint64_t t1 = steady_nanos();
  const size_t verified = (pool.size() / burst) * burst;
  return static_cast<double>(t1 - t0) / static_cast<double>(verified);
}

// One pool round: the ablation_runtime closed loop. Returns worker
// CPU nanoseconds per packet — SUM of worker busy time over packets,
// not ablation_runtime's critical-path max: an overhead gate wants the
// total work the timers add, and the sum is robust to the load
// imbalance an oversubscribed host injects into the max.
double pool_round(size_t workers, size_t flows, size_t descriptors) {
  nnn::util::SystemClock clock;
  nnn::dataplane::ServiceRegistry registry;
  registry.bind("Boost", nnn::dataplane::PriorityAction{0});

  nnn::workload::PacketGenerator::Config wl;
  wl.packet_size = 512;
  wl.packets_per_flow = 50;
  wl.descriptors = descriptors;

  nnn::cookies::CookieVerifier staging(clock);
  nnn::workload::PacketGenerator generator(wl, clock, staging, 12345);

  nnn::runtime::WorkerPool::Config config;
  config.workers = workers;
  config.ring_capacity = 4096;
  config.batch_size = 32;
  nnn::runtime::WorkerPool pool(clock, registry, config);
  for (const auto& d : generator.descriptors()) pool.add_descriptor(d);

  nnn::runtime::Dispatcher dispatcher(pool, {});

  auto batch = generator.make_batch(flows);
  pool.start();
  for (auto& packet : batch) {
    dispatcher.dispatch_blocking(std::move(packet));
  }
  dispatcher.drain();
  pool.stop();

  const auto totals = pool.snapshot().totals();
  return totals.packets > 0
             ? static_cast<double>(totals.busy_micros) * 1e3 /
                   static_cast<double>(totals.packets)
             : 0;
}

struct Arm {
  double off_ns = 0;        // min ns/op across rounds, timers disabled
  double on_ns = 0;         // min ns/op across rounds, timers enabled
  double overhead_pct = 0;  // (on_ns - off_ns) / off_ns
};

template <typename RoundFn>
Arm measure(size_t rounds, RoundFn&& round) {
  // One throwaway warm-up round first (page cache, branch predictors).
  nnn::telemetry::set_timers_enabled(false);
  (void)round();
  std::vector<double> off, on;
  for (size_t i = 0; i < rounds; ++i) {
    nnn::telemetry::set_timers_enabled(false);
    off.push_back(round());
    nnn::telemetry::set_timers_enabled(true);
    on.push_back(round());
  }
  nnn::telemetry::set_timers_enabled(true);
  Arm arm{minimum(off), minimum(on), 0};
  if (arm.off_ns > 0) {
    arm.overhead_pct = (arm.on_ns - arm.off_ns) / arm.off_ns * 100.0;
  }
  return arm;
}

void push_records(std::vector<nnn::bench::BenchRecord>& records,
                  const std::string& base, const Arm& arm,
                  const nnn::json::Object& shared) {
  for (const bool timers_on : {false, true}) {
    nnn::bench::BenchRecord rec;
    rec.name = base + "/timers=" + (timers_on ? "on" : "off");
    rec.config = shared;
    rec.config["timers"] = timers_on;
    if (timers_on) rec.config["overhead_pct"] = arm.overhead_pct;
    rec.ns_per_op = timers_on ? arm.on_ns : arm.off_ns;
    rec.ops_per_sec = rec.ns_per_op > 0 ? 1e9 / rec.ns_per_op : 0;
    records.push_back(std::move(rec));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = nnn::bench::strip_json_flag(argc, argv);
  // Many short rounds beat few long ones: the min only needs ONE
  // undisturbed round per arm, and a short round is less likely to
  // straddle a co-tenant burst or a scheduler migration.
  size_t rounds = 15;
  size_t verify_cookies = 16'384;
  size_t flows = 1000;  // x50 packets = 50K packets per pool round
  if (argc > 1) rounds = static_cast<size_t>(std::atoll(argv[1]));
  if (argc > 2) flows = static_cast<size_t>(std::atoll(argv[2]));

  std::vector<nnn::bench::BenchRecord> records;
  std::printf("=== Telemetry overhead: ScopedTimer histograms on vs off "
              "===\n");
  std::printf("%zu interleaved rounds per arm, min-of-rounds reported; "
              "gate is overhead < 2%%\n\n", rounds);
  std::printf("%-24s %12s %12s %10s\n", "path", "off ns/op", "on ns/op",
              "overhead");

  const Arm verify = measure(rounds, [&] {
    return verify_round(verify_cookies, 32);
  });
  std::printf("%-24s %12.1f %12.1f %9.2f%%\n", "verify_batch (per cookie)",
              verify.off_ns, verify.on_ns, verify.overhead_pct);
  {
    nnn::json::Object cfg;
    cfg["burst"] = 32;
    cfg["cookies"] = static_cast<int64_t>(verify_cookies);
    cfg["rounds"] = static_cast<int64_t>(rounds);
    push_records(records, "telemetry/verify_batch", verify, cfg);
  }

  for (const size_t workers : {1u, 4u}) {
    const Arm pool = measure(rounds, [&] {
      return pool_round(workers, flows, 10'000);
    });
    const std::string label =
        "pool workers=" + std::to_string(workers) + " (cpu/pkt)";
    std::printf("%-24s %12.1f %12.1f %9.2f%%\n", label.c_str(), pool.off_ns,
                pool.on_ns, pool.overhead_pct);
    nnn::json::Object cfg;
    cfg["workers"] = static_cast<int64_t>(workers);
    cfg["packet_size"] = 512;
    cfg["flows"] = static_cast<int64_t>(flows);
    cfg["rounds"] = static_cast<int64_t>(rounds);
    push_records(records,
                 "telemetry/pool/workers=" + std::to_string(workers), pool,
                 cfg);
  }

  std::printf("\nnote: counters are always on (a relaxed load+store the "
              "compiler schedules\nfor free); the switch only gates the "
              "per-burst ScopedTimer clock reads.\n");
  if (!json_path.empty() &&
      !nnn::bench::write_bench_json(json_path, "ablation_telemetry",
                                    records)) {
    return 1;
  }
  return 0;
}
