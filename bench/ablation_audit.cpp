// Neutrality-auditor ablation (PR 9): detection power, false-positive
// rate, and replay throughput.
//
// Three questions, three record groups in BENCH_audit.json:
//
//   audit_clean       — the same seed matrix with NO fault armed. The
//                       gate is absolute: zero VIOLATION verdicts. A
//                       regulator tool that cries wolf is worse than no
//                       tool (the joint p < alpha AND delta > min_effect
//                       rule is what buys this).
//   audit_detect_*    — kThrottleNonCookie at magnitude 0.9 / 0.7 / 0.5
//                       across the seed matrix: what fraction of runs
//                       return VIOLATION with p < 0.01? Power should
//                       rise as the throttle bites harder; CI gates on
//                       the 0.5 row being detected on every seed.
//   audit_dataplane_ingest — matched cookie/baseline pairs through the
//                       production Dataplane::ingest path (zero-copy
//                       arena, worker pool), reporting pairs/s and the
//                       shed/processed ledger. This is the "at scale"
//                       half: the sim measures distributions, this
//                       measures that the measurement machinery itself
//                       keeps up.
//
// Run: ./bench/ablation_audit [--json BENCH_audit.json]
#include <cstdio>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "audit/replay.h"
#include "audit/verdict.h"
#include "bench_json.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "telemetry/metrics.h"

namespace {

using namespace nnn;

constexpr uint64_t kSeeds[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
constexpr size_t kSeedCount = sizeof(kSeeds) / sizeof(kSeeds[0]);

audit::AuditorConfig bench_config() {
  audit::AuditorConfig config;
  config.replay.pairs = 150;
  config.permutation_rounds = 1000;  // p-value floor ~1e-3, alpha 0.01
  return config;
}

struct SweepResult {
  size_t violations = 0;
  size_t clean = 0;
  size_t inconclusive = 0;
  double max_p = 0.0;   // largest p among VIOLATION verdicts
  double min_p = 1.0;   // smallest p seen at all (clean-run sanity)
  double mean_delta = 0.0;
  uint64_t total_nanos = 0;
};

/// Run the full seed matrix at one throttle magnitude (0 = no fault).
SweepResult sweep(audit::Auditor& auditor, double magnitude) {
  SweepResult result;
  for (uint64_t seed : kSeeds) {
    fault::Injector injector;
    if (magnitude > 0.0) {
      fault::FaultEvent event;
      event.kind = fault::FaultKind::kThrottleNonCookie;
      event.start = 0;
      event.duration = auditor.config().replay.horizon;
      event.magnitude = magnitude;
      event.target = auditor.config().replay.audited_link_id;
      fault::FaultPlan plan;
      plan.add(event);
      injector.arm(plan);
    }
    const uint64_t t0 = telemetry::monotonic_nanos();
    const audit::AuditReport report =
        auditor.run(seed, magnitude > 0.0 ? &injector : nullptr);
    result.total_nanos += telemetry::monotonic_nanos() - t0;

    switch (report.verdict) {
      case audit::AuditVerdict::kViolation:
        ++result.violations;
        result.max_p = std::max(result.max_p, report.fct_p);
        break;
      case audit::AuditVerdict::kClean:
        ++result.clean;
        break;
      case audit::AuditVerdict::kInconclusive:
        ++result.inconclusive;
        break;
    }
    result.min_p = std::min(result.min_p, report.fct_p);
    result.mean_delta += report.median_fct_delta / kSeedCount;
  }
  return result;
}

bench::BenchRecord sweep_record(const std::string& name, double magnitude,
                                const SweepResult& r) {
  bench::BenchRecord record;
  record.name = name;
  record.config["magnitude"] = magnitude;
  record.config["seeds"] = static_cast<uint64_t>(kSeedCount);
  record.config["violations"] = static_cast<uint64_t>(r.violations);
  record.config["clean"] = static_cast<uint64_t>(r.clean);
  record.config["inconclusive"] = static_cast<uint64_t>(r.inconclusive);
  record.config["power"] =
      static_cast<double>(r.violations) / kSeedCount;
  record.config["max_violation_p"] = r.max_p;
  record.config["min_p"] = r.min_p;
  record.config["mean_median_fct_delta"] = r.mean_delta;
  record.ns_per_op = static_cast<double>(r.total_nanos) / kSeedCount;
  record.ops_per_sec = record.ns_per_op > 0 ? 1e9 / record.ns_per_op : 0;
  return record;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::strip_json_flag(argc, argv);
  std::vector<bench::BenchRecord> records;

  audit::Auditor auditor(bench_config());

  // --- false positives: the clean matrix ---
  const SweepResult clean = sweep(auditor, 0.0);
  {
    bench::BenchRecord record = sweep_record("audit_clean", 0.0, clean);
    record.config["false_positives"] =
        static_cast<uint64_t>(clean.violations);
    std::printf("%-22s seeds=%zu violations=%zu min_p=%.4f  %.1f ms/run\n",
                "audit_clean", kSeedCount, clean.violations, clean.min_p,
                record.ns_per_op / 1e6);
    records.push_back(std::move(record));
  }

  // --- detection power vs throttle severity ---
  const struct {
    const char* name;
    double magnitude;
  } sweeps[] = {
      {"audit_detect_m09", 0.9},
      {"audit_detect_m07", 0.7},
      {"audit_detect_m05", 0.5},
  };
  for (const auto& s : sweeps) {
    const SweepResult r = sweep(auditor, s.magnitude);
    std::printf("%-22s power=%zu/%zu max_p=%.4f mean_delta=%+.1f%%  "
                "%.1f ms/run\n",
                s.name, r.violations, kSeedCount, r.max_p,
                r.mean_delta * 100.0,
                static_cast<double>(r.total_nanos) / kSeedCount / 1e6);
    records.push_back(sweep_record(s.name, s.magnitude, r));
  }

  // --- at scale: matched pairs through Dataplane::ingest ---
  audit::DataplaneReplayConfig dp;
  dp.pairs = 5000;
  dp.workers = 4;
  dp.seed = 7;
  const audit::DataplaneReplayResult scale =
      audit::replay_through_dataplane(dp);
  {
    bench::BenchRecord record;
    record.name = "audit_dataplane_ingest";
    record.config["pairs"] = static_cast<uint64_t>(scale.pairs);
    record.config["workers"] = static_cast<uint64_t>(dp.workers);
    record.config["packets_per_flow"] =
        static_cast<uint64_t>(dp.packets_per_flow);
    record.config["packets_ingested"] = scale.packets_ingested;
    record.config["processed"] = scale.processed;
    record.config["shed"] = scale.shed;
    record.config["verified_ok"] = scale.verified_ok;
    record.config["ledger_ok"] = scale.ledger_ok;
    record.ops_per_sec = scale.pairs_per_sec;
    record.ns_per_op =
        scale.pairs > 0
            ? static_cast<double>(scale.wall_nanos) / scale.pairs
            : 0;
    std::printf("%-22s pairs=%zu %.0f pairs/s verified=%llu ledger=%s\n",
                "audit_dataplane_ingest", scale.pairs, scale.pairs_per_sec,
                static_cast<unsigned long long>(scale.verified_ok),
                scale.ledger_ok ? "ok" : "BROKEN");
    records.push_back(std::move(record));
  }

  if (!json_path.empty() &&
      !bench::write_bench_json(json_path, "ablation_audit", records)) {
    return 1;
  }
  return 0;
}
