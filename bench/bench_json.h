// `--json <path>` support for the ablation benches.
//
// Every record is one measured configuration:
//   { "name": ..., "config": {...}, "ns_per_op": ..., "ops_per_sec": ... }
// and the file is a single object naming the benchmark binary plus the
// record array, so downstream tooling (EXPERIMENTS.md tables, CI smoke
// checks) can diff runs without scraping console output.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "json/json.h"

namespace nnn::bench {

struct BenchRecord {
  std::string name;
  json::Object config;
  double ns_per_op = 0;
  double ops_per_sec = 0;
};

/// Remove a `--json <path>` (or `--json=<path>`) pair from argv before
/// the argv is handed to the benchmark library / positional parsing.
/// Returns the path, or "" when the flag is absent.
inline std::string strip_json_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      path = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

/// Serialize records to `path`. Returns false (after a perror-style
/// message on stderr) when the file cannot be written.
inline bool write_bench_json(const std::string& path,
                             const std::string& benchmark,
                             const std::vector<BenchRecord>& records) {
  json::Array results;
  results.reserve(records.size());
  for (const BenchRecord& r : records) {
    json::Object o;
    o["name"] = r.name;
    o["config"] = json::Value(r.config);
    o["ns_per_op"] = r.ns_per_op;
    o["ops_per_sec"] = r.ops_per_sec;
    results.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root["benchmark"] = benchmark;
  root["results"] = json::Value(std::move(results));

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << json::Value(std::move(root)).dump_pretty() << "\n";
  return out.good();
}

}  // namespace nnn::bench
