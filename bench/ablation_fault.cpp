// Fault-injection ablation: what do the PR 5 hooks cost when nothing
// is being injected?
//
// The injection points are always compiled in (injector.h: chaos
// coverage that only exists in a special build is coverage the release
// binary never had), so the cost that matters is the disabled path.
// Three modes over the same verify workload:
//
//   none        — no injector installed: every hook is one branch on a
//                 null pointer (the shipping configuration);
//   disarmed    — injector installed but not armed: hooks make the
//                 call, see armed_ == false, return immediately;
//   armed-idle  — injector armed with a schedule entirely in the
//                 future: hooks scan the (6-event) plan every packet
//                 and never fire — the worst case that still injects
//                 nothing.
//
// Acceptance bar: `none` vs either disabled mode within 1%. Modes are
// interleaved, best-of-5 per mode, per-core = packets / max worker CPU
// time — the same discipline as ablation_controlplane's swap gate.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "controlplane/epoch.h"
#include "controlplane/table_mirror.h"
#include "dataplane/service_registry.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "runtime/dispatcher.h"
#include "runtime/worker_pool.h"
#include "util/clock.h"
#include "workload/packet_gen.h"

namespace {

using nnn::util::kSecond;

enum class Mode { kNone, kDisarmed, kArmedIdle };

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kNone:
      return "none";
    case Mode::kDisarmed:
      return "disarmed";
    case Mode::kArmedIdle:
      return "armed-idle";
  }
  return "?";
}

struct FaultRunResult {
  double percore_mpps = 0;
  uint64_t verified = 0;
  uint64_t injected = 0;
};

FaultRunResult run_pool(Mode mode, size_t workers, size_t flows,
                        size_t descriptors) {
  nnn::util::SystemClock clock;
  nnn::dataplane::ServiceRegistry registry;
  registry.bind("Boost", nnn::dataplane::PriorityAction{0});

  nnn::workload::PacketGenerator::Config wl;
  wl.packet_size = 512;
  wl.packets_per_flow = 50;
  wl.descriptors = descriptors;
  nnn::cookies::CookieVerifier staging(clock);
  nnn::workload::PacketGenerator generator(wl, clock, staging, 12345);

  nnn::runtime::WorkerPool::Config config;
  config.workers = workers;
  config.ring_capacity = 4096;
  config.batch_size = 32;
  nnn::runtime::WorkerPool pool(clock, registry, config);

  nnn::controlplane::TablePublisher tables;
  pool.bind_table_publisher(tables);
  nnn::controlplane::TableMirror mirror;
  mirror.reset(1, generator.descriptors(), {});
  tables.publish(mirror.build());

  nnn::fault::Injector injector;
  if (mode != Mode::kNone) {
    if (mode == Mode::kArmedIdle) {
      // A full-size schedule that never becomes active: every hook
      // walks the event list and comes back empty-handed.
      nnn::fault::FaultPlan::Spec spec;
      spec.horizon = kSecond;
      const nnn::fault::FaultPlan drawn = nnn::fault::FaultPlan::random(7, spec);
      nnn::fault::FaultPlan plan;
      const nnn::util::Timestamp far_future = clock.now() + 3600 * kSecond;
      for (nnn::fault::FaultEvent e : drawn.events()) {
        e.start += far_future;
        plan.add(e);
      }
      injector.arm(plan, 7);
    }
    pool.set_fault_injector(&injector);
  }

  nnn::runtime::Dispatcher dispatcher(
      pool, {.policy = nnn::dataplane::DispatchPolicy::kDescriptorAffinity});
  auto batch = generator.make_batch(flows);

  pool.start();
  for (auto& packet : batch) {
    dispatcher.dispatch_blocking(std::move(packet));
  }
  dispatcher.drain();
  pool.stop();

  const auto snap = pool.snapshot();
  FaultRunResult r;
  const double critical_us = static_cast<double>(snap.max_busy_micros());
  r.percore_mpps =
      critical_us > 0
          ? static_cast<double>(snap.totals().packets) / critical_us
          : 0;
  r.verified = pool.total_verified();
  r.injected = injector.total_injected();
  return r;
}

double overhead_pct(const FaultRunResult& baseline,
                    const FaultRunResult& mode) {
  return baseline.percore_mpps > 0
             ? 100.0 * (baseline.percore_mpps - mode.percore_mpps) /
                   baseline.percore_mpps
             : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = nnn::bench::strip_json_flag(argc, argv);
  size_t flows = 8000;  // x50 packets per run
  if (argc > 1) flows = static_cast<size_t>(std::atoll(argv[1]));
  const size_t workers = 2;
  const size_t descriptors = 1000;

  std::printf("=== Fault hooks: injection-disabled overhead ===\n");
  std::printf("%zu workers, 512 B packets, %zu flows x50, descriptor-"
              "affinity dispatch;\nper-core = packets / max worker CPU "
              "time, best of 5 interleaved runs per mode\n\n",
              workers, flows);

  constexpr Mode kModes[] = {Mode::kNone, Mode::kDisarmed, Mode::kArmedIdle};
  FaultRunResult best[3];
  for (int rep = 0; rep < 5; ++rep) {
    for (int m = 0; m < 3; ++m) {
      const FaultRunResult r = run_pool(kModes[m], workers, flows, descriptors);
      if (r.percore_mpps > best[m].percore_mpps) best[m] = r;
    }
  }

  std::printf("%-12s %14s %12s %10s %10s\n", "mode", "per-core Mpps",
              "verified", "injected", "overhead");
  std::vector<nnn::bench::BenchRecord> records;
  for (int m = 0; m < 3; ++m) {
    const double pct = m == 0 ? 0.0 : overhead_pct(best[0], best[m]);
    std::printf("%-12s %14.3f %12llu %10llu %9.2f%%\n", mode_name(kModes[m]),
                best[m].percore_mpps,
                static_cast<unsigned long long>(best[m].verified),
                static_cast<unsigned long long>(best[m].injected), pct);
    nnn::bench::BenchRecord rec;
    rec.name = std::string("fault/verify/") + mode_name(kModes[m]);
    rec.config["workers"] = static_cast<int64_t>(workers);
    rec.config["flows"] = static_cast<int64_t>(flows);
    rec.config["packet_size"] = 512;
    rec.config["injected"] = static_cast<int64_t>(best[m].injected);
    if (m != 0) rec.config["overhead_pct"] = pct;
    rec.ns_per_op =
        best[m].percore_mpps > 0 ? 1e3 / best[m].percore_mpps : 0;
    rec.ops_per_sec = best[m].percore_mpps * 1e6;
    records.push_back(std::move(rec));
  }
  std::printf("\nacceptance bar: disabled modes within 1%% of none "
              "(hook = one predictable branch)\n");

  if (!json_path.empty() &&
      !nnn::bench::write_bench_json(json_path, "ablation_fault", records)) {
    return 1;
  }
  return 0;
}
