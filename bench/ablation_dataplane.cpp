// Ablations over the dataplane design choices DESIGN.md calls out:
//   - the three per-packet task classes of §4.6 (search / search+verify
//     / map-only) measured in isolation;
//   - sniff-window depth (the daemon's "first 3 packets" choice);
//   - descriptor-table scale (does 100K descriptors slow the hot path?);
//   - replay-cache churn;
//   - cookie transport extraction cost per carrier (HTTP text parse vs
//     TLS binary parse vs IPv6 option vs UDP shim).
#include <benchmark/benchmark.h>

#include <memory>

#include "cookies/replay_cache.h"
#include "cookies/transport.h"
#include "dataplane/hw_filter.h"
#include "dataplane/middlebox.h"
#include "dataplane/sharding.h"
#include "net/http.h"
#include "net/tls.h"
#include "runtime/mpsc_ring.h"
#include "runtime/spsc_ring.h"
#include "util/clock.h"
#include "util/rng.h"
#include "workload/packet_gen.h"

namespace {

using nnn::cookies::Transport;

struct Plane {
  nnn::util::ManualClock clock{1000 * nnn::util::kSecond};
  nnn::cookies::CookieVerifier verifier{clock};
  nnn::dataplane::ServiceRegistry registry;
  nnn::dataplane::Middlebox middlebox{clock, verifier, registry};
  nnn::cookies::CookieDescriptor descriptor;

  explicit Plane(size_t descriptors = 1) {
    registry.bind("Boost", nnn::dataplane::PriorityAction{0});
    nnn::util::Rng rng(9);
    for (size_t i = 0; i < descriptors; ++i) {
      nnn::cookies::CookieDescriptor d;
      d.cookie_id = i + 1;
      d.key.resize(32);
      for (auto& b : d.key) b = static_cast<uint8_t>(rng.next_u64());
      d.service_data = "Boost";
      verifier.add_descriptor(d);
      if (i == 0) descriptor = d;
    }
  }
};

nnn::net::Packet plain_packet(uint32_t flow_id) {
  nnn::net::Packet p;
  p.tuple.src_ip = nnn::net::IpAddress::v4(0x0a000000u | flow_id);
  p.tuple.dst_ip = nnn::net::IpAddress::v4(151, 101, 0, 1);
  p.tuple.src_port = static_cast<uint16_t>(1024 + flow_id % 50000);
  p.tuple.dst_port = 443;
  p.wire_size = 512;
  return p;
}

/// Task (iii): established flow, pure table hit.
void BM_Task_MapOnly(benchmark::State& state) {
  Plane plane;
  nnn::cookies::CookieGenerator gen(plane.descriptor, plane.clock, 1);
  nnn::net::Packet request = plain_packet(1);
  request.tuple.proto = nnn::net::L4Proto::kUdp;
  nnn::cookies::attach(request, gen.generate(), Transport::kUdpHeader);
  plane.middlebox.process(request);
  nnn::net::Packet data = plain_packet(1);
  data.tuple.proto = nnn::net::L4Proto::kUdp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(plane.middlebox.process(data));
  }
}
BENCHMARK(BM_Task_MapOnly);

/// Task (i): sniffing packets that carry no cookie.
void BM_Task_SearchNoCookie(benchmark::State& state) {
  Plane plane;
  uint32_t flow_id = 100;
  for (auto _ : state) {
    // A fresh flow each time keeps the packet inside the sniff window;
    // advancing the clock lets the flow table expire old entries so
    // the benchmark measures steady state, not unbounded growth.
    plane.clock.advance(10 * nnn::util::kMillisecond);
    nnn::net::Packet p = plain_packet(flow_id++);
    benchmark::DoNotOptimize(plane.middlebox.process(p));
  }
}
BENCHMARK(BM_Task_SearchNoCookie);

/// Task (ii): search + full verification, per descriptor-table scale.
void BM_Task_SearchAndVerify(benchmark::State& state) {
  Plane plane(static_cast<size_t>(state.range(0)));
  nnn::cookies::CookieGenerator gen(plane.descriptor, plane.clock, 2);
  uint32_t flow_id = 1;
  std::vector<nnn::net::Packet> batch;
  size_t next = batch.size();
  for (auto _ : state) {
    if (next >= batch.size()) {
      state.PauseTiming();
      batch.clear();
      for (int i = 0; i < 1024; ++i) {
        nnn::net::Packet p = plain_packet(flow_id++);
        p.tuple.proto = nnn::net::L4Proto::kUdp;
        nnn::cookies::attach(p, gen.generate(), Transport::kUdpHeader);
        batch.push_back(std::move(p));
      }
      next = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(plane.middlebox.process(batch[next++]));
  }
}
BENCHMARK(BM_Task_SearchAndVerify)
    ->ArgName("descriptors")
    ->Arg(1)
    ->Arg(1000)
    ->Arg(100000);

/// Sniff-window depth: how much does inspecting 1 vs 3 vs 8 packets of
/// every cookie-less flow cost end to end?
void BM_SniffWindowDepth(benchmark::State& state) {
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieVerifier verifier(clock);
  nnn::dataplane::ServiceRegistry registry;
  nnn::dataplane::Middlebox::Config config;
  config.sniff_window = static_cast<uint32_t>(state.range(0));
  nnn::dataplane::Middlebox middlebox(clock, verifier, registry, config);
  uint32_t flow_id = 1;
  for (auto _ : state) {
    clock.advance(50 * nnn::util::kMillisecond);  // bound table growth
    // 10-packet cookie-less flow.
    for (int i = 0; i < 10; ++i) {
      nnn::net::Packet p = plain_packet(flow_id);
      benchmark::DoNotOptimize(middlebox.process(p));
    }
    ++flow_id;
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_SniffWindowDepth)->ArgName("window")->Arg(1)->Arg(3)->Arg(8);

/// Replay-cache insert under steady churn.
void BM_ReplayCacheInsert(benchmark::State& state) {
  nnn::cookies::ReplayCache cache(5 * nnn::util::kSecond);
  nnn::util::Rng rng(5);
  nnn::util::Timestamp now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.insert(nnn::crypto::Uuid::generate(rng), now));
    now += 100;  // 10K cookies/second
  }
}
BENCHMARK(BM_ReplayCacheInsert);

/// Cookie extraction cost per transport carrier.
void BM_ExtractPerTransport(benchmark::State& state) {
  const auto transport = static_cast<Transport>(state.range(0));
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  nnn::cookies::CookieGenerator gen(descriptor, clock, 3);

  nnn::net::Packet packet;
  switch (transport) {
    case Transport::kHttpHeader: {
      nnn::net::http::Request r("GET", "/", "example.com");
      const std::string text = r.serialize();
      packet.payload.assign(text.begin(), text.end());
      break;
    }
    case Transport::kTlsExtension: {
      nnn::net::tls::ClientHello hello;
      hello.set_server_name("example.com");
      packet.payload = hello.serialize_record();
      break;
    }
    case Transport::kIpv6Extension:
      packet.ipv6 = true;
      break;
    case Transport::kUdpHeader:
      packet.tuple.proto = nnn::net::L4Proto::kUdp;
      break;
    case Transport::kTcpOption:
      packet.tuple.proto = nnn::net::L4Proto::kTcp;
      break;
    case Transport::kQuicTransportParam: {
      packet.tuple.proto = nnn::net::L4Proto::kUdp;
      nnn::net::QuicHeader header;
      header.long_header = true;
      header.scid = 1;
      header.dcid = 2;
      packet.quic = std::move(header);
      break;
    }
  }
  nnn::cookies::attach(packet, gen.generate(), transport);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nnn::cookies::extract(packet));
  }
}
BENCHMARK(BM_ExtractPerTransport)
    ->ArgName("transport")
    ->Arg(static_cast<int>(Transport::kHttpHeader))
    ->Arg(static_cast<int>(Transport::kTlsExtension))
    ->Arg(static_cast<int>(Transport::kIpv6Extension))
    ->Arg(static_cast<int>(Transport::kUdpHeader))
    ->Arg(static_cast<int>(Transport::kTcpOption))
    ->Arg(static_cast<int>(Transport::kQuicTransportParam));

/// Scale-out dispatch (§4.6): per-packet cost of the sharded dataplane
/// under the two load-balancing policies. Descriptor affinity pays an
/// extra cookie peek on cookie-bearing packets; that is the price of a
/// sound distributed use-once check.
void BM_ShardedDispatch(benchmark::State& state) {
  const auto policy =
      static_cast<nnn::dataplane::DispatchPolicy>(state.range(0));
  const size_t shards = static_cast<size_t>(state.range(1));
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::dataplane::ServiceRegistry registry;
  registry.bind("Boost", nnn::dataplane::PriorityAction{0});
  nnn::dataplane::ShardedDataplane plane(clock, registry, shards, policy);
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  descriptor.service_data = "Boost";
  plane.add_descriptor(descriptor);
  nnn::cookies::CookieGenerator gen(descriptor, clock, 1);

  uint32_t flow_id = 1;
  std::vector<nnn::net::Packet> batch;
  size_t next = 0;
  for (auto _ : state) {
    if (next >= batch.size()) {
      state.PauseTiming();
      batch.clear();
      for (int i = 0; i < 512; ++i) {
        nnn::net::Packet p = plain_packet(flow_id++);
        p.tuple.proto = nnn::net::L4Proto::kUdp;
        if (i % 10 == 0) {  // every 10th packet opens a cookie flow
          nnn::cookies::attach(p, gen.generate(),
                               nnn::cookies::Transport::kUdpHeader);
        }
        batch.push_back(std::move(p));
      }
      next = 0;
      state.ResumeTiming();
    }
    benchmark::DoNotOptimize(plane.process(batch[next++]));
  }
}
BENCHMARK(BM_ShardedDispatch)
    ->ArgNames({"policy", "shards"})
    ->Args({0, 1})
    ->Args({0, 4})
    ->Args({0, 16})
    ->Args({1, 1})
    ->Args({1, 4})
    ->Args({1, 16});

/// Hardware pre-filter (§4.6): decision cost per packet class.
void BM_HwFilterDecision(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::dataplane::HardwareFilter filter(
      clock, nnn::cookies::kNetworkCoherencyTime, {});
  nnn::cookies::CookieDescriptor descriptor;
  descriptor.cookie_id = 1;
  descriptor.key.assign(32, 0x42);
  filter.learn_id(1);
  nnn::cookies::CookieGenerator gen(descriptor, clock, 1);

  nnn::net::Packet packet;
  switch (scenario) {
    case 0:  // plain packet, fast path
      packet = plain_packet(1);
      break;
    case 1: {  // known cookie -> software
      packet = plain_packet(2);
      packet.tuple.proto = nnn::net::L4Proto::kUdp;
      nnn::cookies::attach(packet, gen.generate(),
                           nnn::cookies::Transport::kUdpHeader);
      break;
    }
    default: {  // unknown id -> rejected in "hardware"
      nnn::cookies::CookieDescriptor rogue = descriptor;
      rogue.cookie_id = 99;
      nnn::cookies::CookieGenerator rogue_gen(rogue, clock, 2);
      packet = plain_packet(3);
      packet.tuple.proto = nnn::net::L4Proto::kUdp;
      nnn::cookies::attach(packet, rogue_gen.generate(),
                           nnn::cookies::Transport::kUdpHeader);
      break;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.classify(packet));
  }
}
BENCHMARK(BM_HwFilterDecision)
    ->ArgName("scenario")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

/// Mid-flow cookie inspection (§4.2 app-assisted bursts): what the
/// per-packet search on every best-effort packet costs vs the default
/// sniff-3 deployment.
void BM_MidFlowInspection(benchmark::State& state) {
  const bool mid_flow = state.range(0) != 0;
  nnn::util::ManualClock clock(1000 * nnn::util::kSecond);
  nnn::cookies::CookieVerifier verifier(clock);
  nnn::dataplane::ServiceRegistry registry;
  nnn::dataplane::Middlebox::Config config;
  config.mid_flow_cookies = mid_flow;
  nnn::dataplane::Middlebox middlebox(clock, verifier, registry, config);
  // One long-lived cookie-less flow, past the sniff window.
  nnn::net::Packet p = plain_packet(1);
  for (int i = 0; i < 5; ++i) middlebox.process(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(middlebox.process(p));
  }
}
BENCHMARK(BM_MidFlowInspection)
    ->ArgName("mid_flow")
    ->Arg(0)
    ->Arg(1);

// --- runtime: the threaded dataplane's ring hot path ---------------
// (scaling curves live in bench/ablation_runtime; these isolate the
// per-packet queueing cost the runtime adds on top of the middlebox)

/// SPSC ring enqueue+dequeue cost per element, single-threaded — the
/// pure protocol overhead with no cross-core traffic.
void BM_Runtime_RingPushPop(benchmark::State& state) {
  nnn::runtime::SpscRing<nnn::net::Packet> ring(1024);
  nnn::net::Packet packet = plain_packet(1);
  nnn::net::Packet out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(std::move(packet)));
    benchmark::DoNotOptimize(ring.try_pop(out));
    packet = std::move(out);  // recycle the buffers
  }
}
BENCHMARK(BM_Runtime_RingPushPop);

/// Batch-size sweep: per-packet dequeue cost as the consumer's burst
/// grows. The worker default of 32 is where the curve flattens —
/// larger bursts buy little and cost latency.
void BM_Runtime_RingBatchSweep(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  nnn::runtime::SpscRing<nnn::net::Packet> ring(1024);
  std::vector<nnn::net::Packet> out(batch);
  uint64_t packets = 0;
  for (auto _ : state) {
    for (size_t i = 0; i < batch; ++i) {
      ring.try_push(plain_packet(static_cast<uint32_t>(i)));
    }
    benchmark::DoNotOptimize(ring.pop_batch(out.data(), batch));
    packets += batch;
  }
  state.SetItemsProcessed(static_cast<int64_t>(packets));
}
BENCHMARK(BM_Runtime_RingBatchSweep)
    ->ArgName("batch")
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128);

/// MPSC (verdict/ingress) ring cost, uncontended: what a worker pays
/// to publish one verdict record.
void BM_Runtime_MpscPushPop(benchmark::State& state) {
  nnn::runtime::MpscRing<uint64_t> ring(1024);
  uint64_t v = 0, out = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(v++));
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
}
BENCHMARK(BM_Runtime_MpscPushPop);

/// Flow-table scale: lookup cost as the table grows.
void BM_FlowTableTouch(benchmark::State& state) {
  nnn::dataplane::FlowTable table;
  const size_t flows = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < flows; ++i) {
    nnn::net::Packet p = plain_packet(static_cast<uint32_t>(i));
    table.touch(p.tuple, 512, 0);
  }
  nnn::net::Packet probe = plain_packet(static_cast<uint32_t>(flows / 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.touch(probe.tuple, 512, 1));
  }
}
BENCHMARK(BM_FlowTableTouch)
    ->ArgName("flows")
    ->Arg(1000)
    ->Arg(100000)
    ->Arg(1000000);

}  // namespace
